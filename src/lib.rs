//! # speculative-prefetch
//!
//! A full reproduction of
//!
//! > N. J. Tuah, M. Kumar, S. Venkatesh,
//! > *"Effect of Speculative Prefetching on Network Load in Distributed
//! > Systems"*, IPDPS 2001,
//!
//! as a production-quality Rust workspace: the paper's analytical models,
//! every substrate they assume (queueing, caches, predictors, workloads, a
//! discrete-event simulator), and an experiment harness that regenerates
//! every figure.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! name and hosts the runnable examples and the cross-crate integration
//! tests.
//!
//! ## The sixty-second version
//!
//! Prefetching an item that will be used with probability `p` *helps* the
//! average access time **iff `p` exceeds the server utilisation** the
//! system would have without prefetching:
//!
//! ```
//! use speculative_prefetch::prelude::*;
//!
//! // λ = 30 req/s, bandwidth 50, mean item size 1, no-prefetch hit ratio 0.3.
//! let params = SystemParams::new(30.0, 50.0, 1.0, 0.3).unwrap();
//! assert!((params.rho_prime() - 0.42).abs() < 1e-12);
//!
//! // The optimal policy: prefetch *exactly* the candidates above ρ′.
//! let policy = ThresholdPolicy::from_model_a(&params);
//! let decision = policy.decide(vec![("logo.png", 0.9), ("search", 0.1)]);
//! assert_eq!(decision.selected.len(), 1); // only logo.png clears 0.42
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`core`] | `prefetch-core` | the paper's equations: Models A/B/AB, thresholds, `G`, `C`, §4 estimator, adaptive controller |
//! | [`queueing`] | `queueing` | M/G/1-PS theory + PS/RR/FIFO server simulations (with next-event revision counters) |
//! | [`simcore`] | `simcore` | DES engine, indexed event scheduler (`sched`), PRNG, distributions, statistics |
//! | [`workload`] | `workload` | catalogs, arrival processes, Markov streams, traces |
//! | [`cachesim`] | `cachesim` | LRU/LFU/FIFO/CLOCK/random caches + §4 tagging |
//! | [`predictor`] | `predictor` | Markov/PPM/LZ78/dependency-graph/oracle predictors |
//! | [`netsim`] | `netsim` | parametric + trace-driven end-to-end simulators |
//! | [`cluster`] | `cluster` | multi-node network-of-queues simulator (topologies, per-link `ρ`, per-node adaptive control, cooperative mode) |
//! | [`coop`] | `coop` | cooperative caching: consistent-hash placement, Bloom digests + incremental delta exchange, peer/origin routing |
//! | [`harness`] | `harness` | experiment reports E1–E22 (figures + validation + cluster + cooperation + scale + digest deltas + observability + delayed hits + trace replay + fault injection) |
//!
//! ## Scaling out: the `cluster` layer
//!
//! The paper's "distributed system" is one shared path; [`cluster`] makes
//! it an actual network. A [`cluster::Topology`] places edge proxies in
//! front of sharded origins with per-link bandwidths (star, two-tier tree,
//! sharded-origin, or peer-meshed layouts), every link runs as its own
//! PS/FIFO queue, and every proxy hosts a cache plus — in adaptive mode —
//! its own online threshold controller. The degenerate one-proxy topology
//! reproduces `netsim::parametric` *exactly* (pinned by test to 1e-6), so
//! cluster results stay anchored to the validated single-path models;
//! experiment E13 (`cargo run --release --bin cluster`) and
//! `examples/edge_cluster.rs` show per-proxy thresholds diverging with
//! local load — the paper's rule, applied node by node, needs no
//! coordination.
//!
//! ## Cooperating at the edge: the `coop` layer
//!
//! With several proxies fronting one origin, every proxy pulls its misses
//! over the backbone even when a sibling already holds the object. The
//! [`coop`] crate removes that redundancy: a consistent-hash ring with
//! virtual nodes places keys ([`coop::Placement`], optionally migrating
//! virtual nodes off hot proxies when per-proxy `ρ̂′` diverges), Bloom
//! digests summarise each cache on a configurable epoch
//! ([`coop::DigestConfig`], with staleness-induced false hits modelled),
//! and a [`coop::Router`] resolves every miss/prefetch to a peer or the
//! origin. `cluster::Workload::Cooperative` runs it over
//! [`cluster::Topology::mesh`]/[`cluster::Topology::ring`] peer links:
//! experiment E14 (`cargo run --release --bin coop`) and
//! `examples/coop_mesh.rs` show backbone bytes dropping at equal hit
//! ratio, and a single-proxy cooperative run reproducing plain adaptive
//! mode to 1e-6.
//!
//! ## Scaling the event loop: `simcore::sched`
//!
//! Both cluster engines run on [`simcore::sched::Scheduler`], an indexed
//! event scheduler: a binary-heap timer wheel over a fixed key space —
//! one timer per link (re-armed from the queueing server's `next_event`
//! only when its [`queueing::Server::revision`] counter moved), one
//! request-arrival and one pending-prefetch timer per proxy, and one
//! digest-refresh timer pinned to the epoch grid `k · epoch`. Re-arming
//! bumps the key's generation and stale heap entries are skipped lazily,
//! so every event costs O(log n) instead of the former O(links + proxies)
//! scan; simultaneous events fire in ascending key order, which keeps
//! runs bit-deterministic (pinned by old-vs-new engine parity tests
//! against the retired scan driver in `cluster::legacy`). Experiment E15
//! (`cargo run --release --bin scale`) sweeps 64/128/256-proxy peer
//! meshes — ~32k queueing links at the top end — on that core.
//!
//! ## Deltas on the wire: incremental digests + byte-addressed caches
//!
//! With the event loop indexed, the remaining per-epoch cost was the
//! digest exchange itself: every boundary rebuilt and shipped every
//! proxy's whole Bloom summary — O(proxies × capacity) in work and
//! bytes. The [`coop`] layer now defaults to **incremental digest
//! deltas** ([`coop::RefreshStrategy::Deltas`]): proxies accumulate one
//! [`coop::DeltaOp`] per cache change and ship only that stream; the
//! router maintains counting-Bloom [`coop::DeltaDigest`]s whose
//! membership answers are provably identical to a from-scratch rebuild
//! (proptested in `coop`, and pinned to 1e-12 whole-`ClusterReport`
//! parity in `cluster/tests/delta_parity.rs` — the full-rebuild path
//! survives as the oracle, mirroring `cluster::legacy`). Caches are also
//! **byte-addressed** now: `cachesim`'s [`cachesim::ByteCapacity`] trait
//! adds a byte budget with multi-victim eviction, `cluster`'s
//! `AdaptiveWorkload::cache_bytes` turns it on, and occupancy,
//! goodput/badput, and digest traffic all come out denominated in the
//! paper's unit — bytes. Experiment E16 (`cargo run --release --bin
//! delta`) sweeps both refresh protocols across the E15 fabrics;
//! `cargo bench -p bench --bench cluster` carries `delta_refresh_*` vs
//! `full_rebuild_*` rows at router and whole-engine scope. A third
//! strategy, [`coop::RefreshStrategy::Auto`], is the compaction fallback:
//! each proxy ships whichever of the two forms is cheaper that boundary
//! (crossover at `capacity · bits / 8 / 9` ops), with
//! [`coop::RouterStats`] metering which side fired.
//!
//! ## Sharded parallel event loops: conservative time windows
//!
//! The event loop itself now shards across threads:
//! [`cluster::ClusterSim::run_sharded`] partitions the topology with
//! [`cluster::ShardPlan`] (contiguous proxy blocks, majority-use link
//! assignment), gives each shard its own `simcore::sched` scheduler and
//! per-proxy RNG streams ([`simcore::rng::stream_seed`]), and
//! synchronises the shards with conservative time windows: the lookahead
//! is the minimum propagation delay of any cross-shard handoff (per-link
//! [`cluster::Link::latency`], e.g.
//! [`cluster::Topology::mesh_with_latency`]), in-flight transfers cross
//! shards as timestamped effects through `simcore::par::Mailboxes`, and
//! digest refreshes are barrier-applied payload flushes
//! ([`coop::Router::apply_payloads`]). The contract is bit-identical
//! reports across shard counts *and* against the single-threaded driver
//! — zero-latency topologies (lookahead 0) fall back to a single-thread
//! merge of the shard schedulers, so sharding never changes an answer
//! anywhere (pinned by `cluster/tests/shard_parity.rs`). Experiment E17
//! (`cargo run --release --bin shard`) runs the strong-scaling ladder
//! over 256- and 512-proxy latency meshes (~32k and ~131k PS links), and
//! the bench suite's `sharded_coop_mesh_256proxies_{1,8}shards` rows pin
//! the speedup measurement; every bench run also drops a
//! machine-readable `BENCH_cluster.json` for cross-PR tracking.
//!
//! ## Observability: metrics, probes, and the runtime profiler
//!
//! Every run can now explain itself. [`simcore::obs`] is a deterministic
//! observability layer: a metrics [`simcore::Registry`] (counters,
//! gauges, `Welford`/`Histogram`-backed distributions), time-series
//! probes sampled on the digest-epoch grid, a per-shard runtime profiler
//! ([`simcore::ShardProfile`]: events, window drains, barrier waits,
//! mailbox occupancy, scheduler heap depth), and a bounded
//! [`simcore::FlightRecorder`] ring of recent dispatches and cross-shard
//! effects for diagnosing parity failures. Turn it on with
//! [`cluster::ClusterSim::run_observed`] and a [`simcore::ObsConfig`]:
//!
//! ```
//! use cluster::ClusterSim;
//! use simcore::ObsConfig;
//! # use cluster::{AdaptiveWorkload, CandidateSource, ClusterConfig, ProxyPolicy,
//! #     Topology, Workload};
//! # use workload::synth_web::SynthWebConfig;
//! # let config = ClusterConfig {
//! #     topology: Topology::sharded_origin(2, 2, 45.0, 80.0),
//! #     workload: Workload::Adaptive(AdaptiveWorkload {
//! #         proxies: vec![SynthWebConfig { lambda: 12.0, ..SynthWebConfig::default() }; 2],
//! #         cache_capacity: 32, cache_bytes: None, max_candidates: 3,
//! #         prefetch_jitter: 0.01, policy: ProxyPolicy::Adaptive,
//! #         predictor: CandidateSource::Oracle, shared_structure_seed: None,
//! #         delayed: Default::default(),
//! #     }),
//! #     requests_per_proxy: 400, warmup_per_proxy: 80,
//! # };
//! let obs_cfg = ObsConfig::on().with_sample_every(1.0);
//! let (report, obs) = ClusterSim::new(&config).run_observed(7, 2, &obs_cfg);
//! assert!(obs.registry.counter_value("requests.processed") > 0);
//! assert!(obs.latency_quantile(0.99).is_some());
//! ```
//!
//! Two contracts hold everywhere. **Determinism:** the probes never draw
//! RNG, reorder events, or feed back — the report is bit-identical with
//! observability on or off, at every shard count
//! (`cluster/tests/obs_parity.rs`); only wall-clock fields differ
//! run-to-run, and they live strictly in the telemetry, never the
//! report. **Zero overhead when off:** with the default
//! [`simcore::ObsConfig::off`] the engines carry a `None` sink and every
//! hook is one branch. Experiment E18 (`cargo run --release --bin obs`)
//! renders the telemetry of a 64-proxy cooperative mesh as an ASCII
//! dashboard (sparkline series via `harness::asciiplot::sparkline`,
//! latency p50/p90/p99, per-shard profiler columns) and writes the
//! machine-readable twin into `OBS_cluster.json` (section `e18_obs`,
//! next to `BENCH_cluster.json`; E17's wall-clock scaling ladder lands
//! in section `e17_strong_scaling`). CI schema-checks the artifact with
//! `--bin obs -- --check` and archives it on every push.
//!
//! ## Tracing: where each request's latency went
//!
//! The metrics layer says how much; [`simcore::trace`] says *where*.
//! Setting [`simcore::ObsConfig::with_trace_every`] head-samples requests
//! and prefetches by a pure hash of their `(proxy, sequence)` coordinates
//! (so the sampling decision is identical under every sharding), records
//! a span at each handler seam — issue, per-hop enqueue/dequeue with the
//! queue/service split at the job's nominal `size / bandwidth` demand,
//! peer-serve check, false-hit redirect, in-flight wait, delivery — and
//! merges the per-shard buffers on the `(trace, seq)` total key. Each
//! trace extracts to a [`simcore::Trace`]: an end-to-end interval tiled
//! by **exclusive segments** (pending-prefetch stall, queue, service,
//! propagation, wait, and the wasted peer leg of a digest false hit), so
//! segment durations sum to the measured latency by construction:
//!
//! ```
//! use cluster::ClusterSim;
//! use simcore::ObsConfig;
//! # use cluster::{AdaptiveWorkload, CandidateSource, ClusterConfig, ProxyPolicy,
//! #     Topology, Workload};
//! # use workload::synth_web::SynthWebConfig;
//! # let config = ClusterConfig {
//! #     topology: Topology::sharded_origin(2, 2, 45.0, 80.0),
//! #     workload: Workload::Adaptive(AdaptiveWorkload {
//! #         proxies: vec![SynthWebConfig { lambda: 12.0, ..SynthWebConfig::default() }; 2],
//! #         cache_capacity: 32, cache_bytes: None, max_candidates: 3,
//! #         prefetch_jitter: 0.01, policy: ProxyPolicy::Adaptive,
//! #         predictor: CandidateSource::Oracle, shared_structure_seed: None,
//! #         delayed: Default::default(),
//! #     }),
//! #     requests_per_proxy: 400, warmup_per_proxy: 80,
//! # };
//! let obs_cfg = ObsConfig::on().with_trace_every(1); // trace every request
//! let (_report, obs) = ClusterSim::new(&config).run_observed(7, 2, &obs_cfg);
//! let store = obs.traces.expect("tracing was on");
//! for trace in &store.traces {
//!     trace.check().unwrap(); // segments tile [start, end] exactly
//!     let residual = (trace.segment_sum() - trace.latency()).abs();
//!     assert!(residual <= 1e-9 * trace.latency().max(1.0));
//! }
//! assert!(store.attribution().iter().any(|a| a.traces > 0));
//! ```
//!
//! The same two contracts hold: reports are bit-identical with tracing
//! on or off, traces are bit-identical across shard counts, and the
//! default `trace_every = 0` costs one branch per seam
//! (`cluster/tests/trace_parity.rs`, plus proptests in
//! `trace_properties.rs`). Experiment E19 (`cargo run --release --bin
//! trace`) renders the per-class latency-attribution table and the top-K
//! slowest traces, writes section `e19_trace` of `OBS_cluster.json`, and
//! exports the span set as Chrome trace-event JSON
//! (`TRACE_cluster.json`, loadable in Perfetto); `--bin obs -- --top-k
//! N` appends the same slowest-traces view to the E18 dashboard. On top
//! of the artifacts sits the regression sentinel (`cargo run --release
//! --bin sentinel`): CI diffs `OBS_cluster.json` and
//! `BENCH_cluster.json` against the committed `baselines/`, excluding
//! wall-clock fields by schema, requiring counters exact and floats
//! within 1e-9 (see `baselines/README.md`).
//!
//! ## Delayed hits: misses on keys already in flight
//!
//! At backbone latencies a miss's fetch window spans many later
//! requests, so "hit or miss" stops being binary: a request for a key
//! that is *already being fetched* pays only the residual latency of the
//! outstanding fetch (Atre et al., SIGCOMM 2020). [`cachesim::Mshr`]
//! lifts the hardware Miss Status Holding Register to the simulation —
//! one entry per in-flight key with a FIFO waiter queue, a configurable
//! entry budget with a deterministic full-table policy, and a coalescing
//! switch whose off position is the resolve-each-miss-independently
//! baseline. Both cluster engines consult the table before any fetch
//! ([`cachesim::TaggedCache::probe_via`]), configured per workload by
//! [`cluster::DelayedHitsConfig`]: the default (unbounded, coalescing)
//! reproduces the previous engine behaviour bit-for-bit, and
//! [`cluster::RankingMode::AggregateDelay`] switches eviction from
//! recency to *aggregate delay* — keep the keys whose absence has cost
//! the most total waiting, which beats LRU once fetch windows are long
//! (experiment E20, `cargo run --release --bin delayed`):
//!
//! ```
//! use cluster::{ClusterSim, DelayedHitsConfig};
//! # use cluster::{AdaptiveWorkload, CandidateSource, ClusterConfig, ProxyPolicy,
//! #     Topology, Workload};
//! # use workload::synth_web::SynthWebConfig;
//! # let make = |delayed: DelayedHitsConfig| ClusterConfig {
//! #     // A slow, high-latency backbone: fetch windows span requests.
//! #     topology: Topology::mesh_with_latency(2, 60.0, 12.5, 45.0, 0.08),
//! #     workload: Workload::Adaptive(AdaptiveWorkload {
//! #         proxies: vec![SynthWebConfig { lambda: 26.0, n_items: 160,
//! #             ..SynthWebConfig::default() }; 2],
//! #         cache_capacity: 24, cache_bytes: None, max_candidates: 3,
//! #         prefetch_jitter: 0.01, policy: ProxyPolicy::Adaptive,
//! #         predictor: CandidateSource::Oracle, shared_structure_seed: None,
//! #         delayed,
//! #     }),
//! #     requests_per_proxy: 600, warmup_per_proxy: 120,
//! # };
//! // The same workload with and without coalescing, at the same seed.
//! let coalescing = ClusterSim::new(&make(DelayedHitsConfig::default())).run(7);
//! let independent =
//!     ClusterSim::new(&make(DelayedHitsConfig { coalesce: false, ..Default::default() })).run(7);
//!
//! // Waiters joined in-flight fetches and were settled as delayed hits…
//! assert!(coalescing.delayed_hits() > 0);
//! // …each join is an origin transfer the baseline pays for.
//! assert!(coalescing.origin_fetches() < independent.origin_fetches());
//! assert_eq!(independent.delayed_hits(), 0);
//! ```
//!
//! The per-node aggregates (`delayed_hits`, `coalesced_requests`,
//! `origin_fetches`, `mean_residual_wait`, `mean_waiter_depth`,
//! `mshr_rejections`) land in [`cluster::NodeReport`], roll up on
//! [`cluster::ClusterReport`], and cross-check exactly against the trace
//! layer's `DelayedHit` spans (`cluster/tests/trace_parity.rs`); shard
//! parity holds bit-identically in every MSHR configuration
//! (`cluster/tests/mshr_parity.rs`).
//!
//! ## Trace replay: record once, rerun exactly, scale by superposition
//!
//! Every synthetic cluster run can now be captured as a versioned binary
//! `.events` trace and replayed — **bit-identically**. The format is a
//! 16-byte header (magic `PFEV`, version, record count) over the compact
//! 28-byte record layout; [`workload::TraceStream`] decodes it lazily in
//! fixed-size chunks with per-record validation (finite fields,
//! non-decreasing time), so replaying a multi-gigabyte capture holds one
//! chunk resident per proxy, never the trace
//! ([`workload::TraceStream::peak_resident_bytes`] pins the high-water
//! mark). [`cluster::ClusterSim::run_recorded`] attaches the recorder to
//! any workload — recording never draws RNG or reorders events, so the
//! report and the merged trace are identical at every shard count — and
//! [`cluster::Workload::Trace`] drives the closed-loop engine from a
//! [`cluster::TraceSource`] instead of the synthetic web model. Because
//! each proxy's prefetch-jitter RNG splits off before any workload draw
//! and the learned Markov predictor only proposes items the replay has
//! already seen, a replay on the recording topology reproduces the source
//! [`cluster::ClusterReport`] bit-for-bit (derived `PartialEq`, no
//! tolerance — `cluster/tests/replay_parity.rs` pins it at shard counts
//! {1, 2, 4, 8}):
//!
//! ```
//! use cluster::{ClusterSim, TraceSource, TraceWorkload, Workload};
//! # use cluster::{AdaptiveWorkload, CandidateSource, ClusterConfig, ProxyPolicy, Topology};
//! # use workload::synth_web::SynthWebConfig;
//! # let workload = AdaptiveWorkload {
//! #     proxies: vec![SynthWebConfig { lambda: 14.0, n_items: 80,
//! #         ..SynthWebConfig::default() }; 2],
//! #     cache_capacity: 24, cache_bytes: None, max_candidates: 3,
//! #     prefetch_jitter: 0.01, policy: ProxyPolicy::Adaptive,
//! #     predictor: CandidateSource::Markov1, // replay needs a learned predictor
//! #     shared_structure_seed: None, delayed: Default::default(),
//! # };
//! # let config = ClusterConfig {
//! #     topology: Topology::mesh_with_latency(2, 60.0, 40.0, 45.0, 0.05),
//! #     workload: Workload::Adaptive(workload.clone()),
//! #     requests_per_proxy: 400, warmup_per_proxy: 80,
//! # };
//! // Record a synthetic run…
//! let (source_report, trace) = ClusterSim::new(&config).run_recorded(7, 2);
//!
//! // …and replay the trace through the same mesh: bit-identical report.
//! let replay_config = ClusterConfig {
//!     topology: config.topology.clone(),
//!     workload: Workload::Trace(TraceWorkload::replaying(
//!         &workload,
//!         TraceSource::from_records(&trace).unwrap(),
//!     )),
//!     requests_per_proxy: config.requests_per_proxy,
//!     warmup_per_proxy: config.warmup_per_proxy,
//! };
//! let (replayed, stats) = ClusterSim::new(&replay_config).run_replayed(7, 2);
//! assert_eq!(replayed, source_report);
//! assert_eq!(stats.records_replayed, trace.len() as u64);
//! ```
//!
//! One capture also scales: [`workload::TraceScaler`] superposes K
//! time-dilated copies with disjoint key spaces (a lazy K-way merge —
//! memory stays O(K × chunk)), modelling K independent populations on a
//! K×-bigger fabric. Experiment E21 (`cargo run --release --bin replay`)
//! runs the whole pipeline — record, write the `.events` sample, scale
//! ×{1, 4, 16}, replay up to a 256-proxy mesh — and writes section
//! `e21_replay` of `OBS_cluster.json` (records/sec, peak resident trace
//! bytes, hit-ratio and network-load deltas vs the synthetic source),
//! schema-checked in CI by `--bin replay -- --check` and covered by the
//! sentinel. The codecs themselves are proptested
//! (`workload/tests/trace_formats.rs`): arbitrary finite records
//! round-trip JSON, legacy binary, and `.events` exactly; truncations,
//! header bit-flips, and wrong versions are errors, never panics.
//!
//! ## Fault injection: chaos you can diff
//!
//! Real meshes lose links, proxies, and origins; [`simcore::faults`]
//! injects all of it **deterministically**. A
//! [`simcore::faults::FaultPlan`] is a validated, time-sorted schedule of
//! faults — link down/up, lossy degradation with latency inflation, proxy
//! crashes (cold cache + MSHR drain + digest quarantine), digest-delta
//! loss, origin brownouts and blackouts — and because the plan is static,
//! every piece of fault state is a pure function of `(plan, t)`: loss
//! rolls and retry jitter come from pure hashes, never the workload RNG.
//! The client side survives through [`simcore::faults::RetryPolicy`]:
//! per-attempt timeouts, capped exponential backoff with deterministic
//! jitter, a bounded retry budget, and — on the cooperative mesh —
//! failover to the origin when every path to a peer is dark. Two
//! determinism contracts are pinned bit-identically (derived `PartialEq`,
//! `cluster/tests/fault_parity.rs`): an **empty plan** reproduces the
//! unfaulted run exactly, and any plan produces the same report and
//! traces at shard counts {1, 2, 4, 8}:
//!
//! ```
//! use cluster::ClusterSim;
//! use simcore::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
//! # use cluster::{AdaptiveWorkload, CandidateSource, ClusterConfig, ProxyPolicy,
//! #     Topology, Workload};
//! # use workload::synth_web::SynthWebConfig;
//! # let config = ClusterConfig {
//! #     topology: Topology::mesh_with_latency(2, 60.0, 40.0, 45.0, 0.05),
//! #     workload: Workload::Adaptive(AdaptiveWorkload {
//! #         proxies: vec![SynthWebConfig { lambda: 14.0, n_items: 80,
//! #             ..SynthWebConfig::default() }; 2],
//! #         cache_capacity: 24, cache_bytes: None, max_candidates: 3,
//! #         prefetch_jitter: 0.01, policy: ProxyPolicy::Adaptive,
//! #         predictor: CandidateSource::Oracle, shared_structure_seed: None,
//! #         delayed: Default::default(),
//! #     }),
//! #     requests_per_proxy: 400, warmup_per_proxy: 80,
//! # };
//! let sim = ClusterSim::new(&config);
//!
//! // The empty plan run through the fault-aware paths changes nothing.
//! assert_eq!(sim.run_faulted(7, 2, &FaultConfig::default()), sim.run_sharded(7, 2));
//!
//! // Degrade every link to 30% loss: retries absorb most of it…
//! let lossy = |retry| FaultConfig {
//!     plan: FaultPlan::new(
//!         (0..config.topology.links().len())
//!             .map(|link| FaultEvent {
//!                 t: 0.0,
//!                 kind: FaultKind::LinkDegrade { link, loss: 0.3, latency_factor: 1.0 },
//!             })
//!             .collect(),
//!     ),
//!     retry,
//! };
//! let graceful = sim.run_faulted(7, 2, &lossy(RetryPolicy::default()));
//! assert!(graceful.retries() > 0);
//! // …while a single-attempt policy turns every lost packet into a
//! // failed request.
//! let collapsed = sim.run_faulted(7, 2, &lossy(RetryPolicy::no_retries(1.0)));
//! assert!(graceful.unavailability() < collapsed.unavailability());
//! // The MSHR ledger still balances: origin + coalesced + failed == misses.
//! assert!(graceful.mshr_conservation_ok());
//! ```
//!
//! Failures are first-class everywhere downstream: failed fetches settle
//! their MSHR waiters and surface as `TraceClass::Failed` traces whose
//! `Timeout`/`Backoff` segments tile the latency exactly; per-node
//! counters (`timeouts`, `retries`, `failovers`, `failed_fetches`,
//! `lost_entries`, `unavailability`) land in [`cluster::NodeReport`].
//! Experiment E22 (`cargo run --release --bin chaos`) sweeps link loss ×
//! prefetch aggressiveness, with and without retries, and pins the
//! punchline: retries degrade gracefully where single-attempt fetching
//! collapses — but speculative prefetches get exactly one attempt, so
//! aggressive prefetching *widens* the failure surface as demand
//! coalesces onto unprotected in-flight fetches. Section `e22_chaos` of
//! `OBS_cluster.json` is schema-checked in CI by `--bin chaos -- --check`
//! and covered by the sentinel.

pub use cachesim;
pub use cluster;
pub use coop;
pub use harness;
pub use netsim;
pub use predictor;
/// The paper's analytical models (`prefetch-core`).
pub use prefetch_core as core;
pub use queueing;
pub use simcore;
pub use workload;

/// The most common imports in one place.
pub mod prelude {
    pub use cachesim::{
        ByteCapacity, LruCache, Mshr, MshrAccess, MshrConfig, ReplacementCache, TaggedCache,
        ValueAwareCache, Waiter,
    };
    pub use cluster::{
        ClusterConfig, ClusterReport, ClusterSim, DelayedHitsConfig, RankingMode, ReplayStats,
        Topology, TraceWorkload, Workload,
    };
    pub use coop::{
        CoopConfig, DeltaDigest, DeltaOp, HashRing, Placement, RefreshStrategy, Resolution, Router,
    };
    pub use netsim::parametric::{ParametricConfig, ParametricReport};
    pub use netsim::traced::{Policy, PredictorKind, TracedConfig};
    pub use predictor::{MarkovPredictor, OraclePredictor, Predictor};
    pub use prefetch_core::{
        AdaptiveController, HPrimeEstimator, ModelA, ModelAb, ModelB, PrefetchDecision,
        SystemParams, ThresholdPolicy,
    };
    pub use queueing::theory::{MG1Fifo, MG1Ps, MM1};
    pub use simcore::prelude::*;
    pub use workload::{
        Catalog, ItemId, MarkovChain, RequestStream, TraceRecord, TraceScaler, TraceSource,
        TraceStream,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let params = SystemParams::paper_figure2(0.0);
        assert_eq!(ModelA::new(params, 1.0, 0.9).threshold(), 0.6);
    }
}
