//! # prefetch-core — the paper's analytical contribution
//!
//! Closed-form performance models of **speculative prefetching under network
//! load**, reproducing every equation of:
//!
//! > N. J. Tuah, M. Kumar, S. Venkatesh, *"Effect of Speculative Prefetching
//! > on Network Load in Distributed Systems"*, IPDPS 2001.
//!
//! ## The model in one paragraph
//!
//! Multiple users share one network path, modelled as an M/G/1
//! processor-sharing server with bandwidth `b`. Users issue requests at rate
//! `λ` for items of mean size `s̄`; without prefetching a fraction `h′` hits
//! the local cache. Speculative prefetching fetches, per user request, an
//! average of `n̄(F)` extra items, each of which will be accessed with
//! probability `p`. Prefetching raises the hit ratio but also the server
//! utilisation `ρ`, inflating every retrieval by `1/(1−ρ)`; and prefetched
//! items evict cache occupants. The paper's result: prefetching improves the
//! mean access time **iff `p` exceeds a threshold** — `p_th = ρ′` under
//! eviction model A, `p_th = ρ′ + h′/n̄(C)` under model B — and once the
//! threshold is met, prefetching *more* such items only helps.
//!
//! ## Map from paper to code
//!
//! | Paper | Here |
//! |-------|------|
//! | eqs (2)–(5): no-prefetch baseline | [`SystemParams`] |
//! | eqs (6)–(14): Model A | [`ModelA`] |
//! | eqs (15)–(22): Model B | [`ModelB`] |
//! | §6 "model AB" discussion | [`ModelAb`] (generic eviction value `q`) |
//! | eqs (23)–(27): excess retrieval cost | [`excess`] |
//! | §4 estimation of `h′` | [`estimator::HPrimeEstimator`] |
//! | headline policy | [`threshold::ThresholdPolicy`], [`controller::AdaptiveController`] |
//!
//! ## Quickstart
//!
//! ```
//! use prefetch_core::{ModelA, SystemParams};
//!
//! // Figure 2's parameters: s̄ = 1, λ = 30, b = 50, h′ = 0.
//! let params = SystemParams::new(30.0, 50.0, 1.0, 0.0).unwrap();
//! assert_eq!(params.rho_prime(), 0.6);
//!
//! // The paper's threshold: prefetch only items with p > ρ′ = 0.6.
//! let m = ModelA::new(params, 1.0, 0.9); // n̄(F) = 1, p = 0.9
//! assert_eq!(m.threshold(), 0.6);
//! let g = m.improvement().unwrap();
//! assert!(g > 0.0); // p = 0.9 > 0.6 → prefetching pays
//! ```

pub mod controller;
pub mod estimator;
pub mod excess;
pub mod model_a;
pub mod model_ab;
pub mod model_b;
pub mod params;
pub mod qos;
pub mod ranking;
pub mod sensitivity;
pub mod threshold;

pub use controller::AdaptiveController;
pub use estimator::HPrimeEstimator;
pub use model_a::ModelA;
pub use model_ab::ModelAb;
pub use model_b::ModelB;
pub use params::{ParamError, SystemParams};
pub use ranking::AggregateDelay;
pub use threshold::{OptimalMixPolicy, PrefetchDecision, ThresholdPolicy};

/// Which prefetch-cache interaction model a computation assumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InteractionModel {
    /// Model A: prefetched items evict zero-value cache entries (paper §3.1).
    EvictZeroValue,
    /// Model B: every cache entry carries `h′/n̄(C)` of the hit ratio
    /// (paper §3.2).
    EvictAverageValue,
}

/// Feasibility of the conditions (12) / (20) that make `G > 0` derivable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Conditions {
    /// Condition 1: the access probability exceeds the threshold
    /// (`pb − f′λs̄ > 0`, plus the `−bh′/n̄(C)` term under model B).
    pub probability_above_threshold: bool,
    /// Condition 2: capacity covers demand fetches (`b − f′λs̄ > 0`).
    pub stable_without_prefetch: bool,
    /// Condition 3: capacity covers demand + prefetch traffic.
    pub stable_with_prefetch: bool,
}

impl Conditions {
    /// All three conditions hold (guaranteeing `G > 0`).
    pub fn all(&self) -> bool {
        self.probability_above_threshold
            && self.stable_without_prefetch
            && self.stable_with_prefetch
    }
}

/// A full evaluation of a prefetching configuration: every quantity the
/// paper derives, in one serialisable record.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Evaluation {
    /// Cache hit ratio with prefetching, `h`.
    pub hit_ratio: f64,
    /// Server utilisation with prefetching, `ρ`.
    pub utilisation: f64,
    /// Mean retrieval time `r̄` (None if the system is unstable).
    pub retrieval_time: Option<f64>,
    /// Mean access time `t̄` (None if unstable).
    pub access_time: Option<f64>,
    /// Access improvement `G = t̄′ − t̄` (None if unstable).
    pub improvement: Option<f64>,
    /// Excess retrieval cost `C = R − R′` (None if unstable).
    pub excess_cost: Option<f64>,
    /// The threshold `p_th` for this configuration.
    pub threshold: f64,
    /// The feasibility conditions.
    pub conditions: Conditions,
}
