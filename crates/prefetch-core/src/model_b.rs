//! Model B — prefetched items evict **average-value** cache entries
//! (paper §3.2, equations (15)–(22)).
//!
//! Model B assumes every one of the `n̄(C)` cached items contributes the
//! same share `h′/n̄(C)` to the hit ratio, so each eviction costs exactly
//! that much:
//!
//! ```text
//! h = h′ − n̄(F)·h′/n̄(C) + n̄(F)·p        (eq 15)
//! ```
//!
//! The threshold therefore rises by the eviction cost:
//! `p_th = ρ′ + h′/n̄(C)` (eq 21). As `n̄(C) → ∞`, Model B converges to
//! Model A — the paper's §6 comparison, reproduced in experiment E5.

use crate::excess;
use crate::params::SystemParams;
use crate::{Conditions, Evaluation};

/// A Model-B prefetching configuration: like [`crate::ModelA`] plus the
/// average cache population `n̄(C)`.
#[derive(Clone, Copy, Debug)]
pub struct ModelB {
    pub params: SystemParams,
    /// `n̄(F)` — mean number of items prefetched per user request.
    pub n_f: f64,
    /// `p` — access probability of each prefetched item.
    pub p: f64,
    /// `n̄(C)` — average number of items in a user's cache.
    pub n_c: f64,
}

impl ModelB {
    pub fn new(params: SystemParams, n_f: f64, p: f64, n_c: f64) -> Self {
        assert!(n_f >= 0.0 && n_f.is_finite(), "n̄(F) must be non-negative");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(n_c > 0.0 && n_c.is_finite(), "n̄(C) must be positive");
        ModelB { params, n_f, p, n_c }
    }

    /// Per-entry hit-ratio contribution `h′/n̄(C)` — the value destroyed by
    /// each eviction.
    pub fn eviction_value(&self) -> f64 {
        self.params.h_prime / self.n_c
    }

    /// Hit ratio with prefetching (eq 15), clamped to `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_ratio_raw().clamp(0.0, 1.0)
    }

    /// Unclamped `h′ − n̄(F)h′/n̄(C) + n̄(F)p`.
    pub fn hit_ratio_raw(&self) -> f64 {
        self.params.h_prime - self.n_f * self.eviction_value() + self.n_f * self.p
    }

    /// Server utilisation with prefetching (eq 16).
    pub fn utilisation(&self) -> f64 {
        let sp = &self.params;
        (1.0 - self.hit_ratio_raw() + self.n_f) * sp.lambda * sp.mean_size / sp.bandwidth
    }

    pub fn is_stable(&self) -> bool {
        self.utilisation() < 1.0
    }

    /// Mean retrieval time with prefetching (eq 17). `None` when unstable.
    pub fn retrieval_time(&self) -> Option<f64> {
        self.is_stable().then(|| {
            let sp = &self.params;
            sp.mean_size / (sp.bandwidth * (1.0 - self.utilisation()))
        })
    }

    /// Mean access time with prefetching (eq 18). `None` when unstable.
    pub fn access_time(&self) -> Option<f64> {
        self.retrieval_time().map(|r| (1.0 - self.hit_ratio_raw()) * r)
    }

    /// Access improvement `G` (eq 19). `None` when unstable.
    pub fn improvement(&self) -> Option<f64> {
        (self.params.is_stable() && self.is_stable()).then(|| self.improvement_raw())
    }

    /// The raw eq-(19) value without stability guards:
    ///
    /// ```text
    ///       n̄(F)·s̄·(p·b − f′λs̄ − b·h′/n̄(C))
    /// G = ────────────────────────────────────────────────────────────
    ///     (b − f′λs̄)(b − f′λs̄ − (n̄(F)/n̄(C))h′s̄λ − n̄(F)(1−p)λs̄)
    /// ```
    pub fn improvement_raw(&self) -> f64 {
        let sp = &self.params;
        let b = sp.bandwidth;
        let s = sp.mean_size;
        let l = sp.lambda;
        let fp = sp.f_prime();
        let hp = sp.h_prime;
        let num = self.n_f * s * (self.p * b - fp * l * s - b * hp / self.n_c);
        let den = (b - fp * l * s)
            * (b - fp * l * s
                - self.n_f / self.n_c * hp * s * l
                - self.n_f * (1.0 - self.p) * l * s);
        num / den
    }

    /// The threshold `p_th = ρ′ + h′/n̄(C)` (eq 21).
    pub fn threshold(&self) -> f64 {
        self.params.rho_prime() + self.eviction_value()
    }

    /// Limit on `n̄(F)` under marginal bandwidth (eq 22):
    /// `n̄(F) < f′/(p − h′/n̄(C))`. `None` when `p ≤ h′/n̄(C)`
    /// (prefetching such items can never pay, there is no meaningful limit).
    pub fn nf_limit_marginal(&self) -> Option<f64> {
        let ev = self.eviction_value();
        (self.p > ev).then(|| self.params.f_prime() / (self.p - ev))
    }

    /// The three conditions of (20).
    pub fn conditions(&self) -> Conditions {
        let sp = &self.params;
        let b = sp.bandwidth;
        let s = sp.mean_size;
        let l = sp.lambda;
        let fp = sp.f_prime();
        let hp = sp.h_prime;
        Conditions {
            probability_above_threshold: self.p * b - fp * l * s - b * hp / self.n_c > 0.0,
            stable_without_prefetch: b - fp * l * s > 0.0,
            stable_with_prefetch: b
                - fp * l * s
                - self.n_f / self.n_c * hp * s * l
                - self.n_f * (1.0 - self.p) * l * s
                > 0.0,
        }
    }

    /// Excess retrieval cost `C = R − R′` (eq 27).
    pub fn excess_cost(&self) -> Option<f64> {
        excess::excess_cost(self.params.rho_prime(), self.utilisation(), self.params.lambda)
    }

    /// Everything at once, for the experiment harness.
    pub fn evaluate(&self) -> Evaluation {
        Evaluation {
            hit_ratio: self.hit_ratio(),
            utilisation: self.utilisation(),
            retrieval_time: self.retrieval_time(),
            access_time: self.access_time(),
            improvement: self.improvement(),
            excess_cost: self.excess_cost(),
            threshold: self.threshold(),
            conditions: self.conditions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_a::ModelA;

    fn fig2_params(h: f64) -> SystemParams {
        SystemParams::paper_figure2(h)
    }

    #[test]
    fn threshold_eq21_exceeds_model_a_by_eviction_value() {
        let params = fig2_params(0.3);
        let b = ModelB::new(params, 1.0, 0.5, 10.0);
        let a = ModelA::new(params, 1.0, 0.5);
        assert!((b.threshold() - (a.threshold() + 0.03)).abs() < 1e-12);
    }

    #[test]
    fn threshold_difference_bounded_by_inverse_cache_size() {
        // §6: "the difference in the values of the threshold pth between the
        // two models is at most 1/n̄(C)" (since h′ ≤ 1).
        for &h in &[0.0, 0.5, 1.0] {
            let params = SystemParams::new(30.0, 100.0, 1.0, h).unwrap();
            for &nc in &[2.0, 10.0, 100.0] {
                let diff = ModelB::new(params, 1.0, 0.5, nc).threshold()
                    - ModelA::new(params, 1.0, 0.5).threshold();
                assert!(diff >= 0.0);
                assert!(diff <= 1.0 / nc + 1e-12, "h={h} nc={nc}: diff {diff}");
            }
        }
    }

    #[test]
    fn hit_ratio_eq15() {
        let m = ModelB::new(fig2_params(0.3), 2.0, 0.5, 10.0);
        // h = 0.3 − 2·0.03 + 2·0.5 = 1.24 raw → clamped to 1.
        assert!((m.hit_ratio_raw() - 1.24).abs() < 1e-12);
        assert_eq!(m.hit_ratio(), 1.0);
        let m = ModelB::new(fig2_params(0.3), 0.5, 0.4, 10.0);
        // h = 0.3 − 0.015 + 0.2 = 0.485.
        assert!((m.hit_ratio() - 0.485).abs() < 1e-12);
    }

    #[test]
    fn converges_to_model_a_for_large_cache() {
        // §6: models agree when n̄(C) ≫ n̄(F).
        let params = fig2_params(0.3);
        let a = ModelA::new(params, 1.0, 0.8);
        let g_a = a.improvement().unwrap();
        let mut errors = Vec::new();
        for &nc in &[5.0, 50.0, 500.0, 5_000.0] {
            let b = ModelB::new(params, 1.0, 0.8, nc);
            errors.push((b.improvement().unwrap() - g_a).abs());
        }
        for w in errors.windows(2) {
            assert!(w[1] < w[0], "errors should shrink: {errors:?}");
        }
        assert!(errors.last().unwrap() / g_a.abs() < 1e-3);
    }

    #[test]
    fn g_sign_matches_model_b_threshold() {
        let params = fig2_params(0.3);
        let nc = 10.0;
        let pth = params.rho_prime() + 0.3 / nc; // 0.42 + 0.03
        for p10 in 1..=9 {
            let p = p10 as f64 / 10.0;
            let m = ModelB::new(params, 0.5, p, nc);
            if !m.is_stable() {
                continue;
            }
            let g = m.improvement().unwrap();
            if p > pth + 1e-9 {
                assert!(g > 0.0, "G(p={p}) = {g}");
            } else if p < pth - 1e-9 {
                assert!(g < 0.0, "G(p={p}) = {g}");
            }
        }
    }

    #[test]
    fn zero_h_prime_reduces_to_model_a_exactly() {
        // With h′ = 0 there is no eviction value: models must coincide.
        let params = fig2_params(0.0);
        for &(nf, p) in &[(0.5, 0.7), (1.0, 0.9), (2.0, 0.65)] {
            let a = ModelA::new(params, nf, p);
            let b = ModelB::new(params, nf, p, 7.0);
            assert!((a.hit_ratio_raw() - b.hit_ratio_raw()).abs() < 1e-12);
            assert!((a.utilisation() - b.utilisation()).abs() < 1e-12);
            match (a.improvement(), b.improvement()) {
                (Some(ga), Some(gb)) => assert!((ga - gb).abs() < 1e-12),
                (None, None) => {}
                other => panic!("stability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn improvement_matches_t_bar_difference() {
        let params = fig2_params(0.4);
        let m = ModelB::new(params, 0.6, 0.9, 20.0);
        let direct = params.access_time().unwrap() - m.access_time().unwrap();
        assert!((direct - m.improvement().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn nf_limit_marginal_exceeds_max_np_eq22() {
        // Eq (22) commentary: f′/(p − h′/n̄(C)) > f′/p = max(np), hence
        // condition 3 is redundant.
        let params = fig2_params(0.3);
        let m = ModelB::new(params, 1.0, 0.5, 10.0);
        let lim = m.nf_limit_marginal().unwrap();
        assert!(lim > params.max_prefetch_count(0.5));
        // p below eviction value: no limit.
        let m = ModelB::new(params, 1.0, 0.01, 10.0);
        assert!(m.nf_limit_marginal().is_none());
    }

    #[test]
    fn model_b_threshold_requires_more_than_a() {
        // An item profitable under A can be unprofitable under B with a
        // small cache: pick p between the two thresholds.
        let params = fig2_params(0.3); // ρ′ = 0.42
        let nc = 2.0; // eviction value = 0.15 → pth_B = 0.57
        let p = 0.5;
        let a = ModelA::new(params, 0.5, p).improvement().unwrap();
        let b = ModelB::new(params, 0.5, p, nc).improvement().unwrap();
        assert!(a > 0.0, "model A says prefetch: {a}");
        assert!(b < 0.0, "model B says don't: {b}");
    }

    #[test]
    fn evaluation_coherence() {
        let m = ModelB::new(fig2_params(0.3), 0.5, 0.8, 25.0);
        let e = m.evaluate();
        assert!(e.conditions.all());
        assert_eq!(e.threshold, m.threshold());
        assert!(e.improvement.unwrap() > 0.0);
    }
}
