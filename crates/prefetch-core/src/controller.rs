//! Adaptive prefetch controller: the paper's results operationalised.
//!
//! The threshold `p_th = f̂′·λ̂·ŝ̄/b` needs three online estimates — the
//! counterfactual hit ratio `h′` (§4 tagging algorithm), the request rate
//! `λ`, and the mean item size `s̄` — plus the known bandwidth `b`.
//! [`AdaptiveController`] fuses them and exposes the current
//! [`ThresholdPolicy`]. The `netsim` crate drives one controller per
//! simulated client; experiment E8 shows the adaptive threshold matching the
//! oracle threshold.

use crate::estimator::{EntryStatus, Ewma, HPrimeEstimator, RateEstimator};
use crate::threshold::ThresholdPolicy;
use crate::InteractionModel;

/// Configuration for [`AdaptiveController`].
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Known (or provisioned) bandwidth `b`, size-units/second.
    pub bandwidth: f64,
    /// EWMA weight for the request-rate estimator.
    pub rate_alpha: f64,
    /// EWMA weight for the mean-size estimator.
    pub size_alpha: f64,
    /// Interaction model to assume; model B needs `n_c`/`n_f` estimates.
    pub model: InteractionModel,
    /// `n̄(C)` estimate for model B (ignored under model A).
    pub n_c: f64,
    /// `n̄(F)` estimate for model B (ignored under model A).
    pub n_f: f64,
}

impl ControllerConfig {
    /// Model-A defaults with moderate smoothing.
    pub fn model_a(bandwidth: f64) -> Self {
        ControllerConfig {
            bandwidth,
            rate_alpha: 0.02,
            size_alpha: 0.02,
            model: InteractionModel::EvictZeroValue,
            n_c: 1.0,
            n_f: 0.0,
        }
    }

    /// Model-B defaults.
    pub fn model_b(bandwidth: f64, n_c: f64, n_f: f64) -> Self {
        assert!(n_c > 0.0 && n_f >= 0.0 && n_f < n_c);
        ControllerConfig {
            bandwidth,
            rate_alpha: 0.02,
            size_alpha: 0.02,
            model: InteractionModel::EvictAverageValue,
            n_c,
            n_f,
        }
    }
}

/// Online estimator bundle + policy synthesis.
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    config: ControllerConfig,
    h_prime: HPrimeEstimator,
    rate: RateEstimator,
    size: Ewma,
}

impl AdaptiveController {
    pub fn new(config: ControllerConfig) -> Self {
        assert!(config.bandwidth > 0.0);
        AdaptiveController {
            h_prime: HPrimeEstimator::new(),
            rate: RateEstimator::new(config.rate_alpha),
            size: Ewma::new(config.size_alpha),
            config,
        }
    }

    /// A prefetched item was inserted into the cache.
    pub fn on_prefetch_insert(&mut self) -> EntryStatus {
        self.h_prime.on_prefetch_insert()
    }

    /// A user request at time `t` hit a cache entry carrying `status`;
    /// `size` is the item's size. Returns the entry's new status.
    pub fn on_cache_hit(&mut self, t: f64, status: EntryStatus, size: f64) -> EntryStatus {
        self.rate.on_event(t);
        self.size.push(size);
        self.h_prime.on_cache_hit(status)
    }

    /// A user request at time `t` missed; `size` is the fetched item's size.
    /// Returns the status for the newly admitted entry.
    pub fn on_miss(&mut self, t: f64, size: f64) -> EntryStatus {
        self.rate.on_event(t);
        self.size.push(size);
        self.h_prime.on_miss()
    }

    /// Current `ĥ′` under the configured interaction model.
    pub fn h_prime_estimate(&self) -> Option<f64> {
        match self.config.model {
            InteractionModel::EvictZeroValue => self.h_prime.estimate_model_a(),
            InteractionModel::EvictAverageValue => {
                self.h_prime.estimate_model_b(self.config.n_c, self.config.n_f)
            }
        }
    }

    /// Current `λ̂`.
    pub fn rate_estimate(&self) -> Option<f64> {
        self.rate.rate()
    }

    /// Current `ŝ̄`.
    pub fn mean_size_estimate(&self) -> Option<f64> {
        self.size.value()
    }

    /// Current `ρ̂′ = f̂′·λ̂·ŝ̄/b`.
    pub fn rho_prime_estimate(&self) -> Option<f64> {
        let h = self.h_prime_estimate()?;
        let l = self.rate_estimate()?;
        let s = self.mean_size_estimate()?;
        Some((1.0 - h) * l * s / self.config.bandwidth)
    }

    /// Current threshold `p̂_th` (model A: `ρ̂′`; model B: `ρ̂′ + ĥ′/n̄(C)`).
    pub fn threshold_estimate(&self) -> Option<f64> {
        let rho = self.rho_prime_estimate()?;
        match self.config.model {
            InteractionModel::EvictZeroValue => Some(rho),
            InteractionModel::EvictAverageValue => {
                Some(rho + self.h_prime_estimate()? / self.config.n_c)
            }
        }
    }

    /// Current policy. Until the estimators warm up, returns a maximally
    /// conservative policy (threshold 1: prefetch nothing) — prefetching on
    /// no information risks degrading service, so the controller fails safe.
    pub fn policy(&self) -> ThresholdPolicy {
        match self.threshold_estimate() {
            Some(th) => ThresholdPolicy::new(th.min(1.0), self.config.model),
            None => ThresholdPolicy::new(1.0, self.config.model),
        }
    }

    /// Byte-charged threshold for one candidate of size `size`.
    ///
    /// The headline threshold charges every speculative fetch one
    /// mean-sized transfer (`ρ̂′ = (1−ĥ′)·λ̂·ŝ̄/b`), so a config that counts
    /// items implicitly assumes `s = ŝ̄`. Charging by bytes scales the
    /// utilisation term by the candidate's actual cost on the wire:
    /// fetching `s` bytes occupies the path for `s/b`, so the break-even
    /// probability is `ρ̂′·s/ŝ̄` (the model-B displacement term `ĥ′/n̄(C)`
    /// counts entries and is not scaled). A candidate of exactly mean size
    /// reproduces [`AdaptiveController::threshold_estimate`] — item-counted
    /// configs are the degenerate case of the byte path, not a separate
    /// policy. Clamped to 1; `None` while the estimators are cold.
    pub fn threshold_for_size(&self, size: f64) -> Option<f64> {
        assert!(size > 0.0 && size.is_finite(), "bad candidate size {size}");
        let s_bar = self.mean_size_estimate()?;
        let scaled = self.rho_prime_estimate()? * size / s_bar;
        let th = match self.config.model {
            InteractionModel::EvictZeroValue => scaled,
            InteractionModel::EvictAverageValue => {
                scaled + self.h_prime_estimate()? / self.config.n_c
            }
        };
        Some(th.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SystemParams;

    /// Drives the controller with a synthetic request stream matching known
    /// parameters and checks it recovers the analytic threshold.
    #[test]
    fn recovers_known_threshold_model_a() {
        let params = SystemParams::paper_figure2(0.3); // ρ′ = 0.42
        let mut ctl = AdaptiveController::new(ControllerConfig::model_a(params.bandwidth));
        // Deterministic stream at rate λ = 30, size 1, hit ratio 0.3
        // (3 of every 10 requests hit a tagged entry).
        let dt = 1.0 / params.lambda;
        let mut t = 0.0;
        for i in 0..20_000 {
            t += dt;
            if i % 10 < 3 {
                ctl.on_cache_hit(t, EntryStatus::Tagged, params.mean_size);
            } else {
                ctl.on_miss(t, params.mean_size);
            }
        }
        let th = ctl.threshold_estimate().unwrap();
        assert!((th - 0.42).abs() < 0.01, "threshold {th}");
        let h = ctl.h_prime_estimate().unwrap();
        assert!((h - 0.3).abs() < 0.005, "h′ {h}");
        let rate = ctl.rate_estimate().unwrap();
        assert!((rate - 30.0).abs() < 0.5, "rate {rate}");
    }

    #[test]
    fn untagged_hits_excluded_from_h_prime() {
        // Half the hits land on untagged (prefetched) entries: they must not
        // count toward ĥ′ on first touch.
        let mut ctl = AdaptiveController::new(ControllerConfig::model_a(50.0));
        let mut t = 0.0;
        for _ in 0..1000 {
            t += 0.1;
            let status = ctl.on_prefetch_insert();
            // First access: untagged → not a counterfactual hit.
            ctl.on_cache_hit(t, status, 1.0);
            t += 0.1;
            ctl.on_miss(t, 1.0);
        }
        // naccess = 2000, nhit = 0 → ĥ′ = 0.
        assert!(ctl.h_prime_estimate().unwrap() < 1e-12);
    }

    #[test]
    fn cold_controller_fails_safe() {
        let ctl = AdaptiveController::new(ControllerConfig::model_a(50.0));
        let pol = ctl.policy();
        assert_eq!(pol.threshold, 1.0);
        assert!(!pol.should_prefetch(0.99));
    }

    #[test]
    fn model_b_threshold_larger() {
        let mut a = AdaptiveController::new(ControllerConfig::model_a(50.0));
        let mut b = AdaptiveController::new(ControllerConfig::model_b(50.0, 10.0, 1.0));
        let mut t = 0.0;
        for i in 0..5000 {
            t += 1.0 / 30.0;
            if i % 2 == 0 {
                a.on_cache_hit(t, EntryStatus::Tagged, 1.0);
                b.on_cache_hit(t, EntryStatus::Tagged, 1.0);
            } else {
                a.on_miss(t, 1.0);
                b.on_miss(t, 1.0);
            }
        }
        let tha = a.threshold_estimate().unwrap();
        let thb = b.threshold_estimate().unwrap();
        assert!(thb > tha, "B {thb} must exceed A {tha}");
    }

    #[test]
    fn adapts_to_load_change() {
        // Rate doubles mid-stream: the threshold must rise.
        let mut ctl = AdaptiveController::new(ControllerConfig::model_a(50.0));
        let mut t = 0.0;
        for _ in 0..5000 {
            t += 1.0 / 15.0;
            ctl.on_miss(t, 1.0);
        }
        let th_low = ctl.threshold_estimate().unwrap();
        for _ in 0..5000 {
            t += 1.0 / 45.0;
            ctl.on_miss(t, 1.0);
        }
        let th_high = ctl.threshold_estimate().unwrap();
        assert!(th_high > th_low * 1.5, "low {th_low} high {th_high}");
    }

    #[test]
    fn item_counted_threshold_is_degenerate_case_of_byte_path() {
        // Charging a mean-sized candidate by bytes must reproduce the
        // item-counted threshold bit-for-bit, under both models.
        for cfg in [ControllerConfig::model_a(50.0), ControllerConfig::model_b(50.0, 10.0, 1.0)] {
            let mut ctl = AdaptiveController::new(cfg);
            let mut t = 0.0;
            for i in 0..5000 {
                t += 1.0 / 30.0;
                let size = if i % 2 == 0 { 0.5 } else { 1.5 };
                if i % 10 < 3 {
                    ctl.on_cache_hit(t, EntryStatus::Tagged, size);
                } else {
                    ctl.on_miss(t, size);
                }
            }
            let s_bar = ctl.mean_size_estimate().unwrap();
            assert_eq!(ctl.threshold_for_size(s_bar), Some(ctl.policy().threshold));
            // Byte-charging is monotone in size: bigger candidates need a
            // higher access probability to pay for their transfer.
            let small = ctl.threshold_for_size(0.5 * s_bar).unwrap();
            let big = ctl.threshold_for_size(2.0 * s_bar).unwrap();
            assert!(small < ctl.policy().threshold && ctl.policy().threshold < big);
        }
    }

    #[test]
    fn byte_threshold_fails_safe_when_cold() {
        let ctl = AdaptiveController::new(ControllerConfig::model_a(50.0));
        assert_eq!(ctl.threshold_for_size(1.0), None);
    }

    #[test]
    fn mean_size_tracks_mixture() {
        let mut ctl = AdaptiveController::new(ControllerConfig::model_a(50.0));
        let mut t = 0.0;
        for i in 0..4000 {
            t += 0.05;
            let size = if i % 2 == 0 { 0.5 } else { 1.5 };
            ctl.on_miss(t, size);
        }
        assert!((ctl.mean_size_estimate().unwrap() - 1.0).abs() < 0.01);
    }
}
