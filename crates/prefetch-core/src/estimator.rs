//! Practical estimation of `h′` (paper §4) and the auxiliary online
//! estimators the adaptive controller needs.
//!
//! The threshold `p_th = ρ′ = f′λs̄/b` depends on `h′` — the hit ratio the
//! cache *would* have if prefetching were off. But prefetching **is** on;
//! `h′` is a counterfactual. The paper's §4 recovers it by tagging:
//!
//! * a **prefetched** item enters the cache *untagged*;
//! * access to a *tagged* entry: `naccess += 1; nhit += 1`;
//! * access to an *untagged* entry: `naccess += 1`, the entry becomes
//!   *tagged* (a demand fetch would have brought it in at this moment);
//! * access to a remote item (miss): `naccess += 1`; if admitted, the new
//!   entry is *tagged*.
//!
//! Then `ĥ′ = nhit/naccess` under model A's assumption, and
//! `ĥ′ · n̄(C)/(n̄(C) − n̄(F))` under model B's (evictions removed hit-ratio
//! mass that must be compensated).

use serde::{Deserialize, Serialize};

/// Tag state of a cache entry, as defined by the paper's §4 algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryStatus {
    /// Entry arrived by demand fetch, or has been accessed since arriving.
    Tagged,
    /// Entry was prefetched and never accessed.
    Untagged,
}

/// Streaming implementation of the §4 counterfactual hit-ratio estimator.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct HPrimeEstimator {
    n_access: u64,
    n_hit: u64,
}

impl HPrimeEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// A prefetched item is inserted: returns the status to store with it.
    /// (Counters are untouched — prefetch insertions are not user accesses.)
    #[inline]
    pub fn on_prefetch_insert(&mut self) -> EntryStatus {
        EntryStatus::Untagged
    }

    /// A user request hit a cache entry with the given status; returns the
    /// status the entry must now carry.
    #[inline]
    pub fn on_cache_hit(&mut self, status: EntryStatus) -> EntryStatus {
        self.n_access += 1;
        if status == EntryStatus::Tagged {
            self.n_hit += 1;
        }
        EntryStatus::Tagged
    }

    /// A user request missed and went to the network; returns the status for
    /// the newly admitted entry (if the cache admits it).
    #[inline]
    pub fn on_miss(&mut self) -> EntryStatus {
        self.n_access += 1;
        EntryStatus::Tagged
    }

    /// Total user accesses observed.
    pub fn accesses(&self) -> u64 {
        self.n_access
    }

    /// Accesses that would have been hits without prefetching.
    pub fn counterfactual_hits(&self) -> u64 {
        self.n_hit
    }

    /// `ĥ′` under model A: `nhit / naccess`. `None` before any access.
    pub fn estimate_model_a(&self) -> Option<f64> {
        (self.n_access > 0).then(|| self.n_hit as f64 / self.n_access as f64)
    }

    /// `ĥ′` under model B: the model-A estimate scaled by
    /// `n̄(C)/(n̄(C) − n̄(F))` (paper §4), clamped to `[0, 1]`.
    pub fn estimate_model_b(&self, n_c: f64, n_f: f64) -> Option<f64> {
        assert!(n_c > 0.0 && n_f >= 0.0, "need n̄(C) > 0, n̄(F) ≥ 0");
        assert!(n_f < n_c, "model B correction requires n̄(F) < n̄(C)");
        self.estimate_model_a().map(|e| (e * n_c / (n_c - n_f)).min(1.0))
    }

    /// Resets the counters (e.g. at a measurement-epoch boundary).
    pub fn reset(&mut self) {
        self.n_access = 0;
        self.n_hit = 0;
    }

    /// Merges another estimator's counts into this one.
    pub fn merge(&mut self, other: &HPrimeEstimator) {
        self.n_access += other.n_access;
        self.n_hit += other.n_hit;
    }
}

/// Sliding-window variant: estimates over the last `window` accesses by
/// cycling two half-window estimators (a standard rotation trick — memory
/// O(1), the estimate covers between `window/2` and `window` accesses).
#[derive(Clone, Debug)]
pub struct SlidingHPrime {
    current: HPrimeEstimator,
    previous: HPrimeEstimator,
    half_window: u64,
}

impl SlidingHPrime {
    pub fn new(window: u64) -> Self {
        assert!(window >= 2);
        SlidingHPrime {
            current: HPrimeEstimator::new(),
            previous: HPrimeEstimator::new(),
            half_window: window / 2,
        }
    }

    fn rotate_if_full(&mut self) {
        if self.current.n_access >= self.half_window {
            self.previous = self.current;
            self.current = HPrimeEstimator::new();
        }
    }

    pub fn on_prefetch_insert(&mut self) -> EntryStatus {
        self.current.on_prefetch_insert()
    }

    pub fn on_cache_hit(&mut self, status: EntryStatus) -> EntryStatus {
        let s = self.current.on_cache_hit(status);
        self.rotate_if_full();
        s
    }

    pub fn on_miss(&mut self) -> EntryStatus {
        let s = self.current.on_miss();
        self.rotate_if_full();
        s
    }

    /// Model-A estimate over the combined window.
    pub fn estimate_model_a(&self) -> Option<f64> {
        let mut combined = self.previous;
        combined.merge(&self.current);
        combined.estimate_model_a()
    }
}

/// Exponentially weighted moving average with bias-corrected warm-up.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    weight: f64,
}

impl Ewma {
    /// `alpha` in `(0, 1]`: weight of each new observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma { alpha, value: 0.0, weight: 0.0 }
    }

    pub fn push(&mut self, x: f64) {
        self.value = (1.0 - self.alpha) * self.value + self.alpha * x;
        self.weight = (1.0 - self.alpha) * self.weight + self.alpha;
    }

    /// Bias-corrected estimate; `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        (self.weight > 0.0).then(|| self.value / self.weight)
    }
}

/// Online estimator of an event rate `λ` from event timestamps, via an EWMA
/// of inter-arrival times (`λ̂ = 1/mean-gap`).
#[derive(Clone, Copy, Debug)]
pub struct RateEstimator {
    gaps: Ewma,
    last_t: Option<f64>,
}

impl RateEstimator {
    pub fn new(alpha: f64) -> Self {
        RateEstimator { gaps: Ewma::new(alpha), last_t: None }
    }

    /// Records an event at time `t` (non-decreasing).
    pub fn on_event(&mut self, t: f64) {
        if let Some(last) = self.last_t {
            let gap = t - last;
            if gap > 0.0 {
                self.gaps.push(gap);
            }
        }
        self.last_t = Some(t);
    }

    /// `λ̂`; `None` until two events have been seen.
    pub fn rate(&self) -> Option<f64> {
        self.gaps.value().map(|g| 1.0 / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_demand_fetches_estimates_actual_hit_ratio() {
        // Without prefetching, tagged entries are just cached entries, so
        // the estimate equals the true hit ratio.
        let mut est = HPrimeEstimator::new();
        // 3 misses, then 7 hits on tagged entries.
        for _ in 0..3 {
            est.on_miss();
        }
        for _ in 0..7 {
            est.on_cache_hit(EntryStatus::Tagged);
        }
        assert!((est.estimate_model_a().unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn prefetch_hits_do_not_count_as_counterfactual_hits() {
        let mut est = HPrimeEstimator::new();
        // A prefetched item is accessed once: the access would have been a
        // miss without prefetching.
        let status = est.on_prefetch_insert();
        assert_eq!(status, EntryStatus::Untagged);
        let status = est.on_cache_hit(status);
        assert_eq!(status, EntryStatus::Tagged);
        assert_eq!(est.counterfactual_hits(), 0);
        assert_eq!(est.accesses(), 1);
        // But the *second* access to it would have been a hit (the demand
        // fetch would have cached it).
        est.on_cache_hit(status);
        assert_eq!(est.counterfactual_hits(), 1);
        assert_eq!(est.accesses(), 2);
        assert!((est.estimate_model_a().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefetch_insert_is_not_an_access() {
        let mut est = HPrimeEstimator::new();
        for _ in 0..100 {
            est.on_prefetch_insert();
        }
        assert_eq!(est.accesses(), 0);
        assert!(est.estimate_model_a().is_none());
    }

    #[test]
    fn model_b_correction_scales_up() {
        let mut est = HPrimeEstimator::new();
        for _ in 0..5 {
            est.on_miss();
        }
        for _ in 0..5 {
            est.on_cache_hit(EntryStatus::Tagged);
        }
        let a = est.estimate_model_a().unwrap();
        let b = est.estimate_model_b(100.0, 20.0).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
        assert!((b - 0.5 * 100.0 / 80.0).abs() < 1e-12);
        assert!(b > a);
    }

    #[test]
    fn model_b_correction_clamps_at_one() {
        let mut est = HPrimeEstimator::new();
        for _ in 0..10 {
            est.on_cache_hit(EntryStatus::Tagged);
        }
        assert_eq!(est.estimate_model_b(10.0, 9.0), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn model_b_requires_nf_below_nc() {
        let est = HPrimeEstimator::new();
        let _ = est.estimate_model_b(10.0, 10.0);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = HPrimeEstimator::new();
        a.on_miss();
        a.on_cache_hit(EntryStatus::Tagged);
        let mut b = HPrimeEstimator::new();
        b.on_cache_hit(EntryStatus::Tagged);
        b.on_cache_hit(EntryStatus::Tagged);
        a.merge(&b);
        assert_eq!(a.accesses(), 4);
        assert_eq!(a.counterfactual_hits(), 3);
        a.reset();
        assert_eq!(a.accesses(), 0);
        assert!(a.estimate_model_a().is_none());
    }

    #[test]
    fn sliding_window_tracks_regime_change() {
        let mut est = SlidingHPrime::new(200);
        // Regime 1: 100% counterfactual hits.
        for _ in 0..500 {
            est.on_cache_hit(EntryStatus::Tagged);
        }
        assert!(est.estimate_model_a().unwrap() > 0.99);
        // Regime 2: all misses. After enough events the window forgets.
        for _ in 0..500 {
            est.on_miss();
        }
        assert!(est.estimate_model_a().unwrap() < 0.01);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.1);
        for _ in 0..200 {
            e.push(5.0);
        }
        assert!((e.value().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_bias_correction_early() {
        let mut e = Ewma::new(0.01);
        e.push(10.0);
        // Without bias correction this would read 0.1; corrected it is 10.
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rate_estimator_recovers_rate() {
        let mut r = RateEstimator::new(0.05);
        // Deterministic arrivals every 0.25s → rate 4.
        for i in 0..500 {
            r.on_event(i as f64 * 0.25);
        }
        assert!((r.rate().unwrap() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn rate_estimator_needs_two_events() {
        let mut r = RateEstimator::new(0.1);
        assert!(r.rate().is_none());
        r.on_event(1.0);
        assert!(r.rate().is_none());
        r.on_event(2.0);
        assert!((r.rate().unwrap() - 1.0).abs() < 1e-9);
    }
}
