//! Excess retrieval cost (paper §5, equations (23)–(27)).
//!
//! `C = R − R′` measures how much extra *network time per user request*
//! prefetching consumes, where `R = ρ/(λ(1−ρ))` (eq 25) is the retrieval
//! time per request at utilisation `ρ`. The key phenomenon is **load
//! impedance** (paper's term): because `R` is convex in `ρ`, prefetching the
//! same item costs more under high load than under low load.

/// Retrieval time per user request at utilisation `rho` (eq 25):
/// `R = ρ/(λ(1−ρ))`. `None` when `ρ ≥ 1`.
pub fn retrieval_per_request(rho: f64, lambda: f64) -> Option<f64> {
    assert!(lambda > 0.0);
    assert!(rho >= 0.0);
    (rho < 1.0).then(|| rho / (lambda * (1.0 - rho)))
}

/// Excess retrieval cost (eq 27):
///
/// ```text
/// C = R − R′ = (ρ − ρ′) / (λ(1−ρ)(1−ρ′))
/// ```
///
/// `None` when either system is unstable.
pub fn excess_cost(rho_prime: f64, rho: f64, lambda: f64) -> Option<f64> {
    assert!(lambda > 0.0);
    assert!(rho_prime >= 0.0 && rho >= 0.0);
    (rho < 1.0 && rho_prime < 1.0)
        .then(|| (rho - rho_prime) / (lambda * (1.0 - rho) * (1.0 - rho_prime)))
}

/// Marginal cost of raising utilisation from `rho` by an infinitesimal
/// amount: `dR/dρ = 1/(λ(1−ρ)²)`. Quantifies load impedance directly —
/// strictly increasing in `ρ`.
pub fn marginal_cost(rho: f64, lambda: f64) -> Option<f64> {
    assert!(lambda > 0.0);
    (rho < 1.0).then(|| 1.0 / (lambda * (1.0 - rho) * (1.0 - rho)))
}

/// The utilisation increment caused by prefetching `n_f` items of
/// probability `p` per request, under interaction model A:
/// `Δρ = n̄(F)(1−p)·λs̄/b` (from eq 8 minus ρ′).
pub fn delta_rho_model_a(n_f: f64, p: f64, lambda: f64, mean_size: f64, bandwidth: f64) -> f64 {
    n_f * (1.0 - p) * lambda * mean_size / bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq27_consistency_with_eq25() {
        let lambda = 30.0;
        let rho_p = 0.6;
        let rho = 0.75;
        let direct = retrieval_per_request(rho, lambda).unwrap()
            - retrieval_per_request(rho_p, lambda).unwrap();
        let formula = excess_cost(rho_p, rho, lambda).unwrap();
        assert!((direct - formula).abs() < 1e-12);
    }

    #[test]
    fn zero_extra_load_zero_cost() {
        assert_eq!(excess_cost(0.6, 0.6, 30.0), Some(0.0));
    }

    #[test]
    fn hand_computed_paper_point() {
        // Fig 3, h′=0 panel, p=0.9, n̄(F)=1: ρ′=0.6, ρ=(0.1+1)·0.6=0.66.
        // C = 0.06/(30·0.34·0.4) = 0.0147…
        let c = excess_cost(0.6, 0.66, 30.0).unwrap();
        assert!((c - 0.06 / (30.0 * 0.34 * 0.4)).abs() < 1e-12);
        assert!(c > 0.0 && c < 0.02);
    }

    #[test]
    fn unstable_returns_none() {
        assert!(excess_cost(0.6, 1.0, 30.0).is_none());
        assert!(excess_cost(1.0, 0.6, 30.0).is_none());
        assert!(retrieval_per_request(1.2, 30.0).is_none());
        assert!(marginal_cost(1.0, 30.0).is_none());
    }

    #[test]
    fn load_impedance_same_increment_costs_more_at_high_load() {
        // Prefetching that adds Δρ = 0.1 of utilisation:
        let lambda = 30.0;
        let low = excess_cost(0.2, 0.3, lambda).unwrap();
        let high = excess_cost(0.7, 0.8, lambda).unwrap();
        assert!(high > low, "high-load cost {high} must exceed low-load cost {low}");
        // And the ratio is substantial: (1-.7)(1-.8) vs (1-.2)(1-.3) → ~9.3x.
        assert!(high / low > 9.0);
    }

    #[test]
    fn marginal_cost_is_increasing() {
        let lambda = 30.0;
        let mut last = 0.0;
        for i in 0..9 {
            let rho = i as f64 / 10.0;
            let mc = marginal_cost(rho, lambda).unwrap();
            assert!(mc > last);
            last = mc;
        }
    }

    #[test]
    fn cost_is_increasing_in_rho() {
        let lambda = 30.0;
        let rho_p = 0.42;
        let mut last = -1.0;
        for i in 0..11 {
            let rho = rho_p + i as f64 * 0.05;
            if rho >= 1.0 {
                break;
            }
            let c = excess_cost(rho_p, rho, lambda).unwrap();
            assert!(c > last, "C({rho}) = {c} after {last}");
            last = c;
        }
    }

    #[test]
    fn delta_rho_model_a_matches_model() {
        use crate::model_a::ModelA;
        use crate::params::SystemParams;
        let params = SystemParams::paper_figure2(0.3);
        let m = ModelA::new(params, 0.8, 0.55);
        let delta = delta_rho_model_a(0.8, 0.55, 30.0, 1.0, 50.0);
        assert!((m.utilisation() - params.rho_prime() - delta).abs() < 1e-12);
    }

    #[test]
    fn negative_cost_when_prefetch_reduces_load() {
        // With p = 1 (informed prefetching) utilisation is unchanged; with
        // hypothetical ρ < ρ′ the cost goes negative — the formula is signed.
        let c = excess_cost(0.5, 0.4, 10.0).unwrap();
        assert!(c < 0.0);
    }
}
