//! Model AB — the paper's §6 "more realistic model", generalised.
//!
//! Models A and B are the two extremes of one family: each prefetch evicts a
//! cache entry whose contribution to the hit ratio is some value
//! `q ∈ [0, h′/n̄(C)]`. Model A is `q = 0` (evict worthless entries); Model
//! B is `q = h′/n̄(C)` (evict average entries). The paper argues that a real
//! replacement policy evicts *below-average* entries, so reality sits
//! between the extremes — "if we continue the analysis, we will obtain
//! results that are between those for models A and B".
//!
//! This module carries out that analysis. Substituting
//! `h = h′ − n̄(F)·q + n̄(F)·p` through the same derivation chain gives
//!
//! ```text
//!       n̄(F)·s̄·((p−q)·b − f′λs̄)
//! G = ──────────────────────────────────────────────────
//!     (b − f′λs̄)(b − f′λs̄ − n̄(F)(1−p+q)λs̄)
//! ```
//!
//! with threshold `p_th = ρ′ + q`, which interpolates eq (13) and eq (21)
//! exactly. Unit tests verify both endpoints against [`ModelA`] / [`ModelB`].

use crate::excess;
use crate::model_a::ModelA;
use crate::model_b::ModelB;
use crate::params::SystemParams;
use crate::{Conditions, Evaluation};

/// The generalised eviction model: each prefetch evicts an entry worth `q`
/// of hit ratio.
#[derive(Clone, Copy, Debug)]
pub struct ModelAb {
    pub params: SystemParams,
    /// `n̄(F)` — mean number of items prefetched per user request.
    pub n_f: f64,
    /// `p` — access probability of each prefetched item.
    pub p: f64,
    /// `q` — hit-ratio contribution of each evicted entry,
    /// `0 ≤ q ≤ h′` (and in the paper's telling, `q ≤ h′/n̄(C)`).
    pub evict_value: f64,
}

impl ModelAb {
    pub fn new(params: SystemParams, n_f: f64, p: f64, evict_value: f64) -> Self {
        assert!(n_f >= 0.0 && n_f.is_finite());
        assert!((0.0..=1.0).contains(&p));
        assert!(
            (0.0..=1.0).contains(&evict_value) && evict_value <= params.h_prime + 1e-12,
            "eviction value cannot exceed h′"
        );
        ModelAb { params, n_f, p, evict_value }
    }

    /// Model A as the `q = 0` member of the family.
    pub fn model_a(params: SystemParams, n_f: f64, p: f64) -> Self {
        ModelAb::new(params, n_f, p, 0.0)
    }

    /// Model B as the `q = h′/n̄(C)` member of the family.
    pub fn model_b(params: SystemParams, n_f: f64, p: f64, n_c: f64) -> Self {
        assert!(n_c > 0.0);
        ModelAb::new(params, n_f, p, params.h_prime / n_c)
    }

    /// Hit ratio `h = h′ − n̄(F)·q + n̄(F)·p` (unclamped).
    pub fn hit_ratio_raw(&self) -> f64 {
        self.params.h_prime + self.n_f * (self.p - self.evict_value)
    }

    /// Hit ratio clamped to `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_ratio_raw().clamp(0.0, 1.0)
    }

    /// Server utilisation `ρ = (1 − h + n̄(F))λs̄/b`.
    pub fn utilisation(&self) -> f64 {
        let sp = &self.params;
        (1.0 - self.hit_ratio_raw() + self.n_f) * sp.lambda * sp.mean_size / sp.bandwidth
    }

    pub fn is_stable(&self) -> bool {
        self.utilisation() < 1.0
    }

    /// Mean retrieval time; `None` when unstable.
    pub fn retrieval_time(&self) -> Option<f64> {
        self.is_stable().then(|| {
            let sp = &self.params;
            sp.mean_size / (sp.bandwidth * (1.0 - self.utilisation()))
        })
    }

    /// Mean access time `t̄ = (1 − h)·r̄`; `None` when unstable.
    pub fn access_time(&self) -> Option<f64> {
        self.retrieval_time().map(|r| (1.0 - self.hit_ratio_raw()) * r)
    }

    /// Access improvement; `None` when unstable.
    pub fn improvement(&self) -> Option<f64> {
        (self.params.is_stable() && self.is_stable()).then(|| self.improvement_raw())
    }

    /// The closed form derived in the module docs.
    pub fn improvement_raw(&self) -> f64 {
        let sp = &self.params;
        let b = sp.bandwidth;
        let s = sp.mean_size;
        let l = sp.lambda;
        let fp = sp.f_prime();
        let pq = self.p - self.evict_value;
        let num = self.n_f * s * (pq * b - fp * l * s);
        let den = (b - fp * l * s) * (b - fp * l * s - self.n_f * (1.0 - pq) * l * s);
        num / den
    }

    /// Threshold `p_th = ρ′ + q`.
    pub fn threshold(&self) -> f64 {
        self.params.rho_prime() + self.evict_value
    }

    /// The analogue of conditions (12)/(20).
    pub fn conditions(&self) -> Conditions {
        let sp = &self.params;
        let b = sp.bandwidth;
        let s = sp.mean_size;
        let l = sp.lambda;
        let fp = sp.f_prime();
        let pq = self.p - self.evict_value;
        Conditions {
            probability_above_threshold: pq * b - fp * l * s > 0.0,
            stable_without_prefetch: b - fp * l * s > 0.0,
            stable_with_prefetch: b - fp * l * s - self.n_f * (1.0 - pq) * l * s > 0.0,
        }
    }

    /// Excess retrieval cost (eq 27) — the formula is interaction-agnostic.
    pub fn excess_cost(&self) -> Option<f64> {
        excess::excess_cost(self.params.rho_prime(), self.utilisation(), self.params.lambda)
    }

    /// Everything at once.
    pub fn evaluate(&self) -> Evaluation {
        Evaluation {
            hit_ratio: self.hit_ratio(),
            utilisation: self.utilisation(),
            retrieval_time: self.retrieval_time(),
            access_time: self.access_time(),
            improvement: self.improvement(),
            excess_cost: self.excess_cost(),
            threshold: self.threshold(),
            conditions: self.conditions(),
        }
    }
}

/// Convenience: evaluate the A/B/AB family at the same `(n̄(F), p)` point.
/// Returns `(model_a, model_ab_midpoint, model_b)` improvements; the AB
/// value uses `q = h′/(2n̄(C))` (halfway between the extremes).
pub fn family_improvements(
    params: SystemParams,
    n_f: f64,
    p: f64,
    n_c: f64,
) -> (Option<f64>, Option<f64>, Option<f64>) {
    let a = ModelA::new(params, n_f, p).improvement();
    let mid = ModelAb::new(params, n_f, p, params.h_prime / (2.0 * n_c)).improvement();
    let b = ModelB::new(params, n_f, p, n_c).improvement();
    (a, mid, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_params(h: f64) -> SystemParams {
        SystemParams::paper_figure2(h)
    }

    #[test]
    fn q_zero_is_exactly_model_a() {
        let params = fig2_params(0.3);
        for &(nf, p) in &[(0.5, 0.7), (1.0, 0.9), (1.5, 0.5)] {
            let ab = ModelAb::model_a(params, nf, p);
            let a = ModelA::new(params, nf, p);
            assert!((ab.hit_ratio_raw() - a.hit_ratio_raw()).abs() < 1e-12);
            assert!((ab.utilisation() - a.utilisation()).abs() < 1e-12);
            assert!((ab.threshold() - a.threshold()).abs() < 1e-12);
            assert!((ab.improvement_raw() - a.improvement_raw()).abs() < 1e-12);
        }
    }

    #[test]
    fn q_average_is_exactly_model_b() {
        let params = fig2_params(0.4);
        let nc = 8.0;
        for &(nf, p) in &[(0.5, 0.7), (1.0, 0.9)] {
            let ab = ModelAb::model_b(params, nf, p, nc);
            let b = ModelB::new(params, nf, p, nc);
            assert!((ab.hit_ratio_raw() - b.hit_ratio_raw()).abs() < 1e-12);
            assert!((ab.utilisation() - b.utilisation()).abs() < 1e-12);
            assert!((ab.threshold() - b.threshold()).abs() < 1e-12);
            assert!((ab.improvement_raw() - b.improvement_raw()).abs() < 1e-10);
        }
    }

    #[test]
    fn intermediate_q_gives_intermediate_results() {
        // §6: model AB's results lie between A's and B's.
        let params = fig2_params(0.4);
        let nc = 5.0;
        let (a, mid, b) = family_improvements(params, 0.8, 0.9, nc);
        let (a, mid, b) = (a.unwrap(), mid.unwrap(), b.unwrap());
        assert!(a > mid && mid > b, "expected A {a} > AB {mid} > B {b}");
    }

    #[test]
    fn threshold_interpolates() {
        let params = fig2_params(0.5);
        let a_th = ModelAb::model_a(params, 1.0, 0.5).threshold();
        let b_th = ModelAb::model_b(params, 1.0, 0.5, 4.0).threshold();
        let mid = ModelAb::new(params, 1.0, 0.5, 0.5 / 8.0).threshold();
        assert!(a_th < mid && mid < b_th);
        assert!((mid - (a_th + b_th) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn g_sign_governed_by_interpolated_threshold() {
        let params = fig2_params(0.3); // ρ′ = 0.42
        let q = 0.1;
        let pth = 0.52;
        for p10 in 1..=9 {
            let p = p10 as f64 / 10.0;
            let m = ModelAb::new(params, 0.5, p, q);
            if !m.is_stable() {
                continue;
            }
            let g = m.improvement().unwrap();
            if p > pth + 1e-9 {
                assert!(g > 0.0, "G(p={p}) = {g}");
            } else if p < pth - 1e-9 {
                assert!(g < 0.0, "G(p={p}) = {g}");
            } else {
                assert!(g.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn improvement_matches_direct_difference() {
        let params = fig2_params(0.3);
        let m = ModelAb::new(params, 0.7, 0.8, 0.05);
        let direct = params.access_time().unwrap() - m.access_time().unwrap();
        assert!((direct - m.improvement().unwrap()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn eviction_value_cannot_exceed_h_prime() {
        let params = fig2_params(0.1);
        let _ = ModelAb::new(params, 1.0, 0.5, 0.2);
    }
}
