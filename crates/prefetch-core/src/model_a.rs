//! Model A — prefetched items evict **zero-value** cache entries
//! (paper §3.1, equations (6)–(14)).
//!
//! Under model A there is always something worthless in the cache to evict,
//! so prefetching `n̄(F)` items of access probability `p` per request raises
//! the hit ratio to `h = h′ + n̄(F)·p` (eq 7). The headline result:
//!
//! > To maximise the access improvement, prefetch exclusively all items with
//! > access probability larger than the threshold value `p_th = ρ′`.

use crate::excess;
use crate::params::SystemParams;
use crate::{Conditions, Evaluation};

/// A Model-A prefetching configuration: the base system plus the prefetch
/// volume `n̄(F)` and per-item access probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct ModelA {
    pub params: SystemParams,
    /// `n̄(F)` — mean number of items prefetched per user request.
    pub n_f: f64,
    /// `p` — access probability of each prefetched item.
    pub p: f64,
}

impl ModelA {
    /// Creates a configuration. `n_f ≥ 0`, `0 ≤ p ≤ 1`.
    pub fn new(params: SystemParams, n_f: f64, p: f64) -> Self {
        assert!(n_f >= 0.0 && n_f.is_finite(), "n̄(F) must be non-negative");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ModelA { params, n_f, p }
    }

    /// Hit ratio with prefetching: `h = h′ + n̄(F)·p` (eq 7), clamped to 1.
    ///
    /// The clamp matters only when the caller exceeds the consistency bound
    /// `n̄(F) ≤ f′/p` (eq 6); the paper's figures plot into that region, so
    /// [`Self::hit_ratio_raw`] provides the unclamped value too.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_ratio_raw().min(1.0)
    }

    /// Unclamped `h′ + n̄(F)·p`.
    pub fn hit_ratio_raw(&self) -> f64 {
        self.params.h_prime + self.n_f * self.p
    }

    /// Whether this configuration respects the probabilistic consistency
    /// bound `n̄(F) ≤ max(np) = f′/p` (eq 6).
    pub fn is_consistent(&self) -> bool {
        self.p == 0.0 || self.n_f <= self.params.f_prime() / self.p + 1e-12
    }

    /// Server utilisation with prefetching:
    /// `ρ = (1 − h + n̄(F))·λ·s̄/b` (eq 8).
    pub fn utilisation(&self) -> f64 {
        let p = &self.params;
        (1.0 - self.hit_ratio_raw() + self.n_f) * p.lambda * p.mean_size / p.bandwidth
    }

    /// Whether the system remains stable with the prefetch load (`ρ < 1`,
    /// condition 3 of (12)).
    pub fn is_stable(&self) -> bool {
        self.utilisation() < 1.0
    }

    /// Mean retrieval time with prefetching (eq 9):
    /// `r̄ = s̄ / (b − (1 − h + n̄(F))·λ·s̄)`. `None` when unstable.
    pub fn retrieval_time(&self) -> Option<f64> {
        self.is_stable().then(|| {
            let p = &self.params;
            p.mean_size / (p.bandwidth * (1.0 - self.utilisation()))
        })
    }

    /// Mean access time with prefetching (eq 10): `t̄ = (1 − h)·r̄`.
    /// `None` when unstable.
    pub fn access_time(&self) -> Option<f64> {
        self.retrieval_time().map(|r| (1.0 - self.hit_ratio_raw()) * r)
    }

    /// Access improvement `G = t̄′ − t̄` (eq 11):
    ///
    /// ```text
    ///       n̄(F)·s̄·(p·b − f′·λ·s̄)
    /// G = ─────────────────────────────────────────────
    ///     (b − f′λs̄)(b − f′λs̄ − n̄(F)(1−p)λs̄)
    /// ```
    ///
    /// `None` when either the baseline or the prefetching system is
    /// unstable (the formula's sign flips there are artefacts; see the
    /// paper's footnote 1).
    pub fn improvement(&self) -> Option<f64> {
        (self.params.is_stable() && self.is_stable()).then(|| self.improvement_raw())
    }

    /// The raw eq-(11) value without stability guards. Used by the figure
    /// generators, which plot the formula exactly as the paper does.
    pub fn improvement_raw(&self) -> f64 {
        let sp = &self.params;
        let b = sp.bandwidth;
        let s = sp.mean_size;
        let l = sp.lambda;
        let fp = sp.f_prime();
        let num = self.n_f * s * (self.p * b - fp * l * s);
        let den = (b - fp * l * s) * (b - fp * l * s - self.n_f * (1.0 - self.p) * l * s);
        num / den
    }

    /// The threshold `p_th = f′λs̄/b = ρ′` (eq 13): prefetching an item
    /// improves mean access time iff its access probability exceeds this.
    pub fn threshold(&self) -> f64 {
        self.params.rho_prime()
    }

    /// Limit on `n̄(F)` from condition 3 of (12):
    /// `n̄(F) < (b − f′λs̄) / ((1−p)λs̄)`. `None` when `p = 1`
    /// (no limit — prefetches are always useful work).
    pub fn nf_limit(&self) -> Option<f64> {
        let sp = &self.params;
        if self.p >= 1.0 {
            return None;
        }
        Some(
            (sp.bandwidth - sp.f_prime() * sp.lambda * sp.mean_size)
                / ((1.0 - self.p) * sp.lambda * sp.mean_size),
        )
    }

    /// The three conditions of (12).
    pub fn conditions(&self) -> Conditions {
        let sp = &self.params;
        let b = sp.bandwidth;
        let s = sp.mean_size;
        let l = sp.lambda;
        let fp = sp.f_prime();
        Conditions {
            probability_above_threshold: self.p * b - fp * l * s > 0.0,
            stable_without_prefetch: b - fp * l * s > 0.0,
            stable_with_prefetch: b - fp * l * s - self.n_f * (1.0 - self.p) * l * s > 0.0,
        }
    }

    /// Excess retrieval cost `C = R − R′` (eq 27) for this configuration.
    pub fn excess_cost(&self) -> Option<f64> {
        excess::excess_cost(self.params.rho_prime(), self.utilisation(), self.params.lambda)
    }

    /// Everything at once, for the experiment harness.
    pub fn evaluate(&self) -> Evaluation {
        Evaluation {
            hit_ratio: self.hit_ratio(),
            utilisation: self.utilisation(),
            retrieval_time: self.retrieval_time(),
            access_time: self.access_time(),
            improvement: self.improvement(),
            excess_cost: self.excess_cost(),
            threshold: self.threshold(),
            conditions: self.conditions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_params(h: f64) -> SystemParams {
        SystemParams::paper_figure2(h)
    }

    #[test]
    fn threshold_is_rho_prime_eq13() {
        // h′ = 0: p_th = 0.6. h′ = 0.3: p_th = 0.42 (Figure 2 panels).
        assert!((ModelA::new(fig2_params(0.0), 1.0, 0.5).threshold() - 0.6).abs() < 1e-12);
        assert!((ModelA::new(fig2_params(0.3), 1.0, 0.5).threshold() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_eq7() {
        let m = ModelA::new(fig2_params(0.3), 0.5, 0.4);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_prefetch_recovers_baseline() {
        let params = fig2_params(0.3);
        let m = ModelA::new(params, 0.0, 0.5);
        assert!((m.hit_ratio() - 0.3).abs() < 1e-12);
        assert!((m.utilisation() - params.rho_prime()).abs() < 1e-12);
        assert!((m.access_time().unwrap() - params.access_time().unwrap()).abs() < 1e-15);
        assert_eq!(m.improvement().unwrap(), 0.0);
        assert_eq!(m.excess_cost().unwrap(), 0.0);
    }

    #[test]
    fn hand_computed_g_paper_parameters() {
        // s̄=1, λ=30, b=50, h′=0, n̄(F)=1, p=0.9:
        // G = 1·1·(0.9·50 − 30) / ((50−30)(50−30−1·0.1·30))
        //   = 15 / (20·17) = 0.044117647…
        let m = ModelA::new(fig2_params(0.0), 1.0, 0.9);
        let g = m.improvement().unwrap();
        assert!((g - 15.0 / 340.0).abs() < 1e-12, "G = {g}");
    }

    #[test]
    fn g_sign_matches_threshold_figure2_structure() {
        // Fig 2 (h′ = 0): p > 0.6 positive, p < 0.6 negative, p = 0.6 zero.
        let params = fig2_params(0.0);
        for nf10 in 1..=20 {
            let nf = nf10 as f64 / 10.0;
            for p10 in 1..=9 {
                let p = p10 as f64 / 10.0;
                let m = ModelA::new(params, nf, p);
                if !m.is_stable() {
                    continue; // formula leaves its validity region
                }
                let g = m.improvement().unwrap();
                if p > 0.6 + 1e-9 {
                    assert!(g > 0.0, "G({nf},{p}) = {g} should be positive");
                } else if p < 0.6 - 1e-9 {
                    assert!(g < 0.0, "G({nf},{p}) = {g} should be negative");
                } else {
                    assert!(g.abs() < 1e-12, "G({nf},{p}) = {g} should be zero");
                }
            }
        }
    }

    #[test]
    fn g_monotone_in_nf_for_fixed_p() {
        // Paper: "G indeed increases or decreases monotonously for any fixed
        // p ≷ pth, as n̄(F) varies from 0 to max(np)".
        let params = fig2_params(0.3);
        for &(p, positive) in &[(0.9, true), (0.2, false)] {
            let mut last = 0.0;
            let max_np = params.max_prefetch_count(p);
            let steps = 50;
            for i in 1..=steps {
                let nf = max_np * i as f64 / steps as f64;
                let m = ModelA::new(params, nf, p);
                if !m.is_stable() {
                    break;
                }
                let g = m.improvement().unwrap();
                if positive {
                    assert!(g > last, "G should increase: {g} after {last}");
                } else {
                    assert!(g < last, "G should decrease: {g} after {last}");
                }
                last = g;
            }
        }
    }

    #[test]
    fn conditions_eq12() {
        let params = fig2_params(0.0);
        // p above threshold, light prefetch volume: all conditions hold.
        let c = ModelA::new(params, 0.5, 0.9).conditions();
        assert!(c.all());
        // p below threshold: condition 1 fails.
        let c = ModelA::new(params, 0.5, 0.3).conditions();
        assert!(!c.probability_above_threshold);
        assert!(c.stable_without_prefetch);
        // Heavy prefetching of improbable items: condition 3 fails.
        let c = ModelA::new(params, 2.0, 0.1).conditions();
        assert!(!c.stable_with_prefetch);
    }

    #[test]
    fn nf_limit_under_marginal_bandwidth_is_max_np() {
        // Eq (14): with b barely above f′λs̄/p, the n̄(F) limit from
        // condition 3 approaches f′/p = max(np) — hence condition 3 is
        // redundant.
        let p = 0.5;
        let h_prime: f64 = 0.2;
        let f_prime = 1.0 - h_prime;
        let lambda = 10.0;
        let s = 1.0;
        let b = f_prime * lambda * s / p * 1.0001; // just over the threshold b
        let params = SystemParams::new(lambda, b, s, h_prime).unwrap();
        let m = ModelA::new(params, 1.0, p);
        let limit = m.nf_limit().unwrap();
        let max_np = params.max_prefetch_count(p);
        assert!((limit - max_np).abs() / max_np < 0.01, "limit {limit} vs max_np {max_np}");
        // And the limit always exceeds max_np when condition 1 holds.
        assert!(limit >= max_np - 1e-9);
    }

    #[test]
    fn p_equal_one_has_no_nf_limit() {
        let m = ModelA::new(fig2_params(0.0), 1.0, 1.0);
        assert!(m.nf_limit().is_none());
        // With p = 1 prefetching is informed, not speculative: every
        // prefetch substitutes one demand fetch, so utilisation is unchanged.
        assert!((m.utilisation() - m.params.rho_prime()).abs() < 1e-12);
    }

    #[test]
    fn unstable_configuration_returns_none() {
        // p=0.1, n̄(F)=1: ρ = (1 − 0.1 + 1)·0.6 = 1.14 > 1.
        let m = ModelA::new(fig2_params(0.0), 1.0, 0.1);
        assert!(!m.is_stable());
        assert!(m.retrieval_time().is_none());
        assert!(m.access_time().is_none());
        assert!(m.improvement().is_none());
        assert!(m.excess_cost().is_none());
    }

    #[test]
    fn consistency_bound_eq6() {
        let params = fig2_params(0.3); // f′ = 0.7
        assert!(ModelA::new(params, 1.0, 0.7).is_consistent()); // nf = f′/p exactly
        assert!(!ModelA::new(params, 1.5, 0.7).is_consistent());
        assert!(ModelA::new(params, 100.0, 0.0).is_consistent()); // p = 0 vacuous
    }

    #[test]
    fn evaluation_is_coherent() {
        let m = ModelA::new(fig2_params(0.3), 0.5, 0.8);
        let e = m.evaluate();
        assert_eq!(e.hit_ratio, m.hit_ratio());
        assert_eq!(e.utilisation, m.utilisation());
        assert_eq!(e.improvement, m.improvement());
        assert!(e.conditions.all());
        // t̄′ − t̄ must equal G.
        let g = m.params.access_time().unwrap() - e.access_time.unwrap();
        assert!((g - e.improvement.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn improvement_raw_matches_t_bar_difference_when_stable() {
        // Cross-check eq (11) against direct t̄′ − t̄ computation.
        for &h in &[0.0, 0.3, 0.6] {
            let params = fig2_params(h);
            for &p in &[0.5, 0.7, 0.95] {
                for &nf in &[0.1, 0.5, 1.0] {
                    let m = ModelA::new(params, nf, p);
                    if !(m.is_stable() && params.is_stable()) {
                        continue;
                    }
                    let direct = params.access_time().unwrap() - m.access_time().unwrap();
                    let formula = m.improvement_raw();
                    assert!(
                        (direct - formula).abs() < 1e-12,
                        "h={h} p={p} nf={nf}: {direct} vs {formula}"
                    );
                }
            }
        }
    }
}
