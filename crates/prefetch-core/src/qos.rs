//! QoS planning — the paper's stated future work, carried out.
//!
//! The conclusions announce: "We are investigating the application of this
//! work in addressing QoS issues of multimedia access…". The natural QoS
//! question under this model: **given a mean-access-time budget `t_max`,
//! which prefetching configurations are admissible, and how much budget
//! does a configuration leave?**
//!
//! Everything follows from inverting eq (10): for a Model-A configuration,
//! `t̄(n̄F, p) ≤ t_max` defines a region in the `(n̄F, p)` plane whose
//! boundary this module computes in closed form.

use crate::model_a::ModelA;
use crate::params::SystemParams;

/// Result of a QoS admission check.
///
/// ```
/// use prefetch_core::qos::{admit, Admission};
/// use prefetch_core::SystemParams;
///
/// let params = SystemParams::paper_figure2(0.3); // t̄′ ≈ 0.0241
/// // Prefetching confident candidates buys slack against a 25 ms budget…
/// assert!(matches!(admit(&params, 0.5, 0.9, 0.025), Admission::Admitted { .. }));
/// // …while speculative flooding destroys the steady state outright.
/// assert_eq!(admit(&params, 3.0, 0.1, 0.025), Admission::Unstable);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// Configuration meets the budget; the slack `t_max − t̄` is attached.
    Admitted { slack: f64 },
    /// Stable but over budget by the attached amount.
    OverBudget { excess: f64 },
    /// The configuration destabilises the server (no steady state at all).
    Unstable,
}

/// Checks a Model-A configuration against a mean-access-time budget.
pub fn admit(params: &SystemParams, n_f: f64, p: f64, t_max: f64) -> Admission {
    assert!(t_max > 0.0);
    let m = ModelA::new(*params, n_f, p);
    match m.access_time() {
        None => Admission::Unstable,
        Some(t) if t <= t_max => Admission::Admitted { slack: t_max - t },
        Some(t) => Admission::OverBudget { excess: t - t_max },
    }
}

/// Whether the *baseline* (no prefetching) already meets the budget.
pub fn baseline_admissible(params: &SystemParams, t_max: f64) -> bool {
    matches!(admit(params, 0.0, 0.0, t_max), Admission::Admitted { .. })
}

/// The maximum prefetch volume of probability-`p` items that keeps
/// `t̄ ≤ t_max` (Model A), or `None` if no positive volume does.
///
/// Solving eq (10) for `n̄F`:
///
/// ```text
/// t̄(n) = (f′ − np)s̄ / (b − f′λs̄ − n(1−p)λs̄) ≤ t_max
/// ⇔ n·[p·s̄ − t_max·(1−p)λs̄] ≥ f′s̄ − t_max(b − f′λs̄)
/// ```
///
/// When the bracket is positive (likely for `p` near 1), *any* volume
/// helps and the limit is the stability bound; when negative, volume hurts
/// and the inequality caps it. `f64::INFINITY` means "no limit from the
/// budget" (stability is still the caller's concern — combine with
/// [`ModelA::nf_limit`]).
pub fn max_volume_for_budget(params: &SystemParams, p: f64, t_max: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p) && t_max > 0.0);
    let s = params.mean_size;
    let b = params.bandwidth;
    let l = params.lambda;
    let fp = params.f_prime();
    // coefficient of n (note t̄ decreasing in n ⇔ coeff > 0):
    let coeff = p * s - t_max * (1.0 - p) * l * s;
    let rhs = fp * s - t_max * (b - fp * l * s);
    if rhs <= 0.0 {
        // Baseline already within budget.
        if coeff >= 0.0 {
            // More volume only helps (or is neutral): stability is the only cap.
            return Some(f64::INFINITY);
        }
        // Volume hurts; budget caps it at rhs/coeff (both negative).
        return Some(rhs / coeff);
    }
    // Baseline over budget: need n large enough, possible only if coeff > 0.
    (coeff > 0.0).then_some(f64::INFINITY) // any n ≥ rhs/coeff works; no *max*.
}

/// The minimum prefetch volume of probability-`p` items needed to *bring*
/// an over-budget baseline within `t_max` (Model A). `None` when
/// impossible (p too small or budget unreachable before saturation).
pub fn min_volume_for_budget(params: &SystemParams, p: f64, t_max: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p) && t_max > 0.0);
    if baseline_admissible(params, t_max) {
        return Some(0.0);
    }
    let s = params.mean_size;
    let b = params.bandwidth;
    let l = params.lambda;
    let fp = params.f_prime();
    let coeff = p * s - t_max * (1.0 - p) * l * s;
    let rhs = fp * s - t_max * (b - fp * l * s);
    if coeff <= 0.0 {
        return None; // volume cannot reduce t̄ to the budget
    }
    let n = rhs / coeff;
    // Must remain stable and probability-consistent at that volume.
    let m = ModelA::new(*params, n, p);
    (m.is_stable() && m.is_consistent()).then_some(n)
}

/// Samples the admissible boundary `t̄(n̄F, p) = t_max` as `(p, n̄F_max)`
/// pairs over a probability grid — the QoS version of Figure 2.
pub fn budget_frontier(
    params: &SystemParams,
    t_max: f64,
    p_points: usize,
) -> Vec<(f64, Option<f64>)> {
    (1..=p_points)
        .map(|i| {
            let p = i as f64 / p_points as f64;
            (p, max_volume_for_budget(params, p, t_max))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SystemParams {
        SystemParams::paper_figure2(0.3) // t̄′ = 0.7/29 ≈ 0.02414
    }

    #[test]
    fn baseline_admission() {
        let p = params();
        assert!(baseline_admissible(&p, 0.03));
        assert!(!baseline_admissible(&p, 0.02));
    }

    #[test]
    fn admit_classifies_all_three_ways() {
        let sp = params();
        // Good config well under budget.
        match admit(&sp, 0.5, 0.9, 0.03) {
            Admission::Admitted { slack } => assert!(slack > 0.0),
            other => panic!("{other:?}"),
        }
        // Harmful config over a tight budget.
        match admit(&sp, 0.5, 0.2, 0.024) {
            Admission::OverBudget { excess } => assert!(excess > 0.0),
            other => panic!("{other:?}"),
        }
        // Saturating config.
        assert_eq!(admit(&sp, 3.0, 0.1, 0.1), Admission::Unstable);
    }

    #[test]
    fn max_volume_budget_boundary_is_exact() {
        // Pick p below threshold so volume hurts; the returned max volume
        // must put t̄ exactly on the budget.
        let sp = params();
        let p = 0.3; // p_th = 0.42 → t̄ increasing in volume
        let t_max = 0.027; // slightly above t̄′
        let n_max = max_volume_for_budget(&sp, p, t_max).unwrap();
        assert!(n_max.is_finite() && n_max > 0.0);
        let at_boundary = ModelA::new(sp, n_max, p).access_time().unwrap();
        assert!((at_boundary - t_max).abs() < 1e-9, "t̄ {at_boundary} vs {t_max}");
        // Just beyond the boundary: over budget.
        let beyond = ModelA::new(sp, n_max * 1.05, p).access_time().unwrap();
        assert!(beyond > t_max);
    }

    #[test]
    fn good_candidates_unlimited_by_budget() {
        let sp = params();
        // p = 0.9 > p_th: volume reduces t̄, so the budget imposes no max.
        assert_eq!(max_volume_for_budget(&sp, 0.9, 0.03), Some(f64::INFINITY));
    }

    #[test]
    fn min_volume_reaches_tight_budget() {
        let sp = params();
        let t_max = 0.015; // below t̄′ ≈ 0.0241: baseline over budget
        let n = min_volume_for_budget(&sp, 0.9, t_max).unwrap();
        assert!(n > 0.0);
        let t = ModelA::new(sp, n, 0.9).access_time().unwrap();
        assert!((t - t_max).abs() < 1e-9, "t̄ {t}");
        // Low-p items can never get there.
        assert!(min_volume_for_budget(&sp, 0.2, t_max).is_none());
    }

    #[test]
    fn frontier_is_monotone_in_p() {
        // Higher p ⇒ weakly larger admissible volume.
        let sp = params();
        let frontier = budget_frontier(&sp, 0.026, 10);
        let as_num = |v: &Option<f64>| v.unwrap_or(f64::NEG_INFINITY);
        for w in frontier.windows(2) {
            assert!(
                as_num(&w[1].1) >= as_num(&w[0].1) - 1e-9,
                "frontier not monotone: {frontier:?}"
            );
        }
    }

    #[test]
    fn min_volume_zero_when_already_within_budget() {
        let sp = params();
        assert_eq!(min_volume_for_budget(&sp, 0.5, 0.05), Some(0.0));
    }
}
