//! The paper's headline policy: *prefetch exclusively all items with access
//! probability above `p_th`*.
//!
//! [`ThresholdPolicy`] turns a predictor's candidate list — `(item,
//! probability)` pairs — into a prefetch decision. Because G is monotone in
//! `n̄(F)` once `p > p_th` (paper §3.1), the optimal policy has no volume
//! knob: every candidate above the threshold is taken, every one below is
//! dropped.

use crate::model_ab::ModelAb;
use crate::params::SystemParams;
use crate::InteractionModel;

/// A threshold-based prefetch policy.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdPolicy {
    /// `p_th`: candidates must *strictly exceed* this to be prefetched.
    pub threshold: f64,
    /// Which interaction model produced the threshold (bookkeeping).
    pub model: InteractionModel,
}

/// The outcome of applying a [`ThresholdPolicy`] to a candidate list.
#[derive(Clone, Debug, PartialEq)]
pub struct PrefetchDecision<I> {
    /// Candidates to prefetch, in descending probability order.
    pub selected: Vec<(I, f64)>,
    /// Candidates rejected (below threshold), in descending probability order.
    pub rejected: Vec<(I, f64)>,
    /// The threshold that was applied.
    pub threshold: f64,
}

impl<I> PrefetchDecision<I> {
    /// Number of selected items (`n̄(F)` contribution of this decision).
    pub fn volume(&self) -> usize {
        self.selected.len()
    }

    /// Expected number of future hits among the selected items (Σp).
    pub fn expected_hits(&self) -> f64 {
        self.selected.iter().map(|(_, p)| p).sum()
    }
}

impl ThresholdPolicy {
    /// Policy from an explicit threshold.
    pub fn new(threshold: f64, model: InteractionModel) -> Self {
        assert!(threshold >= 0.0);
        ThresholdPolicy { threshold, model }
    }

    /// Model-A policy: `p_th = ρ′` (eq 13).
    pub fn from_model_a(params: &SystemParams) -> Self {
        ThresholdPolicy::new(params.rho_prime(), InteractionModel::EvictZeroValue)
    }

    /// Model-B policy: `p_th = ρ′ + h′/n̄(C)` (eq 21).
    pub fn from_model_b(params: &SystemParams, n_c: f64) -> Self {
        assert!(n_c > 0.0);
        ThresholdPolicy::new(
            params.rho_prime() + params.h_prime / n_c,
            InteractionModel::EvictAverageValue,
        )
    }

    /// Should an item with access probability `p` be prefetched?
    #[inline]
    pub fn should_prefetch(&self, p: f64) -> bool {
        p > self.threshold
    }

    /// Partitions candidates into selected/rejected, both sorted by
    /// descending probability. NaN probabilities are rejected.
    pub fn decide<I>(&self, candidates: impl IntoIterator<Item = (I, f64)>) -> PrefetchDecision<I> {
        let mut selected = Vec::new();
        let mut rejected = Vec::new();
        for (item, p) in candidates {
            if p.is_finite() && self.should_prefetch(p) {
                selected.push((item, p));
            } else {
                rejected.push((item, p));
            }
        }
        selected.sort_by(|a, b| b.1.total_cmp(&a.1));
        rejected.sort_by(|a, b| b.1.total_cmp(&a.1));
        PrefetchDecision { selected, rejected, threshold: self.threshold }
    }
}

/// Exact-optimal selection over a **heterogeneous** candidate set — an
/// extension beyond the paper's uniform-`p` analysis.
///
/// The paper proves that for candidates sharing one probability `p`, the
/// rule "prefetch all iff `p > ρ′`" maximises `G`. With *mixed*
/// probabilities, the rule is exact only at the margin: every profitable
/// inclusion lowers the operating-point threshold
/// `p* = (1−h)λs̄/(b − Vλs̄)` (see
/// [`crate::sensitivity::marginal_threshold`]), so the true optimum may
/// include candidates *below* `ρ′`.
///
/// Optimality of the greedy construction: for a fixed inclusion count `k`,
/// `G` increases with `Σp` (top-`k` by probability is best), and the
/// marginal threshold only falls while included items clear it — so
/// descending-probability greedy with the stop rule `pᵢ ≤ p*` is globally
/// optimal (verified against brute force in the integration suite).
#[derive(Clone, Copy, Debug)]
pub struct OptimalMixPolicy {
    pub params: SystemParams,
}

impl OptimalMixPolicy {
    pub fn new(params: SystemParams) -> Self {
        OptimalMixPolicy { params }
    }

    /// Selects the G-maximising subset of candidates. Each candidate is one
    /// item fetched once per request (unit volume); the probabilities must
    /// be consistent (they describe one next request, so `h′ + Σp ≤ 1`).
    /// Returns the decision plus the final marginal threshold.
    pub fn decide<I>(
        &self,
        candidates: impl IntoIterator<Item = (I, f64)>,
    ) -> (PrefetchDecision<I>, f64) {
        let sp = &self.params;
        let mut sorted: Vec<(I, f64)> = candidates.into_iter().collect();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut selected = Vec::new();
        let mut rejected = Vec::new();
        let mut h_extra = 0.0;
        let mut volume = 0.0;
        let mut threshold = sp.rho_prime();
        let mut still_taking = true;
        for (item, p) in sorted {
            let take = still_taking
                && p.is_finite()
                && match crate::sensitivity::marginal_threshold(sp, h_extra, volume) {
                    Some(th) => {
                        threshold = th;
                        // Stability with this item included: ρ_new < 1.
                        let h_new = (sp.h_prime + h_extra + p).min(1.0);
                        let rho_new =
                            (1.0 - h_new + volume + 1.0) * sp.lambda * sp.mean_size / sp.bandwidth;
                        p > th && rho_new < 1.0
                    }
                    None => false,
                };
            if take {
                h_extra += p;
                volume += 1.0;
                selected.push((item, p));
            } else {
                // Candidates are sorted descending: once one fails, the
                // threshold is frozen and the rest fail too.
                still_taking = false;
                rejected.push((item, p));
            }
        }
        (PrefetchDecision { selected, rejected, threshold }, threshold)
    }
}

/// Marginal access improvement of prefetching *one more* item of
/// probability `p`, per user request, at the current operating point:
/// `∂G/∂n̄(F)` of the AB-family formula evaluated at `n̄(F) = n_f`.
///
/// Used to *rank* heterogeneous candidates; its sign at any `n_f` equals
/// the sign of `p − p_th`, so ranking is consistent with the policy.
pub fn marginal_improvement(params: &SystemParams, n_f: f64, p: f64, evict_value: f64) -> f64 {
    // G(n) = K·n / (D1·(D1 − n·c)) with
    //   K  = s̄(p'b − f′λs̄),  p' = p − q
    //   c  = (1 − p')λs̄, D1 = b − f′λs̄
    // dG/dn = K·D1 / (D1(D1 − n·c))² · D1 … compute by quotient rule.
    let b = params.bandwidth;
    let s = params.mean_size;
    let l = params.lambda;
    let fp = params.f_prime();
    let pq = p - evict_value;
    let k = s * (pq * b - fp * l * s);
    let c = (1.0 - pq) * l * s;
    let d1 = b - fp * l * s;
    let d2 = d1 - n_f * c;
    // G = K n / (d1 d2); dG/dn = K (d2 + n c) / (d1 d2²) = K d1 / (d1 d2²)
    //   (since d2 + n·c = d1).
    k / (d2 * d2)
}

// Quiet an unused-import warning in non-test builds: ModelAb is referenced
// in the doc comment derivation and used directly by tests.
#[allow(unused_imports)]
use ModelAb as _ModelAbForDocs;

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SystemParams {
        SystemParams::paper_figure2(0.3) // ρ′ = 0.42
    }

    #[test]
    fn model_a_threshold_is_rho_prime() {
        let pol = ThresholdPolicy::from_model_a(&params());
        assert!((pol.threshold - 0.42).abs() < 1e-12);
        assert!(pol.should_prefetch(0.43));
        assert!(!pol.should_prefetch(0.42)); // strict inequality
        assert!(!pol.should_prefetch(0.41));
    }

    #[test]
    fn model_b_threshold_adds_eviction_value() {
        let pol = ThresholdPolicy::from_model_b(&params(), 10.0);
        assert!((pol.threshold - 0.45).abs() < 1e-12);
    }

    #[test]
    fn decide_partitions_and_sorts() {
        let pol = ThresholdPolicy::new(0.5, InteractionModel::EvictZeroValue);
        let d = pol.decide(vec![("a", 0.6), ("b", 0.2), ("c", 0.9), ("d", 0.5)]);
        assert_eq!(d.selected, vec![("c", 0.9), ("a", 0.6)]);
        assert_eq!(d.rejected, vec![("d", 0.5), ("b", 0.2)]);
        assert_eq!(d.volume(), 2);
        assert!((d.expected_hits() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nan_probabilities_are_rejected() {
        let pol = ThresholdPolicy::new(0.1, InteractionModel::EvictZeroValue);
        let d = pol.decide(vec![(1u32, f64::NAN), (2, 0.5)]);
        assert_eq!(d.selected.len(), 1);
        assert_eq!(d.selected[0].0, 2);
        assert_eq!(d.rejected.len(), 1);
    }

    #[test]
    fn empty_candidates() {
        let pol = ThresholdPolicy::from_model_a(&params());
        let d = pol.decide(Vec::<(u64, f64)>::new());
        assert_eq!(d.volume(), 0);
        assert_eq!(d.expected_hits(), 0.0);
    }

    #[test]
    fn marginal_improvement_sign_matches_threshold() {
        let sp = params();
        for p10 in 1..=9 {
            let p = p10 as f64 / 10.0;
            let m = marginal_improvement(&sp, 0.0, p, 0.0);
            if p > 0.42 + 1e-9 {
                assert!(m > 0.0, "marginal({p}) = {m}");
            } else if p < 0.42 - 1e-9 {
                assert!(m < 0.0, "marginal({p}) = {m}");
            }
        }
    }

    #[test]
    fn marginal_improvement_matches_finite_difference() {
        let sp = params();
        let n_f = 0.5;
        let p = 0.8;
        let eps = 1e-6;
        use crate::model_ab::ModelAb;
        let g1 = ModelAb::new(sp, n_f + eps, p, 0.0).improvement_raw();
        let g0 = ModelAb::new(sp, n_f, p, 0.0).improvement_raw();
        let fd = (g1 - g0) / eps;
        let analytic = marginal_improvement(&sp, n_f, p, 0.0);
        assert!((fd - analytic).abs() / analytic.abs() < 1e-4, "fd {fd} vs {analytic}");
    }

    /// Roomier parameters for the mixed-candidate tests: ρ′ = 0.21, so
    /// consistent candidate sets (h′ + Σp ≤ 1) have headroom.
    fn roomy_params() -> SystemParams {
        SystemParams::new(30.0, 100.0, 1.0, 0.3).unwrap()
    }

    #[test]
    fn optimal_mix_reduces_to_paper_rule_for_homogeneous_candidates() {
        // All candidates share one p: the optimal mix takes all (p > ρ′) or
        // none (p < ρ′) — exactly the paper's conclusion. (Σp stays within
        // the consistency bound: 3·0.22 + 0.3 = 0.96 ≤ 1.)
        let sp = roomy_params(); // ρ′ = 0.21
        let pol = OptimalMixPolicy::new(sp);
        let above: Vec<(u32, f64)> = (0..3).map(|i| (i, 0.22)).collect();
        let (d, _) = pol.decide(above);
        assert_eq!(d.volume(), 3, "{d:?}");
        let below: Vec<(u32, f64)> = (0..3).map(|i| (i, 0.2)).collect();
        let (d, _) = pol.decide(below);
        assert_eq!(d.volume(), 0, "{d:?}");
    }

    #[test]
    fn optimal_mix_can_include_below_rho_prime() {
        // After including p = 0.5, the marginal threshold falls from
        // ρ′ = 0.21 to (1−0.8)·30/(100−30) ≈ 0.086, making a p = 0.15
        // candidate profitable — beyond the paper's fixed-ρ′ rule.
        let sp = roomy_params();
        let pol = OptimalMixPolicy::new(sp);
        let (d, final_th) = pol.decide(vec![("a", 0.5), ("b", 0.15)]);
        assert_eq!(d.volume(), 2, "both should be included: {d:?}");
        assert!(final_th < 0.15, "final marginal threshold {final_th}");
        // The paper's fixed rule takes only one.
        let fixed = ThresholdPolicy::from_model_a(&sp).decide(vec![("a", 0.5), ("b", 0.15)]);
        assert_eq!(fixed.volume(), 1);
    }

    #[test]
    fn optimal_mix_marginal_threshold_decreases_during_inclusion() {
        let sp = roomy_params();
        use crate::sensitivity::marginal_threshold;
        let th0 = marginal_threshold(&sp, 0.0, 0.0).unwrap();
        assert!((th0 - sp.rho_prime()).abs() < 1e-12, "reduces to ρ′ at origin");
        let th1 = marginal_threshold(&sp, 0.5, 1.0).unwrap();
        assert!(th1 < th0, "{th1} < {th0}");
        let th2 = marginal_threshold(&sp, 0.65, 2.0).unwrap();
        assert!(th2 < th1, "{th2} < {th1}");
        // Saturated volume: no finite threshold.
        assert!(marginal_threshold(&sp, 0.65, 4.0).is_none());
    }

    #[test]
    fn optimal_mix_respects_stability() {
        // A saturating volume of junk candidates must not all be taken.
        let sp = params();
        let pol = OptimalMixPolicy::new(sp);
        let many: Vec<(u32, f64)> = (0..50).map(|i| (i, 0.5)).collect();
        let (d, _) = pol.decide(many);
        // Taking all 50 would give volume·λ·s̄ = 1500 ≫ b = 50.
        assert!(d.volume() < 50);
        // And the chosen configuration is stable.
        let h_extra: f64 = d.selected.iter().map(|(_, p)| p).sum();
        let rho =
            (1.0 - (sp.h_prime + h_extra).min(1.0) + d.volume() as f64) * sp.lambda * sp.mean_size
                / sp.bandwidth;
        assert!(rho < 1.0, "rho {rho}");
    }

    #[test]
    fn greedy_by_marginal_equals_threshold_policy() {
        // Selecting every candidate with positive marginal improvement is
        // the same set as the threshold policy selects.
        let sp = params();
        let pol = ThresholdPolicy::from_model_a(&sp);
        let candidates: Vec<(u32, f64)> = (0..20).map(|i| (i, (i as f64 + 0.5) / 20.0)).collect();
        let d = pol.decide(candidates.clone());
        let by_marginal: Vec<u32> = candidates
            .iter()
            .filter(|(_, p)| marginal_improvement(&sp, 0.0, *p, 0.0) > 0.0)
            .map(|(i, _)| *i)
            .collect();
        let mut selected: Vec<u32> = d.selected.iter().map(|(i, _)| *i).collect();
        selected.sort_unstable();
        assert_eq!(selected, by_marginal);
    }
}
