//! Sensitivity analysis and capacity planning on top of the closed forms.
//!
//! The paper's figures are one-dimensional sweeps; this module provides the
//! derivative/crossover machinery behind them: where the threshold line of
//! Figure 1 crosses `p = 1` (prefetching can never pay), the minimum
//! bandwidth that makes a given candidate profitable, and the bandwidth at
//! which a prefetching configuration saturates the server.

use crate::params::SystemParams;

/// `p_th` as a function of item size `s` (the x-axis of Figure 1):
/// `p_th(s) = f′·λ·s/b` — linear in `s` with slope `f′λ/b`.
pub fn threshold_vs_size(lambda: f64, bandwidth: f64, h_prime: f64, s: f64) -> f64 {
    assert!(lambda > 0.0 && bandwidth > 0.0 && (0.0..=1.0).contains(&h_prime) && s >= 0.0);
    (1.0 - h_prime) * lambda * s / bandwidth
}

/// The item size at which `p_th` reaches 1 — beyond this size *no* item is
/// worth prefetching no matter how certain the access:
/// `s* = b/(f′λ)`. `None` if `f′ = 0` (no demand load at all).
pub fn size_where_threshold_saturates(lambda: f64, bandwidth: f64, h_prime: f64) -> Option<f64> {
    let f = 1.0 - h_prime;
    (f > 0.0).then(|| bandwidth / (f * lambda))
}

/// Minimum bandwidth for prefetching items of probability `p` to be
/// profitable (condition 1 of (12) rearranged): `b > f′λs̄/p`.
pub fn min_bandwidth_for_profit(params: &SystemParams, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0);
    params.f_prime() * params.lambda * params.mean_size / p
}

/// Bandwidth at which the *prefetching* system saturates (`ρ = 1`, model A):
/// `b* = f′λs̄ + n̄(F)(1−p)λs̄` — below this, the configuration is
/// unstable regardless of profitability.
pub fn saturation_bandwidth(params: &SystemParams, n_f: f64, p: f64) -> f64 {
    assert!(n_f >= 0.0 && (0.0..=1.0).contains(&p));
    let l = params.lambda;
    let s = params.mean_size;
    params.f_prime() * l * s + n_f * (1.0 - p) * l * s
}

/// The **marginal threshold at an operating point** — an extension beyond
/// the paper's uniform-`p` analysis.
///
/// Suppose the system already prefetches a mix that contributes `h_extra`
/// of hit ratio (`Σ vᵢpᵢ`) and `volume` of per-request fetch volume
/// (`Σ vᵢ`). Differentiating `t̄` with respect to an additional
/// infinitesimal volume of probability-`p` items shows the marginal item
/// improves `G` iff
///
/// ```text
/// p  >  p*(h_extra, volume) = (1 − h)·λ·s̄ / (b − volume·λ·s̄)
/// ```
///
/// with `h = h′ + h_extra`. At the no-prefetch point this reduces to the
/// paper's `p_th = ρ′` (eq 13). Including profitable items *lowers* `p*`
/// (hits shed demand load faster than prefetch volume adds it), so with
/// heterogeneous candidates the paper's rule is exact only to first order
/// — see [`crate::threshold`]'s `OptimalMixPolicy`.
///
/// Returns `None` when the prefetch volume already saturates the link.
pub fn marginal_threshold(params: &SystemParams, h_extra: f64, volume: f64) -> Option<f64> {
    assert!(h_extra >= 0.0 && volume >= 0.0);
    let h = (params.h_prime + h_extra).min(1.0);
    let denom = params.bandwidth - volume * params.lambda * params.mean_size;
    (denom > 0.0).then(|| (1.0 - h) * params.lambda * params.mean_size / denom)
}

/// `∂p_th/∂λ = f′s̄/b`: how fast the profitability bar rises with load.
pub fn dthreshold_dlambda(params: &SystemParams) -> f64 {
    params.f_prime() * params.mean_size / params.bandwidth
}

/// `∂p_th/∂h′ = −λs̄/b` (model A): better caching *lowers* the bar —
/// counterintuitive but direct from `p_th = (1−h′)λs̄/b`.
pub fn dthreshold_dhprime(params: &SystemParams) -> f64 {
    -params.lambda * params.mean_size / params.bandwidth
}

/// Solves for the `n̄(F)` at which model-A utilisation reaches `rho_target`
/// (< 1): how much prefetch volume fits in the remaining capacity.
/// `None` if already above the target with no prefetching, or `p = 1`
/// (volume never moves utilisation).
pub fn nf_for_utilisation(params: &SystemParams, p: f64, rho_target: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&rho_target));
    let rho0 = params.rho_prime();
    if rho0 > rho_target {
        return None;
    }
    let per_item = (1.0 - p) * params.lambda * params.mean_size / params.bandwidth;
    if per_item <= 0.0 {
        return None;
    }
    Some((rho_target - rho0) / per_item)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_a::ModelA;

    #[test]
    fn threshold_vs_size_matches_figure1_shape() {
        // Fig 1, h′=0 panel, λ=30: at b=50 the line hits p_th=1 at s=5/3;
        // at b=450 it hits 1 at s=15.
        let pth = threshold_vs_size(30.0, 50.0, 0.0, 1.0);
        assert!((pth - 0.6).abs() < 1e-12);
        let s_star = size_where_threshold_saturates(30.0, 50.0, 0.0).unwrap();
        assert!((s_star - 5.0 / 3.0).abs() < 1e-12);
        let s_star = size_where_threshold_saturates(30.0, 450.0, 0.0).unwrap();
        assert!((s_star - 15.0).abs() < 1e-12);
        // h′ = 0.3 panel: thresholds are 30% lower.
        let pth3 = threshold_vs_size(30.0, 50.0, 0.3, 1.0);
        assert!((pth3 - 0.42).abs() < 1e-12);
    }

    #[test]
    fn larger_bandwidth_lower_threshold() {
        let mut last = f64::INFINITY;
        for b in [50.0, 150.0, 250.0, 350.0, 450.0] {
            let pth = threshold_vs_size(30.0, b, 0.0, 2.0);
            assert!(pth < last);
            last = pth;
        }
    }

    #[test]
    fn saturating_size_none_when_no_demand() {
        assert!(size_where_threshold_saturates(30.0, 50.0, 1.0).is_none());
    }

    #[test]
    fn min_bandwidth_for_profit_matches_condition1() {
        let params = SystemParams::paper_figure2(0.3);
        let p = 0.5;
        let b_min = min_bandwidth_for_profit(&params, p);
        // Just above b_min: profitable. Just below: not.
        let above =
            SystemParams::new(params.lambda, b_min * 1.01, params.mean_size, params.h_prime)
                .unwrap();
        let below =
            SystemParams::new(params.lambda, b_min * 0.99, params.mean_size, params.h_prime)
                .unwrap();
        assert!(ModelA::new(above, 0.1, p).conditions().probability_above_threshold);
        assert!(!ModelA::new(below, 0.1, p).conditions().probability_above_threshold);
    }

    #[test]
    fn saturation_bandwidth_matches_model_a_stability() {
        let params = SystemParams::paper_figure2(0.0);
        let (n_f, p) = (1.0, 0.1);
        let b_star = saturation_bandwidth(&params, n_f, p);
        let stable =
            SystemParams::new(params.lambda, b_star * 1.01, params.mean_size, params.h_prime)
                .unwrap();
        let unstable =
            SystemParams::new(params.lambda, b_star * 0.99, params.mean_size, params.h_prime)
                .unwrap();
        assert!(ModelA::new(stable, n_f, p).is_stable());
        assert!(!ModelA::new(unstable, n_f, p).is_stable());
    }

    #[test]
    fn derivative_signs() {
        let params = SystemParams::paper_figure2(0.3);
        assert!(dthreshold_dlambda(&params) > 0.0);
        assert!(dthreshold_dhprime(&params) < 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let params = SystemParams::paper_figure2(0.3);
        let eps = 1e-6;
        let p_hi = SystemParams::new(
            params.lambda + eps,
            params.bandwidth,
            params.mean_size,
            params.h_prime,
        )
        .unwrap();
        let fd_lambda = (p_hi.rho_prime() - params.rho_prime()) / eps;
        assert!((fd_lambda - dthreshold_dlambda(&params)).abs() < 1e-6);

        let p_hh = params.with_h_prime(params.h_prime + eps);
        let fd_h = (p_hh.rho_prime() - params.rho_prime()) / eps;
        assert!((fd_h - dthreshold_dhprime(&params)).abs() < 1e-6);
    }

    #[test]
    fn nf_for_utilisation_solves_model_a() {
        let params = SystemParams::paper_figure2(0.3); // ρ′ = 0.42
        let p = 0.5;
        let nf = nf_for_utilisation(&params, p, 0.9).unwrap();
        let m = ModelA::new(params, nf, p);
        assert!((m.utilisation() - 0.9).abs() < 1e-9);
        // Already saturated target.
        assert!(nf_for_utilisation(&params, p, 0.3).is_none());
        // p = 1 never moves utilisation.
        assert!(nf_for_utilisation(&params, 1.0, 0.9).is_none());
    }
}
