//! System parameters and the no-prefetch baseline (paper §2.3).
//!
//! [`SystemParams`] bundles the four quantities every formula in the paper
//! depends on — request rate `λ`, bandwidth `b`, mean item size `s̄`, and
//! the no-prefetch hit ratio `h′` — and derives the baseline performance:
//!
//! * utilisation `ρ′ = f′λs̄/b` (with `f′ = 1 − h′`),
//! * mean retrieval time `r̄′ = s̄/(b − f′λs̄)`   (eq 4),
//! * mean access time `t̄′ = f′s̄/(b − f′λs̄)`   (eq 5).

use serde::{Deserialize, Serialize};

/// Validation failure for [`SystemParams::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `λ` must be positive and finite.
    BadLambda,
    /// `b` must be positive and finite.
    BadBandwidth,
    /// `s̄` must be positive and finite.
    BadMeanSize,
    /// `h′` must lie in `[0, 1]`.
    BadHitRatio,
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            ParamError::BadLambda => "request rate λ must be positive and finite",
            ParamError::BadBandwidth => "bandwidth b must be positive and finite",
            ParamError::BadMeanSize => "mean item size s̄ must be positive and finite",
            ParamError::BadHitRatio => "hit ratio h′ must lie in [0, 1]",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParamError {}

/// The paper's system parameters (symbols from the appendix).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// `λ` — aggregate user request rate (requests/second).
    pub lambda: f64,
    /// `b` — shared bandwidth (size-units/second).
    pub bandwidth: f64,
    /// `s̄` — mean item size (size-units).
    pub mean_size: f64,
    /// `h′` — cache hit ratio when no prefetching is performed.
    pub h_prime: f64,
}

impl SystemParams {
    /// Validated constructor.
    pub fn new(
        lambda: f64,
        bandwidth: f64,
        mean_size: f64,
        h_prime: f64,
    ) -> Result<Self, ParamError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(ParamError::BadLambda);
        }
        if !(bandwidth > 0.0 && bandwidth.is_finite()) {
            return Err(ParamError::BadBandwidth);
        }
        if !(mean_size > 0.0 && mean_size.is_finite()) {
            return Err(ParamError::BadMeanSize);
        }
        if !(0.0..=1.0).contains(&h_prime) {
            return Err(ParamError::BadHitRatio);
        }
        Ok(SystemParams { lambda, bandwidth, mean_size, h_prime })
    }

    /// The parameters used throughout the paper's Figures 2 and 3:
    /// `s̄ = 1, λ = 30, b = 50`, with the given `h′`.
    pub fn paper_figure2(h_prime: f64) -> Self {
        SystemParams::new(30.0, 50.0, 1.0, h_prime).expect("paper parameters are valid")
    }

    /// `f′ = 1 − h′`, the no-prefetch cache fault ratio.
    #[inline]
    pub fn f_prime(&self) -> f64 {
        1.0 - self.h_prime
    }

    /// Mean service time of one item, `x = s̄/b` (eq 3; zero startup
    /// latency assumed).
    #[inline]
    pub fn service_time(&self) -> f64 {
        self.mean_size / self.bandwidth
    }

    /// Baseline utilisation `ρ′ = f′λs̄/b`.
    #[inline]
    pub fn rho_prime(&self) -> f64 {
        self.f_prime() * self.lambda * self.mean_size / self.bandwidth
    }

    /// Whether the system is stable *without* prefetching (`ρ′ < 1`,
    /// condition 2 of (12)).
    #[inline]
    pub fn is_stable(&self) -> bool {
        self.rho_prime() < 1.0
    }

    /// Mean retrieval time without prefetching, `r̄′ = s̄/(b − f′λs̄)`
    /// (eq 4). `None` when the system is unstable.
    pub fn retrieval_time(&self) -> Option<f64> {
        self.is_stable().then(|| {
            self.mean_size / (self.bandwidth - self.f_prime() * self.lambda * self.mean_size)
        })
    }

    /// Mean access time without prefetching,
    /// `t̄′ = f′s̄/(b − f′λs̄)` (eq 5). `None` when unstable.
    pub fn access_time(&self) -> Option<f64> {
        self.retrieval_time().map(|r| self.f_prime() * r)
    }

    /// Retrieval time *per user request* without prefetching,
    /// `R′ = ρ′/(λ(1−ρ′))` (eq 26). `None` when unstable.
    pub fn retrieval_per_request(&self) -> Option<f64> {
        let rho = self.rho_prime();
        self.is_stable().then(|| rho / (self.lambda * (1.0 - rho)))
    }

    /// Maximum number of items that can all have access probability ≥ `p`
    /// while remaining probabilistically consistent:
    /// `max(np) = f′/p` (eq 6).
    pub fn max_prefetch_count(&self, p: f64) -> f64 {
        assert!(p > 0.0, "access probability must be positive");
        self.f_prime() / p
    }

    /// Returns a copy with a different hit ratio (used by estimators).
    pub fn with_h_prime(mut self, h_prime: f64) -> Self {
        assert!((0.0..=1.0).contains(&h_prime));
        self.h_prime = h_prime;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_inputs() {
        assert_eq!(SystemParams::new(0.0, 50.0, 1.0, 0.0), Err(ParamError::BadLambda));
        assert_eq!(SystemParams::new(-1.0, 50.0, 1.0, 0.0), Err(ParamError::BadLambda));
        assert_eq!(SystemParams::new(30.0, 0.0, 1.0, 0.0), Err(ParamError::BadBandwidth));
        assert_eq!(SystemParams::new(30.0, 50.0, -2.0, 0.0), Err(ParamError::BadMeanSize));
        assert_eq!(SystemParams::new(30.0, 50.0, 1.0, 1.5), Err(ParamError::BadHitRatio));
        assert_eq!(SystemParams::new(30.0, 50.0, 1.0, -0.1), Err(ParamError::BadHitRatio));
        assert_eq!(SystemParams::new(f64::NAN, 50.0, 1.0, 0.0), Err(ParamError::BadLambda));
        assert!(SystemParams::new(30.0, 50.0, 1.0, 0.0).is_ok());
    }

    #[test]
    fn paper_figure2_baseline_values() {
        // h′ = 0 panel: ρ′ = 30/50 = 0.6; r̄′ = 1/20 = 0.05; t̄′ = 0.05.
        let p = SystemParams::paper_figure2(0.0);
        assert!((p.rho_prime() - 0.6).abs() < 1e-12);
        assert!((p.retrieval_time().unwrap() - 0.05).abs() < 1e-12);
        assert!((p.access_time().unwrap() - 0.05).abs() < 1e-12);

        // h′ = 0.3 panel: f′ = 0.7 → ρ′ = 0.42; r̄′ = 1/29; t̄′ = 0.7/29.
        let p = SystemParams::paper_figure2(0.3);
        assert!((p.rho_prime() - 0.42).abs() < 1e-12);
        assert!((p.retrieval_time().unwrap() - 1.0 / 29.0).abs() < 1e-12);
        assert!((p.access_time().unwrap() - 0.7 / 29.0).abs() < 1e-12);
    }

    #[test]
    fn access_time_is_fault_weighted_retrieval() {
        let p = SystemParams::new(10.0, 100.0, 2.0, 0.5).unwrap();
        let t = p.access_time().unwrap();
        let r = p.retrieval_time().unwrap();
        assert!((t - 0.5 * r).abs() < 1e-15);
    }

    #[test]
    fn unstable_baseline_returns_none() {
        // f′λs̄ = 60 > b = 50.
        let p = SystemParams::new(60.0, 50.0, 1.0, 0.0).unwrap();
        assert!(!p.is_stable());
        assert!(p.retrieval_time().is_none());
        assert!(p.access_time().is_none());
        assert!(p.retrieval_per_request().is_none());
    }

    #[test]
    fn caching_reduces_utilisation() {
        let p0 = SystemParams::new(30.0, 50.0, 1.0, 0.0).unwrap();
        let p3 = p0.with_h_prime(0.3);
        assert!(p3.rho_prime() < p0.rho_prime());
        assert!((p3.rho_prime() - 0.7 * p0.rho_prime()).abs() < 1e-12);
    }

    #[test]
    fn retrieval_per_request_consistency() {
        // R′ = f′ · r̄′ (the fraction of requests that hit the network
        // times the per-item retrieval time): eq (26) in disguise.
        let p = SystemParams::new(30.0, 50.0, 1.0, 0.3).unwrap();
        let lhs = p.retrieval_per_request().unwrap();
        let rhs = p.f_prime() * p.retrieval_time().unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn max_prefetch_count_eq6() {
        let p = SystemParams::new(30.0, 50.0, 1.0, 0.3).unwrap();
        assert!((p.max_prefetch_count(0.35) - 2.0).abs() < 1e-12);
        assert!((p.max_prefetch_count(0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_prime_one_means_zero_load() {
        let p = SystemParams::new(30.0, 50.0, 1.0, 1.0).unwrap();
        assert_eq!(p.rho_prime(), 0.0);
        assert_eq!(p.access_time().unwrap(), 0.0);
    }

    #[test]
    fn copy_and_equality() {
        let p = SystemParams::paper_figure2(0.3);
        let q = p;
        assert_eq!(p, q);
        assert_ne!(p, q.with_h_prime(0.4));
    }
}
