//! Per-key aggregate-delay accounting for delayed-hits-aware ranking.
//!
//! Under delayed hits (Atre et al., SIGCOMM 2020) the cost of missing a
//! key is not one fetch latency: every request that arrives during the
//! fetch window queues on the outstanding fetch and pays its own residual
//! wait. The *aggregate delay* of a key — full fetch latency plus the sum
//! of residual waits charged to the blocking fetch — is therefore the
//! quantity an eviction or prefetch ranking should protect, and it can
//! invert classical recency rankings: a key requested in rare dense
//! bursts outranks a steadily re-referenced one.
//!
//! [`AggregateDelay`] is the bookkeeping half: engines charge it each time
//! an outstanding fetch settles, and read back per-key scores to rank
//! eviction (via `cachesim::ValueAwareCache`, value = score) and to bias
//! the adaptive prefetch threshold. Purely keyed lookups over a hash map —
//! no iteration — so simulation results stay deterministic.

use core::hash::Hash;
use std::collections::HashMap;

/// Running per-key aggregate-delay scores, in seconds.
#[derive(Clone, Debug, Default)]
pub struct AggregateDelay<K> {
    scores: HashMap<K, f64>,
    total: f64,
    charges: u64,
}

impl<K: Copy + Eq + Hash> AggregateDelay<K> {
    pub fn new() -> Self {
        AggregateDelay { scores: HashMap::new(), total: 0.0, charges: 0 }
    }

    /// Charges `delay` seconds of aggregate delay to `k` (the key whose
    /// outstanding fetch blocked the waiters). Returns the key's new
    /// score.
    pub fn charge(&mut self, k: K, delay: f64) -> f64 {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        self.total += delay;
        self.charges += 1;
        let score = self.scores.entry(k).or_insert(0.0);
        *score += delay;
        *score
    }

    /// Accumulated aggregate delay of `k` (0 for never-charged keys).
    pub fn score(&self, k: &K) -> f64 {
        self.scores.get(k).copied().unwrap_or(0.0)
    }

    /// Sum of all charged delay.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of charges recorded.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Number of distinct keys charged.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_accumulate_per_key() {
        let mut agg: AggregateDelay<u32> = AggregateDelay::new();
        assert_eq!(agg.score(&1), 0.0);
        assert_eq!(agg.charge(1, 0.5), 0.5);
        assert_eq!(agg.charge(1, 0.25), 0.75);
        agg.charge(2, 1.0);
        assert_eq!(agg.score(&1), 0.75);
        assert_eq!(agg.score(&2), 1.0);
        assert_eq!(agg.total(), 1.75);
        assert_eq!(agg.charges(), 3);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn bursty_key_outranks_steady_key() {
        // The ranking-inversion seed: a key fetched once with many waiters
        // accumulates more delay than one re-fetched often with none.
        let mut agg: AggregateDelay<&str> = AggregateDelay::new();
        // "bursty": one fetch, 9 waiters each waiting ~0.4 s.
        agg.charge("bursty", 0.5 + 9.0 * 0.4);
        // "steady": 4 independent fetches, no waiters.
        for _ in 0..4 {
            agg.charge("steady", 0.5);
        }
        assert!(agg.score(&"bursty") > agg.score(&"steady"));
    }
}
