//! Bloom-filter cache summaries ("digests"), plus the incremental delta
//! protocol that keeps them fresh without full rebuilds.
//!
//! Each proxy periodically advertises a summary of the keys it caches
//! (Fan et al.'s summary-cache scheme). Peers answer membership queries
//! against the *advertised* summary, which has two error modes:
//!
//! * **structural false positives** — the Bloom filter itself, bounded by
//!   `(1 − e^{−kn/m})^k` ([`BloomFilter::fp_bound`], pinned by proptest);
//! * **staleness false hits** — the filter was true at refresh time but
//!   the peer has since evicted the entry. The digest layer cannot see
//!   these; the router absorbs them by falling back to the origin.
//!
//! Filters use double hashing (Kirsch–Mitzenmacher): two independent
//! 64-bit mixes give `k` probe positions `h1 + i·h2 (mod m)`.
//!
//! ## Full rebuilds vs deltas
//!
//! Two refresh protocols produce the advertised state ([`RefreshStrategy`]):
//!
//! * **Full rebuild** — at every epoch boundary each proxy ships its whole
//!   summary (`m/8` bytes) rebuilt from its live cache. O(capacity) work
//!   and bytes per proxy per boundary: the scaling wall at wide fabrics.
//! * **Deltas** — each proxy accumulates a [`DeltaOp`] per cache *change*
//!   (insert or evict) between boundaries and ships only that stream
//!   ([`DELTA_OP_WIRE_BYTES`] per op). The receiver maintains a
//!   counting-Bloom [`DeltaDigest`] per proxy, which supports `remove`,
//!   so applying the stream reproduces — *exactly* — the membership
//!   answers a from-scratch rebuild would give: a slot's count equals the
//!   number of currently cached keys probing it, hence `count > 0` iff a
//!   rebuilt bitwise filter would have the bit set. The equivalence is
//!   pinned by proptest over arbitrary insert/evict/flush interleavings
//!   (`coop/tests/digest_delta.rs`).
//!
//! Both protocols refresh on the same epoch grid, so the *staleness*
//! semantics are identical: between boundaries the advertised state does
//! not move, and a peer that evicted an entry mid-epoch still advertises
//! it until the next flush. Deltas change the exchange *cost*, not the
//! error model.

use simcore::rng::splitmix64;

/// Sizing and cadence of the digest exchange.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DigestConfig {
    /// Virtual-time interval between digest refreshes. Longer epochs cost
    /// less exchange traffic but raise the staleness false-hit rate.
    pub epoch: f64,
    /// Bloom bits provisioned per cached entry (`m/n`).
    pub bits_per_entry: usize,
    /// Number of probe positions `k`.
    pub hashes: usize,
}

impl DigestConfig {
    pub(crate) fn validate(&self) {
        assert!(self.epoch > 0.0 && self.epoch.is_finite(), "digest epoch must be positive");
        assert!(self.bits_per_entry >= 1, "need at least one bit per entry");
        assert!(self.hashes >= 1, "need at least one hash");
    }

    /// The structural false-positive bound at full provisioned occupancy:
    /// `(1 − e^{−k/(m/n)})^k`.
    pub fn fp_bound(&self) -> f64 {
        let k = self.hashes as f64;
        (1.0 - (-k / self.bits_per_entry as f64).exp()).powf(k)
    }

    /// Wire bytes of one full snapshot for a cache of `capacity` entries
    /// under this sizing — `⌈m/8⌉` with `m = capacity · bits_per_entry`
    /// (floored at the 64-slot minimum every digest is provisioned with).
    pub fn snapshot_wire_bytes(&self, capacity: usize) -> u64 {
        provision(capacity, self.bits_per_entry).div_ceil(8)
    }

    /// The delta-stream length at which a snapshot becomes the cheaper
    /// flush for a cache of `capacity` entries — `capacity · bits / 8 / 9`
    /// ops; see [`DeltaDigest::delta_crossover_ops`], with which this
    /// always agrees.
    pub fn delta_crossover_ops(&self, capacity: usize) -> u64 {
        self.snapshot_wire_bytes(capacity) / DELTA_OP_WIRE_BYTES
    }
}

/// How routers regenerate the advertised digests at epoch boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RefreshStrategy {
    /// Ship only the insert/evict stream accumulated since the last
    /// boundary ([`Router::apply_deltas`]): O(churn) work and bytes. The
    /// production path.
    ///
    /// [`Router::apply_deltas`]: crate::Router::apply_deltas
    #[default]
    Deltas,
    /// Rebuild and ship every proxy's full summary from its live cache
    /// contents ([`Router::refresh`]): O(capacity) per proxy per boundary.
    /// Retained as the parity oracle the delta path is pinned against
    /// (mirroring the `cluster::legacy` scan-driver pattern).
    ///
    /// [`Router::refresh`]: crate::Router::refresh
    FullRebuild,
    /// Per proxy, per boundary: ship whichever is cheaper on the wire —
    /// the delta stream, or a full snapshot once the stream has outgrown
    /// it. The crossover is [`DeltaDigest::delta_crossover_ops`]
    /// (`⌈m/8⌉ / 9` ops, i.e. `capacity · bits / 8 / 9` at standard
    /// provisioning — the point E16 measures): below it a delta flush is
    /// strictly smaller, above it the snapshot is, so `Auto` never ships
    /// more than `min(churn · 9, ⌈m/8⌉)` bytes per proxy per epoch.
    /// Advertised state is identical to both other strategies either way.
    Auto,
}

/// Wire cost of one [`DeltaOp`]: an 8-byte key plus a 1-byte opcode.
pub const DELTA_OP_WIRE_BYTES: u64 = 9;

/// One cache-content change, as shipped in a digest delta stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// The key entered the proxy's cache (demand admit or prefetch).
    Insert(u64),
    /// The key left the proxy's cache (eviction or removal).
    Evict(u64),
}

/// The two Kirsch–Mitzenmacher mixes shared by every digest flavour, so a
/// delta-maintained [`DeltaDigest`] and a rebuilt [`BloomFilter`] probe
/// identical positions for the same key.
#[inline]
fn probes(key: u64) -> (u64, u64) {
    let mut s = key;
    let h1 = splitmix64(&mut s);
    // Odd stride so successive probes cycle through distinct bits.
    let h2 = splitmix64(&mut s) | 1;
    (h1, h2)
}

/// Slot width `m` for a filter provisioned at `capacity × bits_per_entry`.
#[inline]
fn provision(capacity: usize, bits_per_entry: usize) -> u64 {
    (capacity * bits_per_entry).max(64) as u64
}

/// A fixed-size Bloom filter over `u64` keys.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    words: Vec<u64>,
    m: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// A filter provisioned for `capacity` entries at `bits_per_entry`
    /// bits each, probed with `hashes` positions.
    pub fn for_capacity(capacity: usize, bits_per_entry: usize, hashes: usize) -> Self {
        assert!(capacity > 0 && bits_per_entry > 0 && hashes > 0);
        let m = provision(capacity, bits_per_entry);
        BloomFilter { words: vec![0; m.div_ceil(64) as usize], m, k: hashes as u32, inserted: 0 }
    }

    /// Sets the key's probe bits.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = probes(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether all probe bits are set (no false negatives; false positives
    /// at the [`BloomFilter::fp_bound`] rate).
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = probes(key);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Resets the filter for the next epoch.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.inserted = 0;
    }

    /// Bits provisioned (`m`).
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Keys inserted since the last [`BloomFilter::clear`].
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Analytic false-positive bound `(1 − e^{−kn/m})^k` at the current
    /// occupancy `n`.
    pub fn fp_bound(&self) -> f64 {
        let k = self.k as f64;
        let n = self.inserted as f64;
        (1.0 - (-k * n / self.m as f64).exp()).powf(k)
    }
}

/// A counting-Bloom digest: the delta-maintainable twin of [`BloomFilter`].
///
/// Each of the `m` positions holds a counter instead of a bit, so a key
/// can be [`DeltaDigest::remove`]d again: every slot counts how many live
/// keys probe it, and membership is "all probe slots non-zero". Because
/// the probe scheme is shared with [`BloomFilter`], a delta-maintained
/// `DeltaDigest` answers [`DeltaDigest::contains`] identically to a
/// bitwise filter rebuilt from the same key set — including the
/// structural false positives.
///
/// Counters never underflow under the delta protocol's discipline (one
/// `Insert` per absent→present transition, one `Evict` per
/// present→absent); [`DeltaDigest::remove`] asserts it, so a protocol
/// violation fails loudly instead of corrupting membership.
#[derive(Clone, Debug)]
pub struct DeltaDigest {
    counts: Vec<u16>,
    m: u64,
    k: u32,
    live: u64,
}

impl DeltaDigest {
    /// A digest provisioned for `capacity` entries at `bits_per_entry`
    /// slots each, probed with `hashes` positions — the same geometry as
    /// [`BloomFilter::for_capacity`].
    pub fn for_capacity(capacity: usize, bits_per_entry: usize, hashes: usize) -> Self {
        assert!(capacity > 0 && bits_per_entry > 0 && hashes > 0);
        let m = provision(capacity, bits_per_entry);
        DeltaDigest { counts: vec![0; m as usize], m, k: hashes as u32, live: 0 }
    }

    /// Increments the key's probe slots.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = probes(key);
        for i in 0..self.k {
            let slot = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            // Saturate rather than wrap: 2^16 colliding keys per slot is
            // far beyond any provisioned occupancy, and saturating only
            // risks a stale-positive, never a false negative.
            let c = &mut self.counts[slot as usize];
            *c = c.saturating_add(1);
        }
        self.live += 1;
    }

    /// Decrements the key's probe slots (the key must have been inserted
    /// and not yet removed — the delta protocol's matched-pair
    /// discipline).
    pub fn remove(&mut self, key: u64) {
        let (h1, h2) = probes(key);
        for i in 0..self.k {
            let slot = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            let c = &mut self.counts[slot as usize];
            assert!(*c > 0, "DeltaDigest underflow: removed key {key} was never inserted");
            *c -= 1;
        }
        assert!(self.live > 0, "DeltaDigest underflow: more removes than inserts");
        self.live -= 1;
    }

    /// Applies one delta op.
    pub fn apply(&mut self, op: DeltaOp) {
        match op {
            DeltaOp::Insert(k) => self.insert(k),
            DeltaOp::Evict(k) => self.remove(k),
        }
    }

    /// Whether all probe slots are non-zero — bit-for-bit the answer a
    /// [`BloomFilter`] rebuilt from the current key set would give.
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = probes(key);
        (0..self.k).all(|i| {
            let slot = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.counts[slot as usize] > 0
        })
    }

    /// Empties the digest (full-rebuild boundaries).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.live = 0;
    }

    /// Slots provisioned (`m`).
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Keys currently summarised (inserts minus removes).
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Wire size of the *advertised* form: peers only need the bit
    /// projection (`count > 0`), so a full snapshot ships `⌈m/8⌉` bytes
    /// regardless of how the sender maintains its counters.
    pub fn snapshot_wire_bytes(&self) -> u64 {
        self.m.div_ceil(8)
    }

    /// The delta-stream length at which a full snapshot becomes the
    /// cheaper flush: `⌈m/8⌉ / 9` ops (snapshot bytes over
    /// [`DELTA_OP_WIRE_BYTES`]). A stream of **more** than this many ops
    /// costs more wire bytes than shipping the whole bit projection —
    /// [`RefreshStrategy::Auto`]'s per-proxy decision point.
    pub fn delta_crossover_ops(&self) -> u64 {
        self.snapshot_wire_bytes() / DELTA_OP_WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_capacity(256, 10, 4);
        for key in (0..256u64).map(|k| k * 7 + 3) {
            f.insert(key);
        }
        for key in (0..256u64).map(|k| k * 7 + 3) {
            assert!(f.contains(key), "inserted key {key} missing");
        }
    }

    #[test]
    fn clear_empties_the_filter() {
        let mut f = BloomFilter::for_capacity(64, 10, 4);
        for key in 0..64u64 {
            f.insert(key);
        }
        f.clear();
        assert_eq!(f.inserted(), 0);
        assert!((0..64u64).all(|k| !f.contains(k)));
    }

    #[test]
    fn fp_rate_tracks_analytic_bound() {
        // 10 bits/entry, 4 hashes → bound ≈ 1.2%.
        let mut f = BloomFilter::for_capacity(1_000, 10, 4);
        for key in 0..1_000u64 {
            f.insert(key);
        }
        let false_positives =
            (1_000_000..1_100_000u64).filter(|&k| f.contains(k)).count() as f64 / 100_000.0;
        let bound = f.fp_bound();
        assert!(bound < 0.02, "bound {bound}");
        assert!(false_positives < 2.0 * bound + 0.005, "fp {false_positives} vs bound {bound}");
    }

    #[test]
    fn config_bound_matches_filter_bound_at_capacity() {
        let cfg = DigestConfig { epoch: 1.0, bits_per_entry: 10, hashes: 4 };
        let mut f = BloomFilter::for_capacity(500, cfg.bits_per_entry, cfg.hashes);
        for key in 0..500u64 {
            f.insert(key);
        }
        assert!((f.fp_bound() - cfg.fp_bound()).abs() < 1e-9);
    }

    #[test]
    fn delta_digest_matches_bitwise_filter_on_same_keys() {
        let mut bits = BloomFilter::for_capacity(512, 10, 4);
        let mut counts = DeltaDigest::for_capacity(512, 10, 4);
        for key in (0..512u64).map(|k| k * 13 + 5) {
            bits.insert(key);
            counts.insert(key);
        }
        // Membership answers — including structural false positives — are
        // identical across a wide probe range.
        for probe in 0..50_000u64 {
            assert_eq!(bits.contains(probe), counts.contains(probe), "probe {probe}");
        }
    }

    #[test]
    fn delta_digest_remove_restores_absence() {
        let mut d = DeltaDigest::for_capacity(64, 10, 4);
        d.insert(7);
        d.insert(8);
        assert!(d.contains(7));
        d.remove(7);
        assert!(!d.contains(7), "removed key still reported present");
        assert!(d.contains(8));
        assert_eq!(d.live(), 1);
    }

    #[test]
    fn delta_digest_overlapping_keys_keep_shared_slots() {
        // Two keys may share probe slots; removing one must not erase the
        // other's membership.
        let mut d = DeltaDigest::for_capacity(2, 1, 4); // tiny m forces overlap
        d.insert(1);
        d.insert(2);
        d.remove(1);
        assert!(d.contains(2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn delta_digest_remove_of_never_inserted_key_panics() {
        let mut d = DeltaDigest::for_capacity(64, 10, 4);
        d.insert(1);
        d.remove(999_999);
    }

    #[test]
    fn snapshot_wire_bytes_is_bit_projection_size() {
        let d = DeltaDigest::for_capacity(100, 10, 4);
        assert_eq!(d.snapshot_wire_bytes(), d.bits().div_ceil(8));
    }
}
