//! Bloom-filter cache summaries ("digests").
//!
//! Each proxy periodically advertises a Bloom filter over the keys it
//! caches (Fan et al.'s summary-cache scheme). Peers answer membership
//! queries against the *advertised* filter, which has two error modes:
//!
//! * **structural false positives** — the Bloom filter itself, bounded by
//!   `(1 − e^{−kn/m})^k` ([`BloomFilter::fp_bound`], pinned by proptest);
//! * **staleness false hits** — the filter was true at refresh time but
//!   the peer has since evicted the entry. The digest layer cannot see
//!   these; the router absorbs them by falling back to the origin.
//!
//! Filters use double hashing (Kirsch–Mitzenmacher): two independent
//! 64-bit mixes give `k` probe positions `h1 + i·h2 (mod m)`.

use simcore::rng::splitmix64;

/// Sizing and cadence of the digest exchange.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DigestConfig {
    /// Virtual-time interval between digest rebuilds. Longer epochs cost
    /// less exchange traffic but raise the staleness false-hit rate.
    pub epoch: f64,
    /// Bloom bits provisioned per cached entry (`m/n`).
    pub bits_per_entry: usize,
    /// Number of probe positions `k`.
    pub hashes: usize,
}

impl DigestConfig {
    pub(crate) fn validate(&self) {
        assert!(self.epoch > 0.0 && self.epoch.is_finite(), "digest epoch must be positive");
        assert!(self.bits_per_entry >= 1, "need at least one bit per entry");
        assert!(self.hashes >= 1, "need at least one hash");
    }

    /// The structural false-positive bound at full provisioned occupancy:
    /// `(1 − e^{−k/(m/n)})^k`.
    pub fn fp_bound(&self) -> f64 {
        let k = self.hashes as f64;
        (1.0 - (-k / self.bits_per_entry as f64).exp()).powf(k)
    }
}

/// A fixed-size Bloom filter over `u64` keys.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    words: Vec<u64>,
    m: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// A filter provisioned for `capacity` entries at `bits_per_entry`
    /// bits each, probed with `hashes` positions.
    pub fn for_capacity(capacity: usize, bits_per_entry: usize, hashes: usize) -> Self {
        assert!(capacity > 0 && bits_per_entry > 0 && hashes > 0);
        let m = (capacity * bits_per_entry).max(64) as u64;
        BloomFilter { words: vec![0; m.div_ceil(64) as usize], m, k: hashes as u32, inserted: 0 }
    }

    #[inline]
    fn probes(&self, key: u64) -> (u64, u64) {
        let mut s = key;
        let h1 = splitmix64(&mut s);
        // Odd stride so successive probes cycle through distinct bits.
        let h2 = splitmix64(&mut s) | 1;
        (h1, h2)
    }

    /// Sets the key's probe bits.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = self.probes(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether all probe bits are set (no false negatives; false positives
    /// at the [`BloomFilter::fp_bound`] rate).
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = self.probes(key);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Resets the filter for the next epoch.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.inserted = 0;
    }

    /// Bits provisioned (`m`).
    pub fn bits(&self) -> u64 {
        self.m
    }

    /// Keys inserted since the last [`BloomFilter::clear`].
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Analytic false-positive bound `(1 − e^{−kn/m})^k` at the current
    /// occupancy `n`.
    pub fn fp_bound(&self) -> f64 {
        let k = self.k as f64;
        let n = self.inserted as f64;
        (1.0 - (-k * n / self.m as f64).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_capacity(256, 10, 4);
        for key in (0..256u64).map(|k| k * 7 + 3) {
            f.insert(key);
        }
        for key in (0..256u64).map(|k| k * 7 + 3) {
            assert!(f.contains(key), "inserted key {key} missing");
        }
    }

    #[test]
    fn clear_empties_the_filter() {
        let mut f = BloomFilter::for_capacity(64, 10, 4);
        for key in 0..64u64 {
            f.insert(key);
        }
        f.clear();
        assert_eq!(f.inserted(), 0);
        assert!((0..64u64).all(|k| !f.contains(k)));
    }

    #[test]
    fn fp_rate_tracks_analytic_bound() {
        // 10 bits/entry, 4 hashes → bound ≈ 1.2%.
        let mut f = BloomFilter::for_capacity(1_000, 10, 4);
        for key in 0..1_000u64 {
            f.insert(key);
        }
        let false_positives =
            (1_000_000..1_100_000u64).filter(|&k| f.contains(k)).count() as f64 / 100_000.0;
        let bound = f.fp_bound();
        assert!(bound < 0.02, "bound {bound}");
        assert!(false_positives < 2.0 * bound + 0.005, "fp {false_positives} vs bound {bound}");
    }

    #[test]
    fn config_bound_matches_filter_bound_at_capacity() {
        let cfg = DigestConfig { epoch: 1.0, bits_per_entry: 10, hashes: 4 };
        let mut f = BloomFilter::for_capacity(500, cfg.bits_per_entry, cfg.hashes);
        for key in 0..500u64 {
            f.insert(key);
        }
        assert!((f.fp_bound() - cfg.fp_bound()).abs() < 1e-9);
    }
}
