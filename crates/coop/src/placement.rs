//! Shard placement over the consistent-hash ring, with optional
//! load-aware rebalancing.
//!
//! Placement answers "which proxy *should* hold this key" — the
//! consistent-hash owner. Under [`PlacementPolicy::LoadAware`] the layer
//! also watches the per-proxy load estimates the cluster feeds it every
//! digest epoch (each proxy's own `ρ̂′`) and, when the hottest and coldest
//! proxies diverge by more than the configured threshold, migrates a step
//! of virtual nodes from hot to cold. Because virtual-node positions are
//! stable, each migration moves only the key ranges adjacent to the moved
//! virtual nodes — hot shards drain gradually instead of reshuffling the
//! whole keyspace.

use crate::ring::HashRing;

/// How placement reacts to load divergence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlacementPolicy {
    /// Fixed ring: ownership never changes.
    Static,
    /// Migrate `step` virtual nodes from the most- to the least-loaded
    /// proxy whenever their load estimates differ by more than
    /// `divergence`, never shrinking a proxy below `min_vnodes`.
    LoadAware { divergence: f64, step: usize, min_vnodes: usize },
}

/// The placement layer: ring + rebalancing policy.
#[derive(Clone, Debug)]
pub struct Placement {
    ring: HashRing,
    policy: PlacementPolicy,
    migrations: u64,
}

impl Placement {
    pub fn new(n_nodes: usize, vnodes: usize, policy: PlacementPolicy) -> Self {
        Placement { ring: HashRing::new(n_nodes, vnodes), policy, migrations: 0 }
    }

    /// The proxy that should hold `key` under the current ring.
    pub fn owner(&self, key: u64) -> usize {
        self.ring.owner(key)
    }

    /// Feeds one round of per-proxy load estimates (e.g. each controller's
    /// `ρ̂′`); under the load-aware policy this may migrate virtual nodes.
    /// Returns the number of virtual nodes moved.
    pub fn observe_load(&mut self, loads: &[f64]) -> usize {
        assert_eq!(loads.len(), self.ring.n_nodes(), "one load estimate per node");
        let PlacementPolicy::LoadAware { divergence, step, min_vnodes } = self.policy else {
            return 0;
        };
        if loads.len() < 2 {
            return 0;
        }
        // Hottest and coldest proxies; ties break to the lowest index so
        // the migration sequence is a pure function of the load history.
        let mut hot = 0;
        let mut cold = 0;
        for (i, &l) in loads.iter().enumerate() {
            if l > loads[hot] {
                hot = i;
            }
            if l < loads[cold] {
                cold = i;
            }
        }
        if hot == cold || loads[hot] - loads[cold] <= divergence {
            return 0;
        }
        let movable = self.ring.weight(hot).saturating_sub(min_vnodes).min(step);
        if movable == 0 {
            return 0;
        }
        self.ring.set_weight(hot, self.ring.weight(hot) - movable);
        self.ring.set_weight(cold, self.ring.weight(cold) + movable);
        self.migrations += movable as u64;
        movable
    }

    /// Total virtual nodes migrated so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The underlying ring (read-only).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_never_migrates() {
        let mut p = Placement::new(3, 32, PlacementPolicy::Static);
        assert_eq!(p.observe_load(&[0.9, 0.1, 0.1]), 0);
        assert_eq!(p.migrations(), 0);
    }

    #[test]
    fn load_aware_migrates_hot_to_cold() {
        let policy = PlacementPolicy::LoadAware { divergence: 0.2, step: 4, min_vnodes: 8 };
        let mut p = Placement::new(3, 32, policy);
        let moved = p.observe_load(&[0.1, 0.8, 0.4]);
        assert_eq!(moved, 4);
        assert_eq!(p.ring().weight(1), 28, "hot proxy sheds vnodes");
        assert_eq!(p.ring().weight(0), 36, "cold proxy gains them");
        assert_eq!(p.ring().weight(2), 32, "bystander untouched");
        assert_eq!(p.migrations(), 4);
    }

    #[test]
    fn small_divergence_is_tolerated() {
        let policy = PlacementPolicy::LoadAware { divergence: 0.3, step: 4, min_vnodes: 8 };
        let mut p = Placement::new(2, 32, policy);
        assert_eq!(p.observe_load(&[0.5, 0.6]), 0);
    }

    #[test]
    fn migration_respects_min_vnodes() {
        let policy = PlacementPolicy::LoadAware { divergence: 0.1, step: 100, min_vnodes: 8 };
        let mut p = Placement::new(2, 16, policy);
        assert_eq!(p.observe_load(&[0.9, 0.1]), 8, "clamped to weight − min_vnodes");
        assert_eq!(p.ring().weight(0), 8);
        // Fully drained to the floor: no further migration possible.
        assert_eq!(p.observe_load(&[0.9, 0.1]), 0);
    }

    #[test]
    fn migration_shifts_ownership_share() {
        let policy = PlacementPolicy::LoadAware { divergence: 0.1, step: 24, min_vnodes: 8 };
        let mut p = Placement::new(2, 64, policy);
        let share_before = (0..10_000u64).filter(|&k| p.owner(k) == 0).count() as f64 / 10_000.0;
        p.observe_load(&[0.9, 0.2]);
        let share_after = (0..10_000u64).filter(|&k| p.owner(k) == 0).count() as f64 / 10_000.0;
        assert!(
            share_after < share_before,
            "hot proxy 0 share {share_before} must shrink (now {share_after})"
        );
    }
}
