//! Consistent-hash ring with virtual nodes.
//!
//! Keys and virtual nodes hash onto one `u64` circle; a key is owned by
//! the first virtual node clockwise from its hash. Virtual node `r` of
//! node `n` always hashes to the same point, so weight changes (and node
//! joins/leaves) move only the keys adjacent to the added or removed
//! points — the minimal-disruption property the proptests pin down:
//! removing a node relocates exactly the keys it owned, and a join takes
//! roughly `K/n` keys, all of them to the joining node.

use simcore::rng::splitmix64;

/// Stable 64-bit mix of a key onto the ring circle.
#[inline]
fn hash_key(key: u64) -> u64 {
    let mut s = key ^ 0xC00B_1E5C_AC4E_u64;
    splitmix64(&mut s)
}

/// Stable position of virtual node `replica` of `node`.
#[inline]
fn hash_vnode(node: usize, replica: usize) -> u64 {
    let mut s = (node as u64) << 32 | replica as u64;
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// A consistent-hash ring over nodes `0..n` with per-node virtual-node
/// weights.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(position, node)` sorted by position.
    points: Vec<(u64, usize)>,
    weights: Vec<usize>,
}

impl HashRing {
    /// A ring over `n_nodes` nodes, each with `vnodes` virtual nodes.
    pub fn new(n_nodes: usize, vnodes: usize) -> Self {
        assert!(n_nodes > 0 && vnodes > 0);
        HashRing::with_weights(&vec![vnodes; n_nodes])
    }

    /// A ring with explicit per-node weights (a node with weight 0 owns
    /// nothing — it has left the ring).
    pub fn with_weights(weights: &[usize]) -> Self {
        assert!(!weights.is_empty(), "ring needs at least one node");
        assert!(weights.iter().any(|&w| w > 0), "ring needs at least one virtual node");
        let mut ring = HashRing { points: Vec::new(), weights: weights.to_vec() };
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (node, &w) in self.weights.iter().enumerate() {
            for replica in 0..w {
                self.points.push((hash_vnode(node, replica), node));
            }
        }
        // Position ties (astronomically unlikely) break by node id so the
        // ring is a pure function of the weights.
        self.points.sort_unstable();
    }

    /// Number of nodes (including weight-0 ones).
    pub fn n_nodes(&self) -> usize {
        self.weights.len()
    }

    /// Virtual-node weight of `node`.
    pub fn weight(&self, node: usize) -> usize {
        self.weights[node]
    }

    /// Total virtual nodes on the ring.
    pub fn total_vnodes(&self) -> usize {
        self.points.len()
    }

    /// Changes `node`'s weight; only keys adjacent to the added/removed
    /// virtual nodes move.
    pub fn set_weight(&mut self, node: usize, vnodes: usize) {
        assert!(node < self.weights.len());
        self.weights[node] = vnodes;
        assert!(self.weights.iter().any(|&w| w > 0), "cannot empty the ring");
        self.rebuild();
    }

    /// Adds a node with the given weight; returns its id.
    pub fn add_node(&mut self, vnodes: usize) -> usize {
        self.weights.push(vnodes);
        self.rebuild();
        self.weights.len() - 1
    }

    /// Removes `node` from the ring (weight 0). Its keys redistribute to
    /// the surviving nodes; no key moves *between* survivors.
    pub fn remove_node(&mut self, node: usize) {
        self.set_weight(node, 0);
    }

    /// The node owning `key`: first virtual node clockwise of its hash.
    pub fn owner(&self, key: u64) -> usize {
        let h = hash_key(key);
        let idx = self.points.partition_point(|&(pos, _)| pos < h);
        let (_, node) = self.points[if idx == self.points.len() { 0 } else { idx }];
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_deterministic_and_in_range() {
        let ring = HashRing::new(5, 32);
        for key in 0..1000u64 {
            let o = ring.owner(key);
            assert!(o < 5);
            assert_eq!(o, ring.owner(key));
        }
    }

    #[test]
    fn vnodes_balance_ownership() {
        let ring = HashRing::new(4, 128);
        let mut counts = [0usize; 4];
        for key in 0..40_000u64 {
            counts[ring.owner(key)] += 1;
        }
        for &c in &counts {
            // Perfect balance is 10_000; 128 vnodes keep every node within
            // a modest factor.
            assert!((6_000..=14_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn leave_moves_only_departed_keys() {
        let before = HashRing::new(4, 64);
        let mut after = before.clone();
        after.remove_node(2);
        for key in 0..10_000u64 {
            let owner_before = before.owner(key);
            let owner_after = after.owner(key);
            if owner_before != 2 {
                assert_eq!(owner_before, owner_after, "key {key} moved between survivors");
            } else {
                assert_ne!(owner_after, 2);
            }
        }
    }

    #[test]
    fn join_takes_keys_only_for_itself() {
        let before = HashRing::new(3, 64);
        let mut after = before.clone();
        let new = after.add_node(64);
        let mut moved = 0;
        for key in 0..12_000u64 {
            if before.owner(key) != after.owner(key) {
                assert_eq!(after.owner(key), new, "key {key} moved to a pre-existing node");
                moved += 1;
            }
        }
        // Expected movement is K/n = 3_000; far below a naive rehash
        // (which would move ~K·3/4 = 9_000).
        assert!(moved > 0 && moved < 2 * 12_000 / 4, "moved {moved}");
    }

    #[test]
    fn weight_shift_moves_keys_toward_heavier_node() {
        let before = HashRing::new(3, 60);
        let mut after = before.clone();
        after.set_weight(0, 30);
        after.set_weight(1, 90);
        let mut to_1 = 0;
        let mut from_0 = 0;
        for key in 0..9_000u64 {
            let (a, b) = (before.owner(key), after.owner(key));
            if a != b {
                if b == 1 {
                    to_1 += 1;
                }
                if a == 0 {
                    from_0 += 1;
                }
                assert_ne!((a, b), (1, 0), "keys must not drain from the upweighted node to 0");
            }
        }
        assert!(to_1 > 0 && from_0 > 0, "to_1 {to_1} from_0 {from_0}");
    }

    #[test]
    #[should_panic]
    fn emptying_the_ring_panics() {
        let mut ring = HashRing::new(1, 8);
        ring.set_weight(0, 0);
    }
}
