//! # coop — cooperative edge caching and request routing
//!
//! The paper's network-load penalty is governed by how much redundant
//! traffic crosses the shared path. When several edge proxies front the
//! same origin, every proxy pulls its misses over the backbone even when a
//! sibling already holds the object — the classic redundancy that
//! cooperative caching (Fan et al.'s summary caches, Karger et al.'s
//! consistent hashing) removes. This crate provides the three layers, over
//! plain `u64` keys so it stays independent of any particular simulator:
//!
//! * [`ring`] / [`placement`] — a consistent-hash ring with virtual nodes
//!   ([`HashRing`]) and a [`Placement`] policy on top that migrates virtual
//!   nodes from hot proxies to cold ones when their load estimates diverge
//!   ([`PlacementPolicy::LoadAware`]);
//! * [`digest`] — cache summaries: bitwise Bloom filters ([`BloomFilter`])
//!   and their counting-Bloom twin ([`DeltaDigest`]), refreshed on a
//!   configurable epoch ([`DigestConfig`]); between refreshes the
//!   summaries go stale, so lookups can report a peer that has since
//!   evicted the object — the *false hit* the router must absorb;
//! * [`router`] — a [`Router`] that fuses both layers and resolves every
//!   miss or prefetch to `Peer(q)` or `Origin` ([`Resolution`]).
//!
//! ## The delta protocol
//!
//! Advertised summaries can be regenerated two ways ([`RefreshStrategy`]):
//!
//! * **Full rebuild** ([`Router::refresh`]) — every boundary, every proxy
//!   rebuilds its filter from its full cache contents and ships the whole
//!   `⌈m/8⌉`-byte snapshot. O(proxies × capacity) per boundary: the
//!   scaling wall at wide fabrics, retained as the parity oracle.
//! * **Deltas** ([`Router::apply_deltas`], the default) — each proxy
//!   accumulates one [`DeltaOp`] per cache *change* (`Insert` on
//!   absent→present, `Evict` on present→absent) and ships only that
//!   stream ([`DELTA_OP_WIRE_BYTES`] per op) at the boundary. The
//!   receiver maintains a counting [`DeltaDigest`] per proxy, so applying
//!   the stream reproduces exactly the membership a rebuild would give —
//!   structural false positives included — at O(churn) cost.
//!
//! **Staleness semantics are identical in both modes**: the advertised
//! state only moves at epoch boundaries, so mid-epoch evictions produce
//! the same false-hit claims either way, and the `cluster` crate pins
//! full `ClusterReport` parity between the two protocols to 1e-12
//! (`cluster/tests/delta_parity.rs`). What changes is the exchange cost,
//! metered by [`RouterStats::digest_bytes`]: deltas ship bytes
//! proportional to cache churn per epoch instead of cache capacity per
//! epoch, which is what removes the last O(proxies × capacity) per-epoch
//! term from the cluster engines.
//!
//! The `cluster` crate drives one [`Router`] per simulated cluster and maps
//! each resolution onto its queueing fabric: peer resolutions traverse
//! proxy↔proxy links, origin resolutions the backbone. A false hit costs
//! the peer round-trip *and* the origin fetch — exactly the staleness tax
//! real digest schemes pay.
//!
//! ## Example
//!
//! ```
//! use coop::{CoopConfig, DeltaOp, Resolution, Router};
//!
//! let mut router = Router::new(3, 128, CoopConfig::default());
//! // Before any digest exchange every miss goes to the origin.
//! assert_eq!(router.resolve(0, 42), Resolution::Origin);
//! // Proxy 1 cached key 42 this epoch and ships the delta at the boundary.
//! let mut deltas = vec![vec![], vec![DeltaOp::Insert(42)], vec![]];
//! router.apply_deltas(5.0, &mut deltas, &[0.5; 3]);
//! assert_eq!(router.resolve(0, 42), Resolution::Peer(1));
//! // The holder itself still fetches from the origin.
//! assert_eq!(router.resolve(1, 42), Resolution::Origin);
//! ```

pub mod digest;
pub mod placement;
pub mod ring;
pub mod router;

pub use digest::{
    BloomFilter, DeltaDigest, DeltaOp, DigestConfig, RefreshStrategy, DELTA_OP_WIRE_BYTES,
};
pub use placement::{Placement, PlacementPolicy};
pub use ring::HashRing;
pub use router::{RefreshPayload, Resolution, Router, RouterStats};

/// Complete configuration of the cooperative layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoopConfig {
    /// Virtual nodes per proxy on the placement ring.
    pub vnodes: usize,
    /// Shard-placement policy (static, or load-aware migration).
    pub placement: PlacementPolicy,
    /// Digest exchange: epoch length and Bloom sizing.
    pub digest: DigestConfig,
    /// How advertised digests are regenerated at epoch boundaries:
    /// incremental deltas (default) or the full-rebuild parity oracle.
    pub refresh: RefreshStrategy,
}

impl Default for CoopConfig {
    fn default() -> Self {
        CoopConfig {
            vnodes: 64,
            placement: PlacementPolicy::Static,
            digest: DigestConfig { epoch: 5.0, bits_per_entry: 10, hashes: 4 },
            refresh: RefreshStrategy::Deltas,
        }
    }
}

impl CoopConfig {
    pub(crate) fn validate(&self) {
        assert!(self.vnodes > 0, "need at least one virtual node per proxy");
        self.digest.validate();
        if let PlacementPolicy::LoadAware { divergence, step, min_vnodes } = self.placement {
            assert!(divergence > 0.0 && divergence.is_finite(), "bad divergence threshold");
            assert!(step > 0, "migration step must move at least one vnode");
            assert!(min_vnodes > 0, "a proxy must keep at least one vnode");
        }
    }
}
