//! Miss/prefetch resolution: local knowledge → peer → origin.
//!
//! The router owns the cluster-wide view: one counting-Bloom digest per
//! proxy ([`DeltaDigest`]), an inverted *holder index* (key → advertising
//! proxies) derived from the same refresh stream, and the placement ring.
//! When proxy `me` misses on `key` it asks, in order:
//!
//! 1. the consistent-hash **owner** of the key (if its digest advertises
//!    the key) — the proxy the placement layer steers the key toward, so
//!    it is the most likely true holder;
//! 2. the first **other peer** the holder index advertises for the key,
//!    in a deterministic cyclic order starting after the owner — an O(1)
//!    lookup in the common case, replacing the O(n) digest scan;
//! 3. the **origin** otherwise.
//!
//! The advertised state refreshes on the configured epoch, by full
//! rebuild ([`Router::refresh`]) or by applying the proxies' accumulated
//! insert/evict delta streams ([`Router::apply_deltas`]); between
//! boundaries it goes stale, so a `Peer` resolution is a *claim*, not a
//! guarantee — the caller must fall back to the origin when the peer no
//! longer holds the key (the staleness false hit the `cluster` engine
//! charges for). The two refresh protocols reproduce identical advertised
//! state (pinned by `coop/tests/digest_delta.rs` and the cluster's
//! delta-parity suite); they differ only in exchange bytes, which
//! [`RouterStats::digest_bytes`] meters.
//!
//! The owner probe still goes through the Bloom digest, so structural
//! false positives on the placement owner survive exactly as before; the
//! non-owner fallback consults the holder index (exact at refresh time),
//! so it no longer manufactures peer claims out of non-owner structural
//! false positives — staleness false hits remain in full.

use crate::digest::{DeltaDigest, DeltaOp, DELTA_OP_WIRE_BYTES};
use crate::placement::Placement;
use crate::CoopConfig;
use std::collections::{HashMap, HashSet};

/// Where a miss (or prefetch) should be served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// No peer advertises the key: fetch from the origin.
    Origin,
    /// This peer's digest advertises the key.
    Peer(usize),
}

/// Counters describing the cooperative layer's activity over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Digest refresh rounds performed.
    pub digest_epochs: u64,
    /// Virtual nodes migrated by the placement policy.
    pub vnode_migrations: u64,
    /// Digest-exchange bytes shipped over the run: full snapshots cost
    /// `⌈m/8⌉` per proxy per boundary, deltas [`DELTA_OP_WIRE_BYTES`] per
    /// op.
    pub digest_bytes: u64,
    /// Delta ops applied ([`Router::apply_deltas`] boundaries only).
    pub delta_ops: u64,
    /// Per-proxy boundary flushes that shipped a delta stream. Together
    /// with [`RouterStats::snapshot_flushes`] this meters which side of
    /// the compaction crossover each flush landed on (the
    /// [`crate::RefreshStrategy::Auto`] decision).
    pub delta_flushes: u64,
    /// Per-proxy boundary flushes that shipped a full snapshot (full
    /// rebuilds, or `Auto` flushes past the crossover).
    pub snapshot_flushes: u64,
}

impl RouterStats {
    /// Renders the counters with the workspace JSON codec, for the
    /// machine-readable run artifacts.
    pub fn to_json(&self) -> simcore::Json {
        use simcore::Json;
        Json::obj()
            .set("digest_epochs", Json::num(self.digest_epochs as f64))
            .set("vnode_migrations", Json::num(self.vnode_migrations as f64))
            .set("digest_bytes", Json::num(self.digest_bytes as f64))
            .set("delta_ops", Json::num(self.delta_ops as f64))
            .set("delta_flushes", Json::num(self.delta_flushes as f64))
            .set("snapshot_flushes", Json::num(self.snapshot_flushes as f64))
    }
}

/// One proxy's contribution to an epoch boundary: what it puts on the
/// wire to re-advertise its cache.
///
/// Both forms leave the router advertising exactly the proxy's cache
/// contents at flush time, so the choice is purely a wire/CPU trade —
/// [`Router::apply_payloads`] accepts any per-proxy mix, which is how
/// [`crate::RefreshStrategy::Auto`] ships each proxy's cheaper form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefreshPayload {
    /// The insert/evict stream since the last boundary, in chronological
    /// order ([`DELTA_OP_WIRE_BYTES`] per op on the wire).
    Deltas(Vec<DeltaOp>),
    /// The proxy's full cache key set (`⌈m/8⌉` wire bytes as a Bloom bit
    /// projection). The router diffs it against the previously advertised
    /// set, so counting-digest state stays exactly delta-equivalent.
    Snapshot(Vec<u64>),
}

/// The cooperative routing fabric for one cluster.
pub struct Router {
    placement: Placement,
    digests: Vec<DeltaDigest>,
    /// Advertised holders per key, each list sorted by proxy index. Exact
    /// knowledge *as of the last refresh boundary* — it goes stale
    /// together with the digests, preserving the staleness-false-hit
    /// semantics.
    holders: HashMap<u64, Vec<u32>>,
    /// The exact key set each proxy currently advertises — the baseline a
    /// [`RefreshPayload::Snapshot`] is diffed against so snapshot flushes
    /// reduce to the equivalent delta ops.
    advertised: Vec<HashSet<u64>>,
    /// Proxies whose advertised state was wiped by a crash and who have
    /// not flushed a fresh payload since — their claims are void until
    /// their next digest epoch ([`Router::quarantine`]).
    quarantined: Vec<bool>,
    epoch: f64,
    next_refresh: f64,
    epochs: u64,
    digest_bytes: u64,
    delta_ops: u64,
    delta_flushes: u64,
    snapshot_flushes: u64,
}

impl Router {
    /// A router over `n_nodes` proxies whose caches hold up to
    /// `cache_capacity` entries each.
    pub fn new(n_nodes: usize, cache_capacity: usize, config: CoopConfig) -> Self {
        config.validate();
        assert!(n_nodes > 0 && cache_capacity > 0);
        let digests = (0..n_nodes)
            .map(|_| {
                DeltaDigest::for_capacity(
                    cache_capacity,
                    config.digest.bits_per_entry,
                    config.digest.hashes,
                )
            })
            .collect();
        Router {
            placement: Placement::new(n_nodes, config.vnodes, config.placement),
            digests,
            holders: HashMap::new(),
            advertised: vec![HashSet::new(); n_nodes],
            quarantined: vec![false; n_nodes],
            epoch: config.digest.epoch,
            next_refresh: config.digest.epoch,
            epochs: 0,
            digest_bytes: 0,
            delta_ops: 0,
            delta_flushes: 0,
            snapshot_flushes: 0,
        }
    }

    /// Whether a digest refresh is due at virtual time `t`.
    pub fn refresh_due(&self, t: f64) -> bool {
        t >= self.next_refresh
    }

    /// The next epoch boundary a refresh is scheduled for. Boundaries sit
    /// on the fixed grid `k · epoch`, so an event-driven host can arm a
    /// timer here and fire [`Router::refresh`] / [`Router::apply_deltas`]
    /// exactly on the grid.
    pub fn next_refresh(&self) -> f64 {
        self.next_refresh
    }

    /// Registers proxy `p` as a holder of `key` in the inverted index and
    /// the advertised-set baseline.
    fn index_insert(&mut self, p: usize, key: u64) {
        let list = self.holders.entry(key).or_default();
        if let Err(pos) = list.binary_search(&(p as u32)) {
            list.insert(pos, p as u32);
        }
        self.advertised[p].insert(key);
    }

    /// Deregisters proxy `p` as a holder of `key`.
    fn index_remove(&mut self, p: usize, key: u64) {
        if let Some(list) = self.holders.get_mut(&key) {
            if let Ok(pos) = list.binary_search(&(p as u32)) {
                list.remove(pos);
            }
            if list.is_empty() {
                self.holders.remove(&key);
            }
        }
        self.advertised[p].remove(&key);
    }

    /// Book-keeping shared by both refresh protocols: feed the placement
    /// policy and advance along the epoch grid rather than rescheduling
    /// from `t` — `t + epoch` would inherit the overshoot of whatever
    /// event straddled the boundary, so under sparse traffic every epoch
    /// would start a little later than the last (the digest-epoch drift
    /// bug). A host that calls late skips the boundaries it already
    /// missed.
    fn finish_boundary(&mut self, t: f64, loads: &[f64]) {
        self.placement.observe_load(loads);
        self.epochs += 1;
        while self.next_refresh <= t {
            self.next_refresh += self.epoch;
        }
    }

    /// **Full rebuild** boundary: reconstructs every proxy's digest and
    /// the holder index from `contents(proxy)` and feeds the per-proxy
    /// load estimates to the placement policy. O(proxies × capacity) work
    /// and `n · ⌈m/8⌉` exchange bytes — the parity oracle for
    /// [`Router::apply_deltas`]. Call when [`Router::refresh_due`]; the
    /// next refresh stays on the epoch grid.
    pub fn refresh(&mut self, t: f64, contents: impl Fn(usize) -> Vec<u64>, loads: &[f64]) {
        self.holders.clear();
        for set in &mut self.advertised {
            set.clear();
        }
        // A full rebuild re-advertises everyone from live cache contents,
        // so any crash quarantine ends here.
        self.quarantined.fill(false);
        for proxy in 0..self.digests.len() {
            self.digests[proxy].clear();
            for key in contents(proxy) {
                self.digests[proxy].insert(key);
                self.index_insert(proxy, key);
            }
            self.digest_bytes += self.digests[proxy].snapshot_wire_bytes();
            self.snapshot_flushes += 1;
        }
        self.finish_boundary(t, loads);
    }

    /// **Delta** boundary: applies each proxy's accumulated insert/evict
    /// stream to its counting digest and the holder index, draining the
    /// buffers. O(churn) work and [`DELTA_OP_WIRE_BYTES`]·ops exchange
    /// bytes; produces advertised state identical to [`Router::refresh`]
    /// over the same cache contents.
    ///
    /// `deltas[p]` must hold proxy `p`'s ops in chronological order, one
    /// `Insert` per absent→present cache transition and one `Evict` per
    /// present→absent (the matched-pair discipline [`DeltaDigest`]
    /// asserts).
    pub fn apply_deltas(&mut self, t: f64, deltas: &mut [Vec<DeltaOp>], loads: &[f64]) {
        assert_eq!(deltas.len(), self.digests.len(), "one delta stream per proxy");
        for (proxy, buf) in deltas.iter_mut().enumerate() {
            let ops = std::mem::take(buf);
            self.flush_delta_ops(proxy, ops);
        }
        self.finish_boundary(t, loads);
    }

    /// Applies one proxy's delta flush and meters its wire cost.
    fn flush_delta_ops(&mut self, proxy: usize, ops: Vec<DeltaOp>) {
        self.quarantined[proxy] = false;
        self.digest_bytes += DELTA_OP_WIRE_BYTES * ops.len() as u64;
        self.delta_ops += ops.len() as u64;
        self.delta_flushes += 1;
        for op in ops {
            self.digests[proxy].apply(op);
            match op {
                DeltaOp::Insert(k) => self.index_insert(proxy, k),
                DeltaOp::Evict(k) => self.index_remove(proxy, k),
            }
        }
    }

    /// Applies one proxy's snapshot flush: diff against the advertised
    /// baseline, apply the equivalent ops, meter the snapshot wire cost.
    /// Leaves digest counters, holder index, and advertised set exactly as
    /// the equivalent delta flush would — the compaction fallback changes
    /// bytes, never advertised state.
    fn flush_snapshot(&mut self, proxy: usize, keys: Vec<u64>) {
        self.quarantined[proxy] = false;
        let next: HashSet<u64> = keys.into_iter().collect();
        // Sorted diffs so the op application order is a pure function of
        // the sets, not of hash iteration order.
        let mut evicted: Vec<u64> = self.advertised[proxy].difference(&next).copied().collect();
        let mut inserted: Vec<u64> = next.difference(&self.advertised[proxy]).copied().collect();
        evicted.sort_unstable();
        inserted.sort_unstable();
        for k in evicted {
            self.digests[proxy].remove(k);
            self.index_remove(proxy, k);
        }
        for k in inserted {
            self.digests[proxy].insert(k);
            self.index_insert(proxy, k);
        }
        debug_assert_eq!(self.advertised[proxy], next);
        self.digest_bytes += self.digests[proxy].snapshot_wire_bytes();
        self.snapshot_flushes += 1;
    }

    /// **Mixed-payload** boundary: applies one [`RefreshPayload`] per
    /// proxy — deltas and snapshots freely mixed, which is how
    /// [`crate::RefreshStrategy::Auto`] ships each proxy's cheaper form and how
    /// the sharded cluster driver flushes shards that built their payloads
    /// independently. `payloads` must hold exactly one entry per proxy
    /// (any order); advertised state afterwards is identical to the
    /// equivalent [`Router::apply_deltas`] boundary, only the metered wire
    /// bytes differ.
    pub fn apply_payloads(
        &mut self,
        t: f64,
        payloads: Vec<(usize, RefreshPayload)>,
        loads: &[f64],
    ) {
        assert_eq!(payloads.len(), self.digests.len(), "one payload per proxy");
        let mut payloads = payloads;
        payloads.sort_by_key(|(proxy, _)| *proxy);
        for (expect, (proxy, payload)) in payloads.into_iter().enumerate() {
            assert_eq!(proxy, expect, "payload set must cover every proxy exactly once");
            match payload {
                RefreshPayload::Deltas(ops) => self.flush_delta_ops(proxy, ops),
                RefreshPayload::Snapshot(keys) => self.flush_snapshot(proxy, keys),
            }
        }
        self.finish_boundary(t, loads);
    }

    /// Whether a delta stream of `ops` ops should fall back to a snapshot
    /// for `proxy` under [`crate::RefreshStrategy::Auto`] — true past the wire
    /// crossover [`DeltaDigest::delta_crossover_ops`].
    pub fn snapshot_cheaper(&self, proxy: usize, ops: usize) -> bool {
        ops as u64 > self.digests[proxy].delta_crossover_ops()
    }

    /// Resolves a miss/prefetch for `key` at proxy `me`: the placement
    /// owner's digest first, then the holder index in cyclic order from
    /// `owner + 1` — O(holders of `key`), not O(proxies).
    pub fn resolve(&self, me: usize, key: u64) -> Resolution {
        let n = self.digests.len();
        if n == 1 {
            return Resolution::Origin;
        }
        let owner = self.placement.owner(key);
        if owner != me && !self.quarantined[owner] && self.digests[owner].contains(key) {
            return Resolution::Peer(owner);
        }
        if let Some(list) = self.holders.get(&key) {
            let mut best: Option<(usize, usize)> = None; // (offset from owner, proxy)
            for &q in list {
                let q = q as usize;
                if q == me || q == owner || self.quarantined[q] {
                    continue;
                }
                let offset = (q + n - owner) % n;
                if best.is_none_or(|(b, _)| offset < b) {
                    best = Some((offset, q));
                }
            }
            if let Some((_, q)) = best {
                return Resolution::Peer(q);
            }
        }
        Resolution::Origin
    }

    /// The placement owner of `key` (where prefetched copies gravitate).
    pub fn owner(&self, key: u64) -> usize {
        self.placement.owner(key)
    }

    /// Proxy `p` crashed: void every claim it advertised. Its digest and
    /// advertised set are wiped, its holder-index entries removed, and the
    /// proxy is marked quarantined so [`Router::resolve`] cannot return it
    /// — the stale-holder bug where the cyclic scan handed out a peer
    /// whose cache no longer exists. The quarantine lifts at the proxy's
    /// next digest epoch (its next [`RefreshPayload`] flush or a full
    /// rebuild), when its advertised state is trustworthy again. Returns
    /// the number of advertised keys wiped.
    pub fn quarantine(&mut self, p: usize) -> u64 {
        let keys = std::mem::take(&mut self.advertised[p]);
        for key in &keys {
            if let Some(list) = self.holders.get_mut(key) {
                if let Ok(pos) = list.binary_search(&(p as u32)) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.holders.remove(key);
                }
            }
        }
        self.digests[p].clear();
        self.quarantined[p] = true;
        keys.len() as u64
    }

    /// Whether proxy `p` is quarantined (crashed and not yet re-advertised).
    pub fn is_quarantined(&self, p: usize) -> bool {
        self.quarantined[p]
    }

    /// Activity counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            digest_epochs: self.epochs,
            vnode_migrations: self.placement.migrations(),
            digest_bytes: self.digest_bytes,
            delta_ops: self.delta_ops,
            delta_flushes: self.delta_flushes,
            snapshot_flushes: self.snapshot_flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> Router {
        Router::new(n, 64, CoopConfig::default())
    }

    #[test]
    fn cold_start_goes_to_origin() {
        let r = router(4);
        for key in 0..100 {
            assert_eq!(r.resolve(0, key), Resolution::Origin);
        }
    }

    #[test]
    fn single_node_always_origin() {
        let mut r = router(1);
        r.refresh(1.0, |_| vec![7], &[0.5]);
        assert_eq!(r.resolve(0, 7), Resolution::Origin);
    }

    #[test]
    fn advertised_key_routes_to_peer() {
        let mut r = router(3);
        r.refresh(1.0, |p| if p == 2 { vec![11, 12] } else { vec![] }, &[0.0; 3]);
        assert_eq!(r.resolve(0, 11), Resolution::Peer(2));
        assert_eq!(r.resolve(1, 12), Resolution::Peer(2));
        // The holder itself does not loop back.
        assert_eq!(r.resolve(2, 11), Resolution::Origin);
    }

    #[test]
    fn owner_digest_is_consulted_first() {
        let mut r = router(4);
        let key = 42u64;
        let owner = r.owner(key);
        // Everyone advertises the key; resolution from a non-owner must
        // pick the placement owner.
        r.refresh(1.0, |_| vec![key], &[0.0; 4]);
        let me = (owner + 1) % 4;
        assert_eq!(r.resolve(me, key), Resolution::Peer(owner));
    }

    #[test]
    fn non_owner_fallback_follows_cyclic_scan_order() {
        // Multiple non-owner holders: resolution must pick the first one
        // after the owner in cyclic index order — the order the retired
        // O(n) digest scan used, now answered from the holder index.
        let n = 6;
        let mut r = router(n);
        let key = 4242u64;
        let owner = r.owner(key);
        let holder_a = (owner + 2) % n;
        let holder_b = (owner + 4) % n;
        r.refresh(
            1.0,
            |p| if p == holder_a || p == holder_b { vec![key] } else { vec![] },
            &[0.0; 6],
        );
        let me = (owner + 5) % n;
        let expect = if me == holder_a { holder_b } else { holder_a };
        assert_eq!(r.resolve(me, key), Resolution::Peer(expect));
    }

    #[test]
    fn quarantine_voids_crashed_holder_until_next_epoch() {
        // Regression: before quarantine existed, the holder-index cyclic
        // scan kept returning a crashed proxy whose cache was gone.
        let n = 4;
        let mut r = router(n);
        let key = 77u64;
        let owner = r.owner(key);
        let holder = (owner + 2) % n;
        r.refresh(5.0, |p| if p == holder { vec![key] } else { vec![] }, &[0.0; 4]);
        let me = (owner + 1) % n;
        assert_eq!(r.resolve(me, key), Resolution::Peer(holder));

        let wiped = r.quarantine(holder);
        assert_eq!(wiped, 1);
        assert!(r.is_quarantined(holder));
        assert_eq!(r.resolve(me, key), Resolution::Origin, "crashed holder must not be returned");

        // The proxy's next digest epoch re-admits it with live contents.
        let payloads = (0..n)
            .map(|p| {
                let keys = if p == holder { vec![key] } else { vec![] };
                (p, RefreshPayload::Snapshot(keys))
            })
            .collect();
        r.apply_payloads(10.0, payloads, &[0.0; 4]);
        assert!(!r.is_quarantined(holder));
        assert_eq!(r.resolve(me, key), Resolution::Peer(holder));
    }

    #[test]
    fn quarantined_owner_probe_falls_through() {
        let n = 4;
        let mut r = router(n);
        let key = 42u64;
        let owner = r.owner(key);
        let other = (owner + 2) % n;
        r.refresh(5.0, |p| if p == owner || p == other { vec![key] } else { vec![] }, &[0.0; 4]);
        let me = (owner + 1) % n;
        assert_eq!(r.resolve(me, key), Resolution::Peer(owner));
        r.quarantine(owner);
        // The owner's claim is void, but the surviving holder still serves.
        assert_eq!(r.resolve(me, key), Resolution::Peer(other));
    }

    #[test]
    fn refresh_epochs_advance() {
        let mut r = router(2);
        assert!(!r.refresh_due(1.0));
        assert!(r.refresh_due(5.0));
        r.refresh(5.0, |_| vec![], &[0.0; 2]);
        assert!(!r.refresh_due(9.0));
        assert!(r.refresh_due(10.0));
        assert_eq!(r.stats().digest_epochs, 1);
    }

    #[test]
    fn refresh_stays_on_the_epoch_grid() {
        // Default epoch is 5. A refresh handled *late* (t = 7.3, because
        // the triggering event straddled the t = 5 boundary) must still
        // schedule the next boundary at 10, not at 12.3 — epochs may not
        // drift with traffic.
        let mut r = router(2);
        assert_eq!(r.next_refresh(), 5.0);
        r.refresh(7.3, |_| vec![], &[0.0; 2]);
        assert_eq!(r.next_refresh(), 10.0);
        // Called exactly on the grid, it advances exactly one epoch.
        r.refresh(10.0, |_| vec![], &[0.0; 2]);
        assert_eq!(r.next_refresh(), 15.0);
        // A host that slept through several boundaries skips them rather
        // than firing a burst of catch-up refreshes.
        r.refresh(31.0, |_| vec![], &[0.0; 2]);
        assert_eq!(r.next_refresh(), 35.0);
    }

    #[test]
    fn stale_digest_keeps_claiming_until_refresh() {
        let mut r = router(2);
        r.refresh(5.0, |p| if p == 1 { vec![9] } else { vec![] }, &[0.0; 2]);
        // Peer 1 has since evicted key 9, but until the next refresh the
        // router still claims it — the staleness false hit.
        assert_eq!(r.resolve(0, 9), Resolution::Peer(1));
        r.refresh(10.0, |_| vec![], &[0.0; 2]);
        assert_eq!(r.resolve(0, 9), Resolution::Origin);
    }

    #[test]
    fn delta_boundary_matches_full_rebuild() {
        // Same cache history, two protocols: identical resolutions.
        let mut by_delta = router(3);
        let mut by_rebuild = router(3);
        let contents: [Vec<u64>; 3] = [vec![1, 2], vec![3], vec![]];
        by_rebuild.refresh(5.0, |p| contents[p].clone(), &[0.0; 3]);
        let mut deltas: Vec<Vec<DeltaOp>> = vec![
            vec![DeltaOp::Insert(1), DeltaOp::Insert(9), DeltaOp::Evict(9), DeltaOp::Insert(2)],
            vec![DeltaOp::Insert(3)],
            vec![],
        ];
        by_delta.apply_deltas(5.0, &mut deltas, &[0.0; 3]);
        assert!(deltas.iter().all(Vec::is_empty), "apply_deltas drains the buffers");
        for me in 0..3 {
            for key in 0..64u64 {
                assert_eq!(
                    by_delta.resolve(me, key),
                    by_rebuild.resolve(me, key),
                    "me {me} key {key}"
                );
            }
        }
    }

    #[test]
    fn snapshot_payload_matches_delta_payload_state() {
        // Same cache history flushed as a delta stream on one router and a
        // full snapshot on the other: identical resolutions afterwards, and
        // the advertised baseline tracks so a later *delta* flush composes
        // correctly on top of a snapshot flush.
        let mut by_delta = router(3);
        let mut by_snap = router(3);
        let ops =
            vec![DeltaOp::Insert(5), DeltaOp::Insert(9), DeltaOp::Evict(9), DeltaOp::Insert(2)];
        by_delta.apply_payloads(
            5.0,
            vec![
                (0, RefreshPayload::Deltas(ops)),
                (1, RefreshPayload::Deltas(vec![])),
                (2, RefreshPayload::Deltas(vec![])),
            ],
            &[0.0; 3],
        );
        by_snap.apply_payloads(
            5.0,
            vec![
                // Out of order on purpose: apply_payloads sequences by proxy.
                (2, RefreshPayload::Deltas(vec![])),
                (0, RefreshPayload::Snapshot(vec![5, 2])),
                (1, RefreshPayload::Deltas(vec![])),
            ],
            &[0.0; 3],
        );
        for me in 0..3 {
            for key in 0..64u64 {
                assert_eq!(
                    by_delta.resolve(me, key),
                    by_snap.resolve(me, key),
                    "me {me} key {key}"
                );
            }
        }
        // Second boundary: proxy 0 evicts 5, both protocols again.
        by_delta.apply_payloads(
            10.0,
            vec![
                (0, RefreshPayload::Deltas(vec![DeltaOp::Evict(5)])),
                (1, RefreshPayload::Deltas(vec![])),
                (2, RefreshPayload::Deltas(vec![])),
            ],
            &[0.0; 3],
        );
        by_snap.apply_payloads(
            10.0,
            vec![
                (0, RefreshPayload::Deltas(vec![DeltaOp::Evict(5)])),
                (1, RefreshPayload::Deltas(vec![])),
                (2, RefreshPayload::Deltas(vec![])),
            ],
            &[0.0; 3],
        );
        for me in 0..3 {
            for key in 0..64u64 {
                assert_eq!(
                    by_delta.resolve(me, key),
                    by_snap.resolve(me, key),
                    "me {me} key {key}"
                );
            }
        }
    }

    #[test]
    fn compaction_crossover_is_snapshot_over_delta_wire_cost() {
        // capacity 64 × 10 bits → m = 640 slots → 80-byte snapshot →
        // crossover at ⌊80 / 9⌋ = 8 ops.
        let r = router(2);
        assert!(!r.snapshot_cheaper(0, 8), "at the crossover deltas still win (ties go to deltas)");
        assert!(r.snapshot_cheaper(0, 9), "past the crossover the snapshot is cheaper");
        // The metered costs agree with the decision rule around the
        // boundary: 9 ops cost more wire bytes than one snapshot, 8 less.
        for (ops, cheaper) in [(8u64, false), (9, true)] {
            assert_eq!(ops * DELTA_OP_WIRE_BYTES > 80, cheaper);
        }
    }

    #[test]
    fn flush_kinds_are_metered() {
        let mut r = router(2);
        r.apply_payloads(
            5.0,
            vec![
                (0, RefreshPayload::Deltas(vec![DeltaOp::Insert(1)])),
                (1, RefreshPayload::Snapshot(vec![7, 8])),
            ],
            &[0.0; 2],
        );
        let s = r.stats();
        assert_eq!((s.delta_flushes, s.snapshot_flushes), (1, 1));
        assert_eq!(s.delta_ops, 1);
        // 1 delta op + one 80-byte snapshot (capacity 64 × 10 bits).
        assert_eq!(s.digest_bytes, DELTA_OP_WIRE_BYTES + 80);
    }

    #[test]
    fn digest_bytes_meter_full_vs_delta_cost() {
        let mut full = router(2);
        full.refresh(5.0, |_| vec![1, 2, 3], &[0.0; 2]);
        let full_bytes = full.stats().digest_bytes;
        // 64 entries × 10 bits each → 640 bits → 80 bytes per proxy.
        assert_eq!(full_bytes, 2 * 80);

        let mut delta = router(2);
        let mut ops =
            vec![vec![DeltaOp::Insert(1), DeltaOp::Insert(2), DeltaOp::Insert(3)], vec![]];
        delta.apply_deltas(5.0, &mut ops, &[0.0; 2]);
        let s = delta.stats();
        assert_eq!(s.delta_ops, 3);
        assert_eq!(s.digest_bytes, 3 * DELTA_OP_WIRE_BYTES);
        assert!(s.digest_bytes < full_bytes);
    }
}
