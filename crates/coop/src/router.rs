//! Miss/prefetch resolution: local knowledge → peer → origin.
//!
//! The router owns the cluster-wide view: one Bloom digest per proxy plus
//! the placement ring. When proxy `me` misses on `key` it asks, in order:
//!
//! 1. the consistent-hash **owner** of the key (if its digest advertises
//!    the key) — the proxy the placement layer steers the key toward, so
//!    it is the most likely true holder;
//! 2. any **other peer** whose digest advertises the key (scanned in a
//!    deterministic order starting after the owner);
//! 3. the **origin** otherwise.
//!
//! Digests refresh on the configured epoch; between refreshes they go
//! stale, so a `Peer` resolution is a *claim*, not a guarantee — the
//! caller must fall back to the origin when the peer no longer holds the
//! key (the staleness false hit the `cluster` engine charges for).

use crate::digest::BloomFilter;
use crate::placement::Placement;
use crate::CoopConfig;

/// Where a miss (or prefetch) should be served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// No peer advertises the key: fetch from the origin.
    Origin,
    /// This peer's digest advertises the key.
    Peer(usize),
}

/// Counters describing the cooperative layer's activity over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Digest refresh rounds performed.
    pub digest_epochs: u64,
    /// Virtual nodes migrated by the placement policy.
    pub vnode_migrations: u64,
}

/// The cooperative routing fabric for one cluster.
pub struct Router {
    placement: Placement,
    digests: Vec<BloomFilter>,
    epoch: f64,
    next_refresh: f64,
    epochs: u64,
}

impl Router {
    /// A router over `n_nodes` proxies whose caches hold up to
    /// `cache_capacity` entries each.
    pub fn new(n_nodes: usize, cache_capacity: usize, config: CoopConfig) -> Self {
        config.validate();
        assert!(n_nodes > 0 && cache_capacity > 0);
        let digests = (0..n_nodes)
            .map(|_| {
                BloomFilter::for_capacity(
                    cache_capacity,
                    config.digest.bits_per_entry,
                    config.digest.hashes,
                )
            })
            .collect();
        Router {
            placement: Placement::new(n_nodes, config.vnodes, config.placement),
            digests,
            epoch: config.digest.epoch,
            next_refresh: config.digest.epoch,
            epochs: 0,
        }
    }

    /// Whether a digest refresh is due at virtual time `t`.
    pub fn refresh_due(&self, t: f64) -> bool {
        t >= self.next_refresh
    }

    /// The next epoch boundary a refresh is scheduled for. Boundaries sit
    /// on the fixed grid `k · epoch`, so an event-driven host can arm a
    /// timer here and fire [`Router::refresh`] exactly on the grid.
    pub fn next_refresh(&self) -> f64 {
        self.next_refresh
    }

    /// Rebuilds every proxy's digest from `contents(proxy)` and feeds the
    /// per-proxy load estimates to the placement policy. Call when
    /// [`Router::refresh_due`]; the next refresh stays on the epoch grid.
    pub fn refresh(&mut self, t: f64, contents: impl Fn(usize) -> Vec<u64>, loads: &[f64]) {
        for (proxy, digest) in self.digests.iter_mut().enumerate() {
            digest.clear();
            for key in contents(proxy) {
                digest.insert(key);
            }
        }
        self.placement.observe_load(loads);
        self.epochs += 1;
        // Advance along the epoch grid rather than rescheduling from `t`:
        // `t + epoch` inherits the overshoot of whatever event straddled
        // the boundary, so under sparse traffic every epoch would start a
        // little later than the last (the digest-epoch drift bug). A host
        // that calls late skips the boundaries it already missed.
        while self.next_refresh <= t {
            self.next_refresh += self.epoch;
        }
    }

    /// Resolves a miss/prefetch for `key` at proxy `me`.
    pub fn resolve(&self, me: usize, key: u64) -> Resolution {
        let n = self.digests.len();
        if n == 1 {
            return Resolution::Origin;
        }
        let owner = self.placement.owner(key);
        if owner != me && self.digests[owner].contains(key) {
            return Resolution::Peer(owner);
        }
        for offset in 1..n {
            let q = (owner + offset) % n;
            if q != me && q != owner && self.digests[q].contains(key) {
                return Resolution::Peer(q);
            }
        }
        Resolution::Origin
    }

    /// The placement owner of `key` (where prefetched copies gravitate).
    pub fn owner(&self, key: u64) -> usize {
        self.placement.owner(key)
    }

    /// Activity counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats { digest_epochs: self.epochs, vnode_migrations: self.placement.migrations() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> Router {
        Router::new(n, 64, CoopConfig::default())
    }

    #[test]
    fn cold_start_goes_to_origin() {
        let r = router(4);
        for key in 0..100 {
            assert_eq!(r.resolve(0, key), Resolution::Origin);
        }
    }

    #[test]
    fn single_node_always_origin() {
        let mut r = router(1);
        r.refresh(1.0, |_| vec![7], &[0.5]);
        assert_eq!(r.resolve(0, 7), Resolution::Origin);
    }

    #[test]
    fn advertised_key_routes_to_peer() {
        let mut r = router(3);
        r.refresh(1.0, |p| if p == 2 { vec![11, 12] } else { vec![] }, &[0.0; 3]);
        assert_eq!(r.resolve(0, 11), Resolution::Peer(2));
        assert_eq!(r.resolve(1, 12), Resolution::Peer(2));
        // The holder itself does not loop back.
        assert_eq!(r.resolve(2, 11), Resolution::Origin);
    }

    #[test]
    fn owner_digest_is_consulted_first() {
        let mut r = router(4);
        let key = 42u64;
        let owner = r.owner(key);
        // Everyone advertises the key; resolution from a non-owner must
        // pick the placement owner.
        r.refresh(1.0, |_| vec![key], &[0.0; 4]);
        let me = (owner + 1) % 4;
        assert_eq!(r.resolve(me, key), Resolution::Peer(owner));
    }

    #[test]
    fn refresh_epochs_advance() {
        let mut r = router(2);
        assert!(!r.refresh_due(1.0));
        assert!(r.refresh_due(5.0));
        r.refresh(5.0, |_| vec![], &[0.0; 2]);
        assert!(!r.refresh_due(9.0));
        assert!(r.refresh_due(10.0));
        assert_eq!(r.stats().digest_epochs, 1);
    }

    #[test]
    fn refresh_stays_on_the_epoch_grid() {
        // Default epoch is 5. A refresh handled *late* (t = 7.3, because
        // the triggering event straddled the t = 5 boundary) must still
        // schedule the next boundary at 10, not at 12.3 — epochs may not
        // drift with traffic.
        let mut r = router(2);
        assert_eq!(r.next_refresh(), 5.0);
        r.refresh(7.3, |_| vec![], &[0.0; 2]);
        assert_eq!(r.next_refresh(), 10.0);
        // Called exactly on the grid, it advances exactly one epoch.
        r.refresh(10.0, |_| vec![], &[0.0; 2]);
        assert_eq!(r.next_refresh(), 15.0);
        // A host that slept through several boundaries skips them rather
        // than firing a burst of catch-up refreshes.
        r.refresh(31.0, |_| vec![], &[0.0; 2]);
        assert_eq!(r.next_refresh(), 35.0);
    }

    #[test]
    fn stale_digest_keeps_claiming_until_refresh() {
        let mut r = router(2);
        r.refresh(5.0, |p| if p == 1 { vec![9] } else { vec![] }, &[0.0; 2]);
        // Peer 1 has since evicted key 9, but until the next refresh the
        // router still claims it — the staleness false hit.
        assert_eq!(r.resolve(0, 9), Resolution::Peer(1));
        r.refresh(10.0, |_| vec![], &[0.0; 2]);
        assert_eq!(r.resolve(0, 9), Resolution::Origin);
    }
}
