//! Delta/full-rebuild equivalence, proptested over arbitrary interleavings
//! of cache inserts, evicts, and epoch flushes:
//!
//! * a [`DeltaDigest`] maintained purely from the delta stream answers
//!   `contains` identically to a [`BloomFilter`] rebuilt from scratch at
//!   every flush — structural false positives included;
//! * a [`Router`] refreshed via [`Router::apply_deltas`] resolves every
//!   (proxy, key) pair identically to one refreshed via the full-rebuild
//!   [`Router::refresh`] oracle, and both follow the retired O(n) scan's
//!   resolution order (owner first, then ascending cyclic offset);
//! * the counting slots never underflow under the matched-pair discipline
//!   (one `Insert` per absent→present transition, one `Evict` per
//!   present→absent) — [`DeltaDigest::remove`] asserts it, so any
//!   violation fails the test loudly.

use coop::{BloomFilter, CoopConfig, DeltaDigest, DeltaOp, Resolution, Router};
use proptest::prelude::*;
use std::collections::BTreeSet;

const CAPACITY: usize = 32;
const BITS_PER_ENTRY: usize = 10;
const HASHES: usize = 4;

/// Interprets a generated `(proxy, key, action)` step against per-proxy
/// model sets, keeping the delta streams legal: `Insert` only when absent
/// (and below capacity), `Evict` only when present.
fn apply_step(model: &mut [BTreeSet<u64>], pending: &mut [Vec<DeltaOp>], proxy: usize, key: u64) {
    if model[proxy].remove(&key) {
        pending[proxy].push(DeltaOp::Evict(key));
    } else if model[proxy].len() < CAPACITY {
        model[proxy].insert(key);
        pending[proxy].push(DeltaOp::Insert(key));
    }
}

proptest! {
    /// After any interleaving of inserts, evicts, and flushes, the
    /// delta-maintained counting digest answers membership identically to
    /// a bitwise filter rebuilt from the live contents, and its live
    /// count matches the model exactly (no underflow, no leak).
    #[test]
    fn delta_maintained_digest_matches_full_rebuild(
        steps in proptest::collection::vec((0usize..4, 0u64..48, 0u32..8), 1..500),
    ) {
        let n = 4;
        let mut model: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
        let mut pending: Vec<Vec<DeltaOp>> = vec![Vec::new(); n];
        let mut digests: Vec<DeltaDigest> =
            (0..n).map(|_| DeltaDigest::for_capacity(CAPACITY, BITS_PER_ENTRY, HASHES)).collect();
        let mut flushed = false;
        for (proxy, key, action) in steps {
            if action == 7 {
                flushed = true;
                for q in 0..n {
                    for op in pending[q].drain(..) {
                        digests[q].apply(op);
                    }
                    let mut rebuilt =
                        BloomFilter::for_capacity(CAPACITY, BITS_PER_ENTRY, HASHES);
                    for &k in &model[q] {
                        rebuilt.insert(k);
                    }
                    prop_assert_eq!(
                        digests[q].live(),
                        model[q].len() as u64,
                        "proxy {}: live-count drift", q
                    );
                    // Probe both the key universe and a disjoint range, so
                    // false-positive structure is compared too.
                    for probe in (0..48u64).chain(1_000..1_200) {
                        prop_assert_eq!(
                            digests[q].contains(probe),
                            rebuilt.contains(probe),
                            "proxy {} probe {}: delta vs rebuild disagree", q, probe
                        );
                    }
                }
            } else {
                apply_step(&mut model, &mut pending, proxy, key);
            }
        }
        // Make sure the property was exercised at least once per case.
        if !flushed {
            for q in 0..n {
                for op in pending[q].drain(..) {
                    digests[q].apply(op);
                }
                prop_assert_eq!(digests[q].live(), model[q].len() as u64);
            }
        }
    }

    /// The router's two refresh protocols are observationally identical:
    /// after every flush, `resolve` agrees pairwise across all proxies and
    /// keys, and both agree with a reference reimplementation of the
    /// retired O(n) scan order (owner's digest first, then the first
    /// advertised holder by ascending cyclic offset from the owner).
    #[test]
    fn router_delta_path_matches_full_rebuild_path(
        steps in proptest::collection::vec((0usize..3, 0u64..64, 0u32..6), 1..400),
    ) {
        let n = 3;
        let cfg = CoopConfig::default();
        let mut by_delta = Router::new(n, CAPACITY, cfg);
        let mut by_full = Router::new(n, CAPACITY, cfg);
        let mut model: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
        let mut pending: Vec<Vec<DeltaOp>> = vec![Vec::new(); n];
        let mut t = 0.0;
        for (proxy, key, action) in steps {
            if action == 5 {
                t += cfg.digest.epoch;
                let loads = [0.3, 0.5, 0.7];
                by_delta.apply_deltas(t, &mut pending, &loads);
                by_full.refresh(t, |p| model[p].iter().copied().collect(), &loads);
                for me in 0..n {
                    for probe in 0..96u64 {
                        let got = by_delta.resolve(me, probe);
                        prop_assert_eq!(
                            got,
                            by_full.resolve(me, probe),
                            "me {} key {}: delta vs full disagree", me, probe
                        );
                        // Reference scan, given the advertised holder sets.
                        let owner = by_full.owner(probe);
                        let mut expect = Resolution::Origin;
                        if owner != me && model[owner].contains(&probe) {
                            expect = Resolution::Peer(owner);
                        } else {
                            for offset in 1..n {
                                let q = (owner + offset) % n;
                                if q != me && q != owner && model[q].contains(&probe) {
                                    expect = Resolution::Peer(q);
                                    break;
                                }
                            }
                        }
                        // The only legal divergence from the reference is a
                        // structural false positive on the owner's digest.
                        if got != expect {
                            prop_assert_eq!(
                                got,
                                Resolution::Peer(owner),
                                "me {} key {}: divergence is not an owner FP", me, probe
                            );
                            prop_assert!(
                                !model[owner].contains(&probe),
                                "me {} key {}: owner really holds the key", me, probe
                            );
                        }
                    }
                }
            } else {
                apply_step(&mut model, &mut pending, proxy, key);
            }
        }
    }
}
