//! Property tests for the cooperative-caching substrate: Bloom digests
//! stay under their configured false-positive bound, and the consistent-
//! hash ring redistributes only the minimal key set on membership change.

use coop::{BloomFilter, DigestConfig, HashRing};
use proptest::prelude::*;

proptest! {
    /// The empirical false-positive rate of a digest filled to its
    /// provisioned capacity stays under the configured analytic bound
    /// (with sampling slack): the property real summary-cache deployments
    /// size their filters by.
    #[test]
    fn bloom_fp_rate_stays_under_configured_bound(
        capacity in 200usize..2_000,
        bits_per_entry in 8usize..16,
        hashes in 3usize..6,
        key_base in 0u64..1_000_000,
    ) {
        let cfg = DigestConfig { epoch: 1.0, bits_per_entry, hashes };
        let mut filter = BloomFilter::for_capacity(capacity, bits_per_entry, hashes);
        for key in key_base..key_base + capacity as u64 {
            filter.insert(key);
        }
        // Probe keys disjoint from the inserted range.
        let probes = 20_000u64;
        let probe_base = key_base + 10_000_000;
        let fp = (probe_base..probe_base + probes).filter(|&k| filter.contains(k)).count();
        let rate = fp as f64 / probes as f64;
        let bound = cfg.fp_bound();
        // 2x the analytic bound plus an absolute floor absorbs sampling
        // noise at small rates; a broken filter exceeds this immediately.
        prop_assert!(
            rate <= 2.0 * bound + 0.01,
            "fp rate {rate} exceeds bound {bound} (m/n={bits_per_entry}, k={hashes})"
        );
    }

    /// No false negatives, ever: every inserted key is reported present.
    #[test]
    fn bloom_has_no_false_negatives(
        keys in proptest::collection::vec(0u64..1_000_000_000, 1..500),
    ) {
        let mut filter = BloomFilter::for_capacity(keys.len(), 10, 4);
        for &k in &keys {
            filter.insert(k);
        }
        for &k in &keys {
            prop_assert!(filter.contains(k), "inserted key {k} reported absent");
        }
    }

    /// Node **leave**: the only keys whose owner changes are those the
    /// departed node owned — nothing moves between survivors — and the
    /// count is in the order of K/n (well under the K·(n−1)/n a naive
    /// mod-n rehash would move).
    #[test]
    fn ring_leave_moves_at_most_the_departed_share(
        n_nodes in 2usize..8,
        victim_pick in 0usize..8,
        key_base in 0u64..1_000_000,
    ) {
        let vnodes = 128;
        let k_keys = 4_000u64;
        let victim = victim_pick % n_nodes;
        let before = HashRing::new(n_nodes, vnodes);
        let mut after = before.clone();
        after.remove_node(victim);

        let mut moved = 0u64;
        for key in key_base..key_base + k_keys {
            let (a, b) = (before.owner(key), after.owner(key));
            if a != b {
                prop_assert_eq!(a, victim, "key {} moved from a surviving node", key);
                moved += 1;
            } else {
                prop_assert!(b != victim, "departed node still owns key {}", key);
            }
        }
        // Expected movement is K/n; 128 vnodes keep the realised count
        // within 2x of that.
        let bound = 2 * k_keys / n_nodes as u64;
        prop_assert!(moved <= bound, "moved {moved} keys > bound {bound} (n={n_nodes})");
    }

    /// Node **join**: every relocated key lands on the joining node, and
    /// at most ~K/(n+1) keys move.
    #[test]
    fn ring_join_moves_at_most_one_share(
        n_nodes in 1usize..8,
        key_base in 0u64..1_000_000,
    ) {
        let vnodes = 128;
        let k_keys = 4_000u64;
        let before = HashRing::new(n_nodes, vnodes);
        let mut after = before.clone();
        let joined = after.add_node(vnodes);

        let mut moved = 0u64;
        for key in key_base..key_base + k_keys {
            let (a, b) = (before.owner(key), after.owner(key));
            if a != b {
                prop_assert_eq!(b, joined, "key {} relocated to a pre-existing node", key);
                moved += 1;
            }
        }
        let bound = 2 * k_keys / (n_nodes as u64 + 1);
        prop_assert!(moved <= bound, "moved {moved} keys > bound {bound} (n={n_nodes})");
    }
}
