//! Regenerates the report of experiment `e10_ablation` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e10_ablation::render());
}
