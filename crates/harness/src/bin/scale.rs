//! Regenerates the report of experiment `e15_scale`: the cluster scale
//! sweep over 64/128/256-proxy peer meshes on the indexed event
//! scheduler.
//!
//! Pass `--smoke` for the reduced request budget CI uses to keep the
//! 256-proxy path from rotting.

use harness::experiments::e15_scale;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = if smoke {
        e15_scale::render_with(e15_scale::SMOKE_TOTAL_REQUESTS)
    } else {
        e15_scale::render()
    };
    print!("{report}");
}
