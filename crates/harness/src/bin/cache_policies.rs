//! Regenerates the report of experiment `e12_caches` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e12_caches::render());
}
