//! Regenerates the report of experiment `e7_validate` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e7_validate::render());
}
