//! Regenerates the report of experiment `e1_fig1` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e1_fig1::render());
}
