//! Regenerates the report of experiment `e17_shard`: strong scaling of
//! the sharded parallel cluster engine over latency meshes (256/512
//! proxies, shards ∈ {1, 2, 4, 8}), with bit-identical reports asserted
//! across the whole ladder.
//!
//! Pass `--smoke` for the reduced fabric CI uses (shards ∈ {1, 2}) so the
//! parallel path is exercised on every push.

use harness::experiments::e17_shard;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = if smoke { e17_shard::render_smoke() } else { e17_shard::render() };
    print!("{report}");
}
