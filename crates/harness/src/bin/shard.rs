//! Regenerates the report of experiment `e17_shard`: strong scaling of
//! the sharded parallel cluster engine over latency meshes (256/512
//! proxies, shards ∈ {1, 2, 4, 8}), with bit-identical reports asserted
//! across the whole ladder.
//!
//! The wall-clock ladder (formerly stderr-only) also lands as structured
//! rows in the `e17_strong_scaling` section of `OBS_cluster.json`; stdout
//! stays byte-identical run to run.
//!
//! Pass `--smoke` for the reduced fabric CI uses (shards ∈ {1, 2}) so the
//! parallel path is exercised on every push.

use harness::artifact::{self, OBS_ARTIFACT};
use harness::experiments::e17_shard;
use std::path::Path;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, rows) = if smoke {
        e17_shard::render_with_rows(
            &e17_shard::SMOKE_SIZES,
            &e17_shard::SMOKE_SHARD_COUNTS,
            e17_shard::SMOKE_TOTAL_REQUESTS,
        )
    } else {
        e17_shard::render_with_rows(
            &e17_shard::SIZES,
            &e17_shard::SHARD_COUNTS,
            e17_shard::TOTAL_REQUESTS,
        )
    };
    print!("{report}");
    let path = Path::new(OBS_ARTIFACT);
    match artifact::write_section(path, "e17_strong_scaling", rows) {
        Ok(()) => eprintln!("e17: wrote section e17_strong_scaling of {}", path.display()),
        Err(e) => eprintln!("e17: could not write {}: {e}", path.display()),
    }
}
