//! Regenerates the report of experiment `e11_wireless` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e11_wireless::render());
}
