//! Regenerates the report of experiment `e2_fig2` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e2_fig2::render());
}
