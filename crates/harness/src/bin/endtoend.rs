//! Regenerates the report of experiment `e8_endtoend` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e8_endtoend::render());
}
