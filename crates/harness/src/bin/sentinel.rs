//! Regression sentinel: diffs the run artifacts against the committed
//! baselines in `baselines/`, failing (exit 1) on any drift outside the
//! tolerance bands — the CI gate that catches silent behaviour changes.
//!
//! Compared artifacts (when present in the baseline directory):
//! * `OBS_cluster.json` — E17/E18/E19 telemetry (written by the smoke
//!   binaries earlier in the CI run)
//! * `crates/bench/BENCH_cluster.json` — the bench shim's trajectory
//!
//! Wall-clock fields are excluded by schema ([`harness::sentinel`]);
//! counters must match exactly; floats to 1e-9 relative. See
//! `baselines/README.md` for the full band definition.
//!
//! Flags:
//! * `--baselines <dir>` — baseline directory (default `baselines`)
//! * `--update` — overwrite the baselines with the current artifacts
//!   (run the smoke binaries first, then commit the result)

use harness::sentinel::{compare, DEFAULT_REL_TOL};
use simcore::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// `(baseline filename, current artifact path)` pairs the sentinel guards.
const ARTIFACTS: [(&str, &str); 2] = [
    ("OBS_cluster.json", "OBS_cluster.json"),
    ("BENCH_cluster.json", "crates/bench/BENCH_cluster.json"),
];

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))
}

fn update(dir: &Path) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("sentinel --update: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut status = ExitCode::SUCCESS;
    for (name, current) in ARTIFACTS {
        // Parse-and-render rather than copy: verifies the artifact and
        // normalizes it through the same codec the comparison uses.
        match load(Path::new(current)) {
            Ok(doc) => {
                let dest = dir.join(name);
                match std::fs::write(&dest, doc.render()) {
                    Ok(()) => println!("sentinel: updated {}", dest.display()),
                    Err(e) => {
                        eprintln!("sentinel --update: cannot write {}: {e}", dest.display());
                        status = ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("sentinel --update: skipping {name}: {e}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir: PathBuf = args
        .iter()
        .position(|a| a == "--baselines")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("baselines"), PathBuf::from);
    if args.iter().any(|a| a == "--update") {
        return update(&dir);
    }

    let mut total = 0usize;
    let mut checked = 0usize;
    for (name, current) in ARTIFACTS {
        let base_path = dir.join(name);
        if !base_path.exists() {
            eprintln!("sentinel: no baseline {}, skipping", base_path.display());
            continue;
        }
        let (base, cur) = match (load(&base_path), load(Path::new(current))) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("sentinel: {e}");
                total += 1;
                continue;
            }
        };
        checked += 1;
        let drifts = compare(&base, &cur, DEFAULT_REL_TOL);
        if drifts.is_empty() {
            println!("sentinel: {current} matches {}", base_path.display());
        } else {
            eprintln!("sentinel: {current} drifted from {}:", base_path.display());
            for d in &drifts {
                eprintln!("  {d}");
            }
            total += drifts.len();
        }
    }
    if total > 0 {
        eprintln!(
            "sentinel: {total} drift(s). If intentional, refresh with \
             `cargo run -p harness --bin sentinel -- --update` and commit."
        );
        return ExitCode::FAILURE;
    }
    if checked == 0 {
        eprintln!("sentinel: nothing checked (no baselines found in {})", dir.display());
        return ExitCode::FAILURE;
    }
    println!("sentinel: {checked} artifact(s) within tolerance bands");
    ExitCode::SUCCESS
}
