//! Regenerates the report of experiment `e16_delta`: incremental digest
//! deltas vs full snapshot rebuilds, with byte-addressed caches, over
//! 64/128/256-proxy peer meshes.
//!
//! Pass `--smoke` for the reduced request budget CI uses to keep the
//! delta path from rotting.

use harness::experiments::e16_delta;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = if smoke {
        e16_delta::render_with(e16_delta::SMOKE_TOTAL_REQUESTS)
    } else {
        e16_delta::render()
    };
    print!("{report}");
}
