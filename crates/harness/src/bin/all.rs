//! Runs every experiment (E1–E18) and writes the reports under `results/`.
//!
//! ```text
//! cargo run --release -p harness --bin all
//! ```

use std::fs;
use std::time::Instant;

type Experiment = (&'static str, fn() -> String);

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".to_string());
    fs::create_dir_all(&out_dir)?;
    let experiments: Vec<Experiment> = vec![
        ("e1_fig1", harness::experiments::e1_fig1::render),
        ("e2_fig2", harness::experiments::e2_fig2::render),
        ("e3_fig3", harness::experiments::e3_fig3::render),
        ("e4_modelb", harness::experiments::e4_modelb::render),
        ("e5_compare", harness::experiments::e5_compare::render),
        ("e6_estimate", harness::experiments::e6_estimate::render),
        ("e7_validate", harness::experiments::e7_validate::render),
        ("e8_endtoend", harness::experiments::e8_endtoend::render),
        ("e9_impedance", harness::experiments::e9_impedance::render),
        ("e10_ablation", harness::experiments::e10_ablation::render),
        ("e11_wireless", harness::experiments::e11_wireless::render),
        ("e12_caches", harness::experiments::e12_caches::render),
        ("e13_cluster", harness::experiments::e13_cluster::render),
        ("e14_coop", harness::experiments::e14_coop::render),
        ("e15_scale", harness::experiments::e15_scale::render),
        ("e16_delta", harness::experiments::e16_delta::render),
        ("e17_shard", harness::experiments::e17_shard::render),
        ("e18_obs", harness::experiments::e18_obs::render),
    ];
    for (name, render) in experiments {
        let start = Instant::now();
        let report = render();
        let path = format!("{out_dir}/{name}.txt");
        fs::write(&path, &report)?;
        println!(
            "wrote {path} ({} lines, {:.1}s)",
            report.lines().count(),
            start.elapsed().as_secs_f64()
        );
    }
    println!("done — see {out_dir}/");
    Ok(())
}
