//! Regenerates the report of experiment `e13_cluster`: speculative
//! prefetching across a multi-node network of queues.
//!
//! Pass `--smoke` for the reduced problem size CI uses to keep this
//! binary from rotting.

use harness::experiments::e13_cluster;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = if smoke {
        e13_cluster::render_with(e13_cluster::SMOKE_REQUESTS, e13_cluster::SMOKE_WARMUP)
    } else {
        e13_cluster::render()
    };
    print!("{report}");
}
