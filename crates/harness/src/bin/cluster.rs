//! Regenerates the report of experiment `e13_cluster`: speculative
//! prefetching across a multi-node network of queues.
fn main() {
    print!("{}", harness::experiments::e13_cluster::render());
}
