//! Regenerates the report of experiment `e22_chaos`: deterministic fault
//! injection on the cooperative mesh — link loss × prefetch
//! aggressiveness, retries vs no retries, plus a full-repertoire chaos
//! showcase (flaps, degrade, brownout, blackout, crash, digest loss).
//! Writes the `e22_chaos` section of `OBS_cluster.json`.
//!
//! Flags:
//! * `--smoke` — the reduced 4-proxy sweep CI runs on every push
//! * `--check [path]` — no simulation: schema-check an existing artifact
//!   (default `OBS_cluster.json`), exiting nonzero unless the `e22_chaos`
//!   section carries the per-cell rows, the showcase counters, and all
//!   four headline booleans — zero-fault bit-identity, graceful
//!   degradation with retries, collapse without, MSHR conservation — are
//!   true.

use harness::artifact::{self, OBS_ARTIFACT};
use harness::experiments::e22_chaos;
use simcore::Json;
use std::path::Path;
use std::process::ExitCode;

/// Validates the `e22_chaos` section's shape (empty = ok).
fn schema_errors(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut require = |what: &str, ok: bool| {
        if !ok {
            errs.push(what.to_string());
        }
    };
    let Some(e22) = doc.get("sections").and_then(|s| s.get("e22_chaos")) else {
        return vec!["sections.e22_chaos".to_string()];
    };
    let cells_ok = e22.get("cells").and_then(Json::as_arr).is_some_and(|rows| {
        !rows.is_empty()
            && rows.iter().all(|r| {
                r.get("policy").and_then(Json::as_str).is_some()
                    && [
                        "loss",
                        "availability",
                        "availability_no_retries",
                        "mean_access_time",
                        "retries",
                        "timeouts",
                        "failed_fetches",
                    ]
                    .iter()
                    .all(|k| r.get(k).and_then(Json::as_f64).is_some())
            })
    });
    require("e22_chaos.cells[]: one full row per (loss, policy) cell", cells_ok);
    let showcase_ok = e22.get("showcase").is_some_and(|s| {
        ["availability", "lost_entries", "failovers", "snapshot_flushes"]
            .iter()
            .all(|k| s.get(k).and_then(Json::as_f64).is_some())
    });
    require("e22_chaos.showcase: availability + recovery counters", showcase_ok);
    require(
        "e22_chaos.prefetch_amplification: number",
        e22.get("prefetch_amplification").and_then(Json::as_f64).is_some(),
    );
    for (key, what) in [
        ("zero_fault_identical", "loss-0 runs bit-identical to the plain engine"),
        ("graceful_with_retries", "retries degrade gracefully"),
        ("collapse_without_retries", "no-retries collapses at max loss"),
        ("mshr_conservation_ok", "MSHR conservation law holds everywhere"),
    ] {
        require(
            &format!("e22_chaos.{key}: true ({what})"),
            e22.get(key) == Some(&Json::Bool(true)),
        );
    }
    errs
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("chaos --check: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let errs = schema_errors(&doc);
    if errs.is_empty() {
        println!("chaos --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("chaos --check: {} missing/invalid: {e}", path.display());
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map_or(OBS_ARTIFACT, String::as_str);
        return check(Path::new(path));
    }
    let (n, shards, requests) =
        if args.iter().any(|a| a == "--smoke") { e22_chaos::SMOKE } else { e22_chaos::FULL };
    let (report, section) = e22_chaos::render_with(n, shards, requests);
    print!("{report}");
    let path = Path::new(OBS_ARTIFACT);
    if let Err(e) = artifact::write_section(path, "e22_chaos", section) {
        eprintln!("e22: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("e22: wrote section e22_chaos of {}", path.display());
    ExitCode::SUCCESS
}
