//! Regenerates the report of experiment `e20_delayed`: the MSHR
//! outstanding-fetch table's coalescing win and the aggregate-delay
//! ranking inversion, swept over fetch latency × offered load. Writes the
//! `e20_delayed` section of `OBS_cluster.json`.
//!
//! Flags:
//! * `--smoke` — the reduced 4-proxy/2-shard grid CI runs on every push
//! * `--check [path]` — no simulation: schema-check an existing artifact
//!   (default `OBS_cluster.json`), exiting nonzero unless the
//!   `e20_delayed` section carries the sweep cells and both headline
//!   booleans the acceptance criteria name are true.

use harness::artifact::{self, OBS_ARTIFACT};
use harness::experiments::e20_delayed;
use simcore::Json;
use std::path::Path;
use std::process::ExitCode;

/// Validates the `e20_delayed` section's shape (empty = ok).
fn schema_errors(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut require = |what: &str, ok: bool| {
        if !ok {
            errs.push(what.to_string());
        }
    };
    let Some(e20) = doc.get("sections").and_then(|s| s.get("e20_delayed")) else {
        return vec!["sections.e20_delayed".to_string()];
    };
    let cells_ok = e20.get("cells").and_then(Json::as_arr).is_some_and(|cells| {
        !cells.is_empty()
            && cells.iter().all(|c| {
                [
                    "latency",
                    "load",
                    "origin_fetches_independent",
                    "origin_fetches_coalescing",
                    "coalesced_requests",
                    "delayed_hits",
                    "mean_waiter_depth",
                    "mean_residual_wait",
                    "mean_access_time_recency",
                    "mean_access_time_ranked",
                ]
                .iter()
                .all(|k| c.get(k).and_then(Json::as_f64).is_some())
            })
    });
    require("e20_delayed.cells[]: full sweep rows", cells_ok);
    require(
        "e20_delayed.coalescing_win: true (fewer origin fetches + delayed hits settled)",
        e20.get("coalescing_win") == Some(&Json::Bool(true)),
    );
    require(
        "e20_delayed.ranking_win: true (aggregate-delay t̄ beats recency in the pinned cell)",
        e20.get("ranking_win") == Some(&Json::Bool(true)),
    );
    errs
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("delayed --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("delayed --check: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let errs = schema_errors(&doc);
    if errs.is_empty() {
        println!("delayed --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("delayed --check: {} missing/invalid: {e}", path.display());
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map_or(OBS_ARTIFACT, String::as_str);
        return check(Path::new(path));
    }
    let (n, shards, total) =
        if args.iter().any(|a| a == "--smoke") { e20_delayed::SMOKE } else { e20_delayed::FULL };
    let (report, section) = e20_delayed::render_with(n, shards, total);
    print!("{report}");
    let path = Path::new(OBS_ARTIFACT);
    if let Err(e) = artifact::write_section(path, "e20_delayed", section) {
        eprintln!("e20: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("e20: wrote section e20_delayed of {}", path.display());
    ExitCode::SUCCESS
}
