//! Regenerates the report of experiment `e14_coop`: cooperative edge
//! caching and request routing across the cluster.
//!
//! Pass `--smoke` for the reduced problem size CI uses to keep this
//! binary from rotting.

use harness::experiments::e14_coop;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let report = if smoke {
        e14_coop::render_with(e14_coop::SMOKE_REQUESTS, e14_coop::SMOKE_WARMUP)
    } else {
        e14_coop::render()
    };
    print!("{report}");
}
