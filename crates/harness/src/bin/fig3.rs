//! Regenerates the report of experiment `e3_fig3` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e3_fig3::render());
}
