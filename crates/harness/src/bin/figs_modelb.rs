//! Regenerates the report of experiment `e4_modelb` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e4_modelb::render());
}
