//! Regenerates the report of experiment `e9_impedance` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e9_impedance::render());
}
