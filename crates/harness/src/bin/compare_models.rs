//! Regenerates the report of experiment `e5_compare` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e5_compare::render());
}
