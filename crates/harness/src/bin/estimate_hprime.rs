//! Regenerates the report of experiment `e6_estimate` (see DESIGN.md).
fn main() {
    print!("{}", harness::experiments::e6_estimate::render());
}
