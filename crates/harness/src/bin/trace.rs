//! Regenerates the report of experiment `e19_trace`: span-based causal
//! tracing over the E18 cooperative mesh — per-class latency attribution,
//! the top-K slowest traces, and the conservation residual. Writes the
//! `e19_trace` section of `OBS_cluster.json` and exports the full span
//! set as Chrome trace-event JSON (`TRACE_cluster.json`).
//!
//! Flags:
//! * `--smoke` — the reduced 8-proxy/2-shard fabric CI runs on every push
//! * `--check [path]` — no simulation: schema-check an existing artifact
//!   (default `OBS_cluster.json`), exiting nonzero if the `e19_trace`
//!   section is missing the fields the acceptance criteria name.

use harness::artifact::{self, OBS_ARTIFACT, TRACE_ARTIFACT};
use harness::experiments::e19_trace;
use simcore::Json;
use std::path::Path;
use std::process::ExitCode;

/// Validates the `e19_trace` section's shape (empty = ok).
fn schema_errors(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut require = |what: &str, ok: bool| {
        if !ok {
            errs.push(what.to_string());
        }
    };
    let Some(e19) = doc.get("sections").and_then(|s| s.get("e19_trace")) else {
        return vec!["sections.e19_trace".to_string()];
    };
    require(
        "e19_trace.sample_every: number >= 1",
        e19.get("sample_every").and_then(Json::as_f64).is_some_and(|v| v >= 1.0),
    );
    require(
        "e19_trace.traces: positive count",
        e19.get("traces").and_then(Json::as_f64).is_some_and(|v| v > 0.0),
    );
    require(
        "e19_trace.max_residual: <= 1e-9 (segments tile latency)",
        e19.get("max_residual").and_then(Json::as_f64).is_some_and(|v| v <= 1e-9),
    );
    // Per-class attribution with bucket breakdowns.
    let classes_ok = e19.get("classes").and_then(Json::as_obj).is_some_and(|cs| {
        !cs.is_empty()
            && cs.iter().all(|(_, c)| {
                c.get("traces").and_then(Json::as_f64).is_some()
                    && c.get("mean_latency").and_then(Json::as_f64).is_some()
                    && c.get("buckets").is_some()
            })
    });
    require("e19_trace.classes: per-class attribution rows", classes_ok);
    // The slow-trace exemplars E18's --top-k view and the dashboards use.
    let slowest_ok = e19.get("slowest").and_then(Json::as_arr).is_some_and(|rows| {
        !rows.is_empty()
            && rows.iter().all(|r| {
                r.get("latency").and_then(Json::as_f64).is_some()
                    && r.get("dominant").and_then(Json::as_str).is_some()
            })
    });
    require("e19_trace.slowest[]: latency + dominant bucket per trace", slowest_ok);
    errs
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace --check: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let errs = schema_errors(&doc);
    if errs.is_empty() {
        println!("trace --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("trace --check: {} missing/invalid: {e}", path.display());
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map_or(OBS_ARTIFACT, String::as_str);
        return check(Path::new(path));
    }
    let (n, shards, total, every) =
        if args.iter().any(|a| a == "--smoke") { e19_trace::SMOKE } else { e19_trace::FULL };
    let (report, section, chrome) = e19_trace::render_with(n, shards, total, every);
    print!("{report}");
    let path = Path::new(OBS_ARTIFACT);
    if let Err(e) = artifact::write_section(path, "e19_trace", section) {
        eprintln!("e19: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("e19: wrote section e19_trace of {}", path.display());
    if let Err(e) = std::fs::write(TRACE_ARTIFACT, chrome.render()) {
        eprintln!("e19: could not write {TRACE_ARTIFACT}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("e19: wrote {TRACE_ARTIFACT} (Chrome trace-event format)");
    ExitCode::SUCCESS
}
