//! Regenerates the report of experiment `e21_replay`: record a synthetic
//! run to a versioned `.events` trace, scale it by superposition, and
//! replay it through bigger meshes with chunked streaming. Writes the
//! `e21_replay` section of `OBS_cluster.json` and the recorded sample to
//! `E21_trace_sample.events` (uploaded as a CI artifact).
//!
//! Flags:
//! * `--smoke` — the reduced 2-proxy capture CI runs on every push
//! * `--check [path]` — no simulation: schema-check an existing artifact
//!   (default `OBS_cluster.json`), exiting nonzero unless the
//!   `e21_replay` section carries the per-scale rows and both headline
//!   booleans — bit-identical ×1 replay, chunk-bounded memory — are true.

use harness::artifact::{self, OBS_ARTIFACT};
use harness::experiments::e21_replay;
use simcore::Json;
use std::path::Path;
use std::process::ExitCode;

/// Validates the `e21_replay` section's shape (empty = ok).
fn schema_errors(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut require = |what: &str, ok: bool| {
        if !ok {
            errs.push(what.to_string());
        }
    };
    let Some(e21) = doc.get("sections").and_then(|s| s.get("e21_replay")) else {
        return vec!["sections.e21_replay".to_string()];
    };
    let source_ok = e21.get("source").is_some_and(|s| {
        ["records", "hit_ratio", "backbone_utilisation"]
            .iter()
            .all(|k| s.get(k).and_then(Json::as_f64).is_some())
    });
    require("e21_replay.source: records + hit ratio + backbone load", source_ok);
    let scales_ok = e21.get("scales").and_then(Json::as_arr).is_some_and(|rows| {
        !rows.is_empty()
            && rows.iter().all(|r| {
                [
                    "scale",
                    "n_proxies",
                    "records_replayed",
                    "records_per_sec",
                    "peak_resident_bytes",
                    "hit_ratio",
                    "hit_ratio_delta",
                    "backbone_utilisation",
                    "network_load_delta",
                ]
                .iter()
                .all(|k| r.get(k).and_then(Json::as_f64).is_some())
            })
    });
    require("e21_replay.scales[]: one full row per superposition factor", scales_ok);
    require(
        "e21_replay.replay_bit_identical: true (x1 replay reproduces the recorded run)",
        e21.get("replay_bit_identical") == Some(&Json::Bool(true)),
    );
    require(
        "e21_replay.peak_resident_ok: true (streams never exceed one chunk resident)",
        e21.get("peak_resident_ok") == Some(&Json::Bool(true)),
    );
    errs
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("replay --check: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let errs = schema_errors(&doc);
    if errs.is_empty() {
        println!("replay --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("replay --check: {} missing/invalid: {e}", path.display());
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map_or(OBS_ARTIFACT, String::as_str);
        return check(Path::new(path));
    }
    let (n, shards, total) =
        if args.iter().any(|a| a == "--smoke") { e21_replay::SMOKE } else { e21_replay::FULL };
    let (report, section) = e21_replay::render_with(n, shards, total);
    print!("{report}");
    let path = Path::new(OBS_ARTIFACT);
    if let Err(e) = artifact::write_section(path, "e21_replay", section) {
        eprintln!("e21: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("e21: wrote section e21_replay of {}", path.display());
    ExitCode::SUCCESS
}
