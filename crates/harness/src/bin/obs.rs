//! Regenerates the report of experiment `e18_obs`: the observability
//! layer (metrics registry, epoch-grid probes, latency histogram, sharded
//! driver profiler, flight recorder) over a 64-proxy cooperative latency
//! mesh, and writes the telemetry to the `e18_obs` section of
//! `OBS_cluster.json`.
//!
//! Flags:
//! * `--smoke` — the reduced 16-proxy/2-shard fabric CI runs on every push
//! * `--top-k <N>` — also trace every request and append the N slowest
//!   traces (E19's view) to the dashboard
//! * `--check [path]` — no simulation: schema-check an existing artifact
//!   (default `OBS_cluster.json`), exiting nonzero if it is malformed or
//!   missing the fields the acceptance criteria name — the CI gate that
//!   fails the build on a broken artifact.

use harness::artifact::{self, OBS_ARTIFACT};
use harness::experiments::e18_obs;
use simcore::Json;
use std::path::Path;
use std::process::ExitCode;

/// Validates the artifact's shape; returns the errors found (empty = ok).
fn schema_errors(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut require = |what: &str, ok: bool| {
        if !ok {
            errs.push(what.to_string());
        }
    };
    require("artifact == \"OBS_cluster\"", {
        doc.get("artifact").and_then(Json::as_str) == Some("OBS_cluster")
    });
    let Some(e18) = doc.get("sections").and_then(|s| s.get("e18_obs")) else {
        errs.push("sections.e18_obs".to_string());
        return errs;
    };
    // Per-link utilization time-series.
    let series_ok =
        e18.get("link_util").and_then(|u| u.get("series")).and_then(Json::as_obj).is_some_and(
            |links| {
                !links.is_empty()
                    && links.iter().all(|(_, pts)| {
                        pts.as_arr().is_some_and(|a| a.iter().all(|p| p.as_f64().is_some()))
                    })
            },
        );
    require("e18_obs.link_util.series: nonempty map of numeric arrays", series_ok);
    // Latency percentiles.
    for q in ["p50", "p90", "p99"] {
        require(
            &format!("e18_obs.latency.{q}: finite number"),
            e18.get("latency").and_then(|l| l.get(q)).and_then(Json::as_f64).is_some(),
        );
    }
    // Per-shard profiler rows with barrier-wait and mailbox stats.
    let profiles_ok = e18.get("profiles").and_then(Json::as_arr).is_some_and(|rows| {
        !rows.is_empty()
            && rows.iter().all(|p| {
                p.get("barrier_wall_secs").and_then(|b| b.get("mean")).is_some()
                    && p.get("mailbox_hwm").and_then(Json::as_f64).is_some()
                    && p.get("mailbox_drains").and_then(Json::as_f64).is_some()
            })
    });
    require("e18_obs.profiles[]: barrier_wall_secs + mailbox stats per shard", profiles_ok);
    require(
        "e18_obs.preds_per_sec: number",
        e18.get("preds_per_sec").and_then(Json::as_f64).is_some(),
    );
    errs
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs --check: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs --check: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let errs = schema_errors(&doc);
    if errs.is_empty() {
        println!("obs --check: {} ok", path.display());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("obs --check: {} missing/invalid: {e}", path.display());
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map_or(OBS_ARTIFACT, String::as_str);
        return check(Path::new(path));
    }
    let (n, shards, total) =
        if args.iter().any(|a| a == "--smoke") { e18_obs::SMOKE } else { e18_obs::FULL };
    let top_k = args
        .iter()
        .position(|a| a == "--top-k")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let (report, section) = match top_k {
        Some(k) => e18_obs::render_with_top_k(n, shards, total, k),
        None => e18_obs::render_with(n, shards, total),
    };
    print!("{report}");
    let path = Path::new(OBS_ARTIFACT);
    match artifact::write_section(path, "e18_obs", section) {
        Ok(()) => eprintln!("e18: wrote section e18_obs of {}", path.display()),
        Err(e) => {
            eprintln!("e18: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
