//! # harness — regenerates every figure of the paper, plus validation
//!
//! One binary per experiment (run with `--release`):
//!
//! | Binary | Paper artefact | Experiment |
//! |--------|----------------|------------|
//! | `fig1` | Figure 1 | E1: `p_th` vs `s̄` for `b ∈ {50..450}`, panels `h′∈{0,0.3}` |
//! | `fig2` | Figure 2 | E2: `G` vs `n̄(F)` for `p ∈ {0.1..0.9}` |
//! | `fig3` | Figure 3 | E3: `C` vs `n̄(F)` for `p ∈ {0.1..0.9}` |
//! | `figs_modelb` | (derived) | E4: Model-B analogues of Figs 1–3 |
//! | `compare_models` | §6 | E5: A vs AB vs B convergence |
//! | `estimate_hprime` | §4 | E6: tagged-entry `ĥ′` vs twin-cache truth |
//! | `validate` | (derived) | E7: DES measurements vs eqs (5),(10),(11),(27) |
//! | `endtoend` | §1 motivation | E8: policies × predictors on the proxy workload |
//! | `impedance` | §5 | E9: same prefetch volume under rising load |
//! | `ablation` | §2.1 | E10: RR→PS convergence; PS insensitivity vs FIFO |
//! | `wireless` | (derived) | E11: time-varying wireless channel |
//! | `cache_policies` | (derived) | E12: measured `h′` by replacement policy |
//! | `cluster` | title | E13: multi-node network-of-queues prefetching |
//! | `coop` | (derived) | E14: cooperative edge caching over peer meshes |
//! | `scale` | (derived) | E15: wide fabrics on the indexed scheduler |
//! | `delta` | (derived) | E16: digest deltas + byte-addressed caches |
//! | `shard` | (derived) | E17: strong scaling of the sharded engine |
//! | `obs` | (derived) | E18: observability dashboard + `OBS_cluster.json` (`--top-k N` appends the slowest-traces view) |
//! | `trace` | (derived) | E19: causal tracing — latency attribution, top-K slowest traces, `TRACE_cluster.json` |
//! | `delayed` | (derived) | E20: delayed hits — MSHR coalescing win + aggregate-delay ranking inversion |
//! | `replay` | (derived) | E21: streaming trace replay — record to `.events`, scale by superposition, replay bit-identically |
//! | `sentinel` | — | regression gate: diffs `OBS_cluster.json`/`BENCH_cluster.json` against `baselines/` |
//! | `all` | — | runs everything, writes `results/*.txt` |
//!
//! The library half provides plain-text tables ([`report::Table`]), terminal
//! line plots ([`asciiplot::Chart`] and [`asciiplot::sparkline`]) and the
//! experiment implementations themselves (under [`experiments`]), so
//! integration tests and benches can call them directly. E17 and E18 also
//! write machine-readable sections into `OBS_cluster.json` (see
//! [`artifact`]), the observability twin of the bench shim's
//! `BENCH_cluster.json`.

pub mod artifact;
pub mod asciiplot;
pub mod experiments;
pub mod report;
pub mod sentinel;
pub mod sweep;

/// Formats an optional quantity, rendering instability as the paper's
/// figures do (the curve leaves the plot).
pub fn fmt_opt(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "unstable".to_string(),
    }
}

/// Relative error |measured − predicted| / |predicted| (NaN-safe).
pub fn rel_err(measured: f64, predicted: f64) -> f64 {
    if predicted == 0.0 {
        measured.abs()
    } else {
        (measured - predicted).abs() / predicted.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_opt_renders_both_cases() {
        assert_eq!(fmt_opt(Some(0.123456), 3), "0.123");
        assert_eq!(fmt_opt(None, 3), "unstable");
    }

    #[test]
    fn rel_err_basics() {
        assert!((rel_err(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(0.5, 0.0), 0.5);
    }
}
