//! E10 — ablation of the server-discipline assumption (paper §2.1).
//!
//! The paper says "M/G/1 round-robin" and then analyses processor sharing.
//! Two checks justify the shortcut:
//!
//! 1. an explicit round-robin quantum server converges to PS as the
//!    quantum shrinks;
//! 2. PS is insensitive to the size distribution (only `s̄` matters —
//!    which is why the analysis can treat `s̄` as a scalar), whereas FIFO
//!    is not: under FIFO, heavy-tailed sizes would invalidate eq (2)
//!    entirely.

use crate::report::{f, Table};
use queueing::driver::measure_mg1;
use queueing::theory::{MG1Fifo, MG1Ps};
use queueing::{FifoServer, PsServer, RrServer};
use simcore::dist::{Deterministic, Exponential, Pareto, Sample};
use simcore::rng::Rng;

/// RR→PS convergence: `(quantum, measured mean response)` with the PS
/// prediction attached.
pub fn rr_convergence(jobs: usize, seed: u64) -> (Vec<(f64, f64)>, f64, f64) {
    let lambda = 0.6;
    let ps_theory = MG1Ps::new(lambda, 1.0, 1.0).mean_response().unwrap();
    let fifo_theory = MG1Fifo::new(lambda, 1.0, 1.0).mean_response().unwrap(); // M/D/1
    let mut rows = Vec::new();
    for &quantum in &[10.0, 1.0, 0.25, 0.05, 0.01] {
        let mut rng = Rng::new(seed);
        let mut server = RrServer::new(1.0, quantum);
        let stats =
            measure_mg1(&mut server, lambda, &Deterministic(1.0), jobs, jobs / 10, &mut rng);
        rows.push((quantum, stats.mean_response));
    }
    (rows, ps_theory, fifo_theory)
}

/// Insensitivity: mean response of PS vs FIFO under three size laws with
/// the same mean. Returns rows of `(label, ps_measured, fifo_measured)`.
pub fn insensitivity(jobs: usize, seed: u64) -> Vec<(String, f64, f64)> {
    let lambda = 0.5;
    let dists: Vec<(String, Box<dyn Sample>)> = vec![
        ("deterministic(1)".into(), Box::new(Deterministic(1.0))),
        ("exponential(mean 1)".into(), Box::new(Exponential::with_mean(1.0))),
        ("pareto(2.2, mean 1)".into(), Box::new(Pareto::with_mean(1.0, 2.2))),
    ];
    dists
        .into_iter()
        .map(|(label, dist)| {
            let mut rng = Rng::new(seed);
            let mut ps = PsServer::new(1.0);
            let ps_m = measure_mg1(&mut ps, lambda, dist.as_ref(), jobs, jobs / 10, &mut rng);
            let mut rng = Rng::new(seed);
            let mut fifo = FifoServer::new(1.0);
            let fifo_m = measure_mg1(&mut fifo, lambda, dist.as_ref(), jobs, jobs / 10, &mut rng);
            (label, ps_m.mean_response, fifo_m.mean_response)
        })
        .collect()
}

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E10 — server-discipline ablation (paper §2.1)\n\n");

    let (rows, ps_theory, fifo_theory) = rr_convergence(100_000, 1010);
    let mut table = Table::new(
        format!(
            "Round-robin -> PS convergence (M/D/1, rho=0.6; PS predicts {ps_theory:.3}, FIFO {fifo_theory:.3})"
        ),
        &["quantum", "measured E[T]", "gap to PS"],
    );
    for &(q, t) in &rows {
        table.row(vec![f(q, 2), f(t, 4), format!("{:+.1}%", 100.0 * (t - ps_theory) / ps_theory)]);
    }
    out.push_str(&table.render());
    out.push('\n');

    let rows = insensitivity(100_000, 2020);
    let ps_pred = MG1Ps::new(0.5, 1.0, 1.0).mean_response().unwrap();
    let mut table = Table::new(
        format!("PS insensitivity vs FIFO sensitivity (rho = 0.5; PS predicts {ps_pred:.3} for ALL rows)"),
        &["size law", "PS E[T]", "FIFO E[T]"],
    );
    for (label, ps, fifo) in &rows {
        table.row(vec![label.clone(), f(*ps, 4), f(*fifo, 4)]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPS response depends only on the mean size — the property the paper's\n\
         entire analysis leans on. FIFO spreads by a factor of several between\n\
         deterministic and heavy-tailed sizes at the same mean.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_error_shrinks_monotonically() {
        let (rows, ps_theory, _) = rr_convergence(40_000, 11);
        let errs: Vec<f64> = rows.iter().map(|(_, t)| (t - ps_theory).abs()).collect();
        assert!(errs.last().unwrap() < &errs[0]);
        assert!(errs.last().unwrap() / ps_theory < 0.05);
    }

    #[test]
    fn big_quantum_looks_like_fifo() {
        let (rows, _, fifo_theory) = rr_convergence(40_000, 13);
        let (_, t_big) = rows[0];
        assert!((t_big - fifo_theory).abs() / fifo_theory < 0.1);
    }

    #[test]
    fn ps_rows_agree_fifo_rows_spread() {
        let rows = insensitivity(40_000, 17);
        let ps: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let fifo: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let ps_spread = (ps.iter().cloned().fold(f64::MIN, f64::max)
            - ps.iter().cloned().fold(f64::MAX, f64::min))
            / ps[0];
        let fifo_spread = (fifo.iter().cloned().fold(f64::MIN, f64::max)
            - fifo.iter().cloned().fold(f64::MAX, f64::min))
            / fifo[0];
        assert!(ps_spread < 0.15, "PS spread {ps_spread}");
        assert!(fifo_spread > 0.4, "FIFO spread {fifo_spread}");
    }
}
