//! E20 — delayed hits: the MSHR table's coalescing win and the
//! aggregate-delay ranking inversion.
//!
//! At backbone latencies a miss's fetch window spans many later requests,
//! so "miss" stops being a binary: requests for in-flight keys are
//! **delayed hits** that ride the outstanding fetch (Atre et al., SIGCOMM
//! 2020). This experiment sweeps fetch latency × offered load over an
//! adaptive proxy mesh and, per cell, runs three configurations of the
//! same workload at the same seed:
//!
//! * **independent** — every miss fetches from the origin
//!   (`DelayedHitsConfig { coalesce: false }`), the pre-MSHR baseline;
//! * **coalescing** — misses on in-flight keys join the entry's FIFO
//!   waiter queue (the default table);
//! * **ranked** — coalescing plus aggregate-delay eviction: keys are
//!   valued by the total waiting their fetches have caused, so the cache
//!   keeps the keys whose absence hurts most, not the most recent ones.
//!
//! The report shows the two headline effects the acceptance criteria pin:
//!
//! 1. **Coalescing win** — at high fetch latency and equal load, the
//!    coalescing table launches *strictly fewer* origin fetches than the
//!    independent baseline (each waiter join is a transfer avoided);
//! 2. **Ranking inversion** — aggregate-delay eviction beats plain
//!    recency on mean access time once fetch windows are long enough for
//!    delayed hits to dominate; below the crossover, recency wins the
//!    cell and the gain column goes negative. The sign flip along the
//!    latency axis is the inversion.
//!
//! Everything on stdout is virtual-time deterministic; the same cells
//! land in the `e20_delayed` section of `OBS_cluster.json` for the
//! regression sentinel.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim, DelayedHitsConfig,
    ProxyPolicy, RankingMode, Topology, Workload,
};
use simcore::Json;
use workload::synth_web::SynthWebConfig;

const SEED: u64 = 20;

/// Base per-proxy request rate; cells scale it by their load factor.
const LAMBDA: f64 = 24.0;

/// Fetch-latency sweep (seconds of propagation on every link). The last
/// value is the **pinned cell** the win assertions run against.
pub const LATENCIES: [f64; 3] = [0.01, 0.16, 1.28];

/// Offered-load sweep (multiplier on the base per-proxy rate).
pub const LOADS: [f64; 2] = [1.0, 1.25];

/// Full sweep: 8 proxies, 4 shards, 3 latencies × 2 loads.
pub const FULL: (usize, usize, usize) = (8, 4, 24_000);

/// Reduced CI sweep (`--smoke`): 4 proxies at 2 shards — still through
/// the windowed driver, still covering the full grid.
pub const SMOKE: (usize, usize, usize) = (4, 2, 6_000);

/// The adaptive mesh one cell simulates: a slow, latency-bearing backbone
/// shared by heterogeneous proxies, item universes small enough that
/// fetch windows overlap repeat requests.
pub fn config(
    n_proxies: usize,
    total_requests: usize,
    latency: f64,
    load: f64,
    delayed: DelayedHitsConfig,
) -> ClusterConfig<'static> {
    let requests = (total_requests / n_proxies).max(60);
    ClusterConfig {
        topology: Topology::mesh_with_latency(
            n_proxies,
            60.0,
            20.0 * n_proxies as f64,
            45.0,
            latency,
        ),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: (0..n_proxies)
                .map(|i| SynthWebConfig {
                    lambda: load * (LAMBDA + 4.0 * (i % 4) as f64),
                    n_items: 160,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 24,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed,
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

/// One sweep cell: the three configurations' reports at equal seed/load.
pub struct Cell {
    pub latency: f64,
    pub load: f64,
    pub independent: ClusterReport,
    pub coalescing: ClusterReport,
    pub ranked: ClusterReport,
}

impl Cell {
    pub fn run(n_proxies: usize, shards: usize, total: usize, latency: f64, load: f64) -> Cell {
        let run = |delayed: DelayedHitsConfig| {
            let config = config(n_proxies, total, latency, load, delayed);
            ClusterSim::new(&config).run_sharded(SEED, shards)
        };
        Cell {
            latency,
            load,
            independent: run(DelayedHitsConfig { coalesce: false, ..Default::default() }),
            coalescing: run(DelayedHitsConfig::default()),
            ranked: run(DelayedHitsConfig {
                ranking: RankingMode::AggregateDelay,
                ..Default::default()
            }),
        }
    }

    /// Origin fetches the coalescing table avoided, as a fraction of the
    /// independent baseline's.
    pub fn fetches_saved(&self) -> f64 {
        let base = self.independent.origin_fetches();
        if base == 0 {
            return 0.0;
        }
        1.0 - self.coalescing.origin_fetches() as f64 / base as f64
    }

    /// Mean-access-time advantage of aggregate-delay ranking over recency
    /// (positive = ranking wins).
    pub fn ranking_gain(&self) -> f64 {
        let recency = self.coalescing.mean_access_time;
        if recency == 0.0 {
            return 0.0;
        }
        1.0 - self.ranked.mean_access_time / recency
    }
}

/// Runs the full latency × load grid.
pub fn run_grid(n_proxies: usize, shards: usize, total: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &latency in &LATENCIES {
        for &load in &LOADS {
            cells.push(Cell::run(n_proxies, shards, total, latency, load));
        }
    }
    cells
}

/// Full-size report.
pub fn render() -> String {
    let (n, shards, total) = FULL;
    render_with(n, shards, total).0
}

/// Reduced CI report.
pub fn render_smoke() -> String {
    let (n, shards, total) = SMOKE;
    render_with(n, shards, total).0
}

fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Runs one sweep; returns the report text and the `e20_delayed` artifact
/// section.
pub fn render_with(n_proxies: usize, shards: usize, total: usize) -> (String, Json) {
    let t0 = std::time::Instant::now();
    let cells = run_grid(n_proxies, shards, total);

    let mut out = String::new();
    out.push_str("# E20 — delayed hits: MSHR coalescing and aggregate-delay ranking\n");
    out.push_str(&format!(
        "# {n_proxies}-proxy adaptive mesh, {shards} shard(s), {} requests/proxy per run\n\
         # per cell, three runs at equal seed and load: independent misses,\n\
         # coalescing MSHR table, coalescing + aggregate-delay eviction\n\n",
        (total / n_proxies).max(60)
    ));

    let mut coalesce_table = Table::new(
        "Coalescing win (origin fetches avoided by the MSHR table)",
        &[
            "latency",
            "load",
            "fetch indep",
            "fetch mshr",
            "saved",
            "coalesced",
            "delayed hits",
            "waiter depth",
            "residual wait",
        ],
    );
    for c in &cells {
        coalesce_table.row(vec![
            f(c.latency, 3),
            f(c.load, 2),
            c.independent.origin_fetches().to_string(),
            c.coalescing.origin_fetches().to_string(),
            pct(c.fetches_saved()),
            c.coalescing.coalesced_requests().to_string(),
            c.coalescing.delayed_hits().to_string(),
            c.coalescing.mean_waiter_depth().map_or("-".into(), |d| f(d, 3)),
            c.coalescing.mean_residual_wait().map_or("-".into(), |w| f(w, 5)),
        ]);
    }
    out.push_str(&coalesce_table.render());

    let mut ranking_table = Table::new(
        "Ranking inversion (mean access time: recency vs aggregate delay)",
        &["latency", "load", "t̄ recency", "t̄ agg-delay", "gain", "t̄ independent"],
    );
    for c in &cells {
        ranking_table.row(vec![
            f(c.latency, 3),
            f(c.load, 2),
            f(c.coalescing.mean_access_time, 5),
            f(c.ranked.mean_access_time, 5),
            pct(c.ranking_gain()),
            f(c.independent.mean_access_time, 5),
        ]);
    }
    out.push('\n');
    out.push_str(&ranking_table.render());

    let pinned = pinned_cell(&cells);
    out.push_str(&format!(
        "\nPinned cell (latency {}, load {}): coalescing launches {} origin\n\
         fetches against the baseline's {} ({} saved) and settles {} delayed\n\
         hits; aggregate-delay eviction moves t̄ {} → {} ({}). The coalescing\n\
         win only grows with latency (queueing keeps fetch windows open even\n\
         at the lowest cell), but the ranking gain changes sign: below the\n\
         crossover recency wins, past it the keys whose absence costs the\n\
         most waiting are the ones worth keeping.\n",
        f(pinned.latency, 3),
        f(pinned.load, 2),
        pinned.coalescing.origin_fetches(),
        pinned.independent.origin_fetches(),
        pct(pinned.fetches_saved()),
        pinned.coalescing.delayed_hits(),
        f(pinned.coalescing.mean_access_time, 5),
        f(pinned.ranked.mean_access_time, 5),
        pct(pinned.ranking_gain()),
    ));

    // Wall-clock telemetry stays off stdout, as in E17–E19.
    eprintln!(
        "e20: {} cells × 3 runs on {n_proxies} proxies, {shards} shard(s): {:.2}s wall",
        cells.len(),
        t0.elapsed().as_secs_f64()
    );

    (out, section(&cells, n_proxies, shards))
}

/// The high-latency, base-load cell the win assertions pin.
pub fn pinned_cell(cells: &[Cell]) -> &Cell {
    cells
        .iter()
        .find(|c| c.latency == LATENCIES[LATENCIES.len() - 1] && c.load == LOADS[0])
        .expect("the pinned cell is part of the grid")
}

fn cell_json(c: &Cell) -> Json {
    Json::obj()
        .set("latency", Json::num(c.latency))
        .set("load", Json::num(c.load))
        .set("origin_fetches_independent", Json::num(c.independent.origin_fetches() as f64))
        .set("origin_fetches_coalescing", Json::num(c.coalescing.origin_fetches() as f64))
        .set("coalesced_requests", Json::num(c.coalescing.coalesced_requests() as f64))
        .set("delayed_hits", Json::num(c.coalescing.delayed_hits() as f64))
        .set("mean_waiter_depth", Json::num(c.coalescing.mean_waiter_depth().unwrap_or(0.0)))
        .set("mean_residual_wait", Json::num(c.coalescing.mean_residual_wait().unwrap_or(0.0)))
        .set("mean_access_time_recency", Json::num(c.coalescing.mean_access_time))
        .set("mean_access_time_ranked", Json::num(c.ranked.mean_access_time))
        .set("mean_access_time_independent", Json::num(c.independent.mean_access_time))
}

/// The machine-readable `e20_delayed` section: the sweep cells plus the
/// two headline booleans the schema check gates on.
pub fn section(cells: &[Cell], n_proxies: usize, shards: usize) -> Json {
    let pinned = pinned_cell(cells);
    Json::obj()
        .set("experiment", Json::str("e20_delayed"))
        .set("n_proxies", Json::num(n_proxies as f64))
        .set("shards", Json::num(shards as f64))
        .set("cells", Json::arr(cells.iter().map(cell_json)))
        .set(
            "coalescing_win",
            Json::Bool(
                pinned.coalescing.origin_fetches() < pinned.independent.origin_fetches()
                    && pinned.coalescing.delayed_hits() > 0,
            ),
        )
        .set("ranking_win", Json::Bool(pinned.ranking_gain() > 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pins_both_wins() {
        let (n, shards, total) = SMOKE;
        let cells = run_grid(n, shards, total);
        let pinned = pinned_cell(&cells);
        assert!(
            pinned.coalescing.coalesced_requests() > 0,
            "the pinned cell no longer exercises coalescing"
        );
        assert!(
            pinned.coalescing.origin_fetches() < pinned.independent.origin_fetches(),
            "coalescing must launch strictly fewer origin fetches: {} vs {}",
            pinned.coalescing.origin_fetches(),
            pinned.independent.origin_fetches()
        );
        assert!(
            pinned.ranked.mean_access_time < pinned.coalescing.mean_access_time,
            "aggregate-delay ranking must beat recency in the pinned cell: {} vs {}",
            pinned.ranked.mean_access_time,
            pinned.coalescing.mean_access_time
        );
        // The independent baseline never reports delayed hits.
        assert_eq!(pinned.independent.delayed_hits(), 0);

        let section = section(&cells, n, shards);
        assert_eq!(section.get("coalescing_win"), Some(&Json::Bool(true)));
        assert_eq!(section.get("ranking_win"), Some(&Json::Bool(true)));
        assert_eq!(
            section.get("cells").and_then(Json::as_arr).map(<[Json]>::len),
            Some(LATENCIES.len() * LOADS.len())
        );
    }

    #[test]
    fn smoke_report_is_deterministic() {
        let (n, shards, total) = SMOKE;
        assert_eq!(render_with(n, shards, total).0, render_with(n, shards, total).0);
    }
}
