//! E1 — Figure 1: `p_th` against `s` for several bandwidths, Model A.
//!
//! `p_th(s) = f′λs/b` (eq 13): straight lines through the origin whose
//! slope falls with bandwidth; the `h′ = 0.3` panel scales every line by
//! `f′ = 0.7`. Curves cap at probability 1 (beyond that size nothing is
//! worth prefetching).

use crate::asciiplot::Chart;
use crate::report::{f, Table};
use prefetch_core::sensitivity::threshold_vs_size;

use super::paper;

/// One panel's data: per bandwidth, the `(s, p_th)` polyline (clipped to
/// `p_th ≤ 1` like the paper's axes).
pub fn panel(h_prime: f64, s_points: usize) -> Vec<(f64, Vec<(f64, f64)>)> {
    paper::FIG1_BANDWIDTHS
        .iter()
        .map(|&b| {
            let pts = (0..=s_points)
                .map(|i| {
                    let s = 10.0 * i as f64 / s_points as f64;
                    (s, threshold_vs_size(paper::LAMBDA, b, h_prime, s))
                })
                .collect();
            (b, pts)
        })
        .collect()
}

/// Renders both panels as charts plus a numeric table.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E1 / Figure 1 — threshold p_th vs item size s (Model A)\n");
    out.push_str(&format!("# p_th = f'*lambda*s/b, lambda = {}\n\n", paper::LAMBDA));
    for &h in &paper::H_PRIMES {
        let mut chart = Chart::new(
            format!("Figure 1 panel: lambda = 30, h' = {h}"),
            (0.0, 10.0),
            (0.0, 1.0),
            72,
            20,
        );
        for (b, pts) in panel(h, 80) {
            chart.series(format!("b = {b}"), pts);
        }
        out.push_str(&chart.render());
        out.push('\n');

        let mut table = Table::new(
            format!("p_th at selected sizes (h' = {h})"),
            &["b", "s=1", "s=2", "s=4", "s=6", "s=8", "s=10"],
        );
        for &b in &paper::FIG1_BANDWIDTHS {
            let cells = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
                .iter()
                .map(|&s| {
                    let v = threshold_vs_size(paper::LAMBDA, b, h, s);
                    if v > 1.0 {
                        ">1".to_string()
                    } else {
                        f(v, 3)
                    }
                })
                .collect::<Vec<_>>();
            let mut row = vec![format!("{b}")];
            row.extend(cells);
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_lines_are_linear_through_origin() {
        for (b, pts) in panel(0.0, 10) {
            assert_eq!(pts[0], (0.0, 0.0));
            // Slope constant: p_th(2s) = 2 p_th(s).
            let slope1 = pts[1].1 / pts[1].0;
            let slope5 = pts[5].1 / pts[5].0;
            assert!((slope1 - slope5).abs() < 1e-12, "b={b}");
        }
    }

    #[test]
    fn higher_bandwidth_lower_threshold() {
        let p = panel(0.0, 10);
        for w in p.windows(2) {
            assert!(w[0].1[5].1 > w[1].1[5].1);
        }
    }

    #[test]
    fn h_prime_panel_scales_by_f_prime() {
        let p0 = panel(0.0, 10);
        let p3 = panel(0.3, 10);
        for ((_, a), (_, b)) in p0.iter().zip(&p3) {
            for (pa, pb) in a.iter().zip(b) {
                assert!((pb.1 - 0.7 * pa.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn render_contains_both_panels() {
        let s = render();
        assert!(s.contains("h' = 0"));
        assert!(s.contains("h' = 0.3"));
        assert!(s.contains("b = 450"));
    }
}
