//! E19 — causal request tracing over the E18 fabric.
//!
//! E18's dashboard says how much latency the run paid; this experiment
//! says *where it went*. Spans recorded at the engines' handler seams are
//! merged into per-request traces (`simcore::trace`), each an end-to-end
//! interval tiled by exclusive segments — pending-prefetch stall, link
//! queueing, link service, propagation, in-flight wait, and the wasted
//! peer leg of a digest false hit. The stdout report renders:
//!
//! * the **latency-attribution table** — per request class (hit, demand,
//!   delayed hit, prefetch), how total time divides across the buckets;
//! * the **top-K slowest traces** with their dominant bucket — the
//!   "why was this request slow" view;
//! * a conservation line: the maximum residual between each trace's
//!   segment sum and its measured latency (pinned ≤ 1e-9 relative by
//!   `cluster/tests/trace_parity.rs`).
//!
//! Everything on stdout is virtual-time deterministic. The same data
//! lands machine-readably in the `e19_trace` section of
//! `OBS_cluster.json`, and the full span set exports as Chrome
//! trace-event JSON (`TRACE_cluster.json`, loadable in Perfetto /
//! `chrome://tracing`) for interactive inspection.

use crate::experiments::e18_obs;
use crate::report::{f, Table};
use cluster::{ClusterObs, ClusterReport, ClusterSim};
use simcore::trace::{TraceStore, BUCKETS};
use simcore::Json;

const SEED: u64 = 19;

/// Full sweep: the 32-proxy cooperative mesh at 4 shards, tracing one
/// request in 2.
pub const FULL: (usize, usize, usize, u64) = (32, 4, 12_800, 2);

/// Reduced CI sweep (`--smoke`): 8 proxies at 2 shards, every request
/// traced.
pub const SMOKE: (usize, usize, usize, u64) = (8, 2, 2_400, 1);

/// Slowest-traces rows in the report and the artifact.
pub const TOP_K: usize = 8;

/// One traced run at the given scale.
pub fn run_traced(
    n_proxies: usize,
    shards: usize,
    total: usize,
    every: u64,
) -> (ClusterReport, ClusterObs) {
    let config = e18_obs::config(n_proxies, total);
    let probes = e18_obs::probes().with_trace_every(every);
    ClusterSim::new(&config).run_observed(SEED, shards, &probes)
}

/// Full-size report.
pub fn render() -> String {
    let (n, shards, total, every) = FULL;
    render_with(n, shards, total, every).0
}

/// Reduced CI report.
pub fn render_smoke() -> String {
    let (n, shards, total, every) = SMOKE;
    render_with(n, shards, total, every).0
}

/// Per-class latency attribution: traces, measured share, mean latency,
/// and the fraction of the class's total time in each bucket.
pub fn attribution_table(store: &TraceStore) -> Table {
    let mut cols: Vec<&str> = vec!["class", "traces", "measured", "mean lat"];
    cols.extend(BUCKETS);
    let mut table = Table::new("Latency attribution (share of class time per bucket)", &cols);
    for a in store.attribution() {
        if a.traces == 0 {
            continue;
        }
        let mut row = vec![
            a.class.name().to_string(),
            a.traces.to_string(),
            a.measured.to_string(),
            f(a.mean_latency(), 5),
        ];
        for b in &a.buckets {
            row.push(if a.latency_total > 0.0 && b.total > 0.0 {
                format!("{:.1}%", 100.0 * b.total / a.latency_total)
            } else {
                "-".to_string()
            });
        }
        table.row(row);
    }
    table
}

/// The `k` slowest traces with their dominant bucket — shared with the
/// E18 dashboard's `--top-k` view.
pub fn top_k_table(store: &TraceStore, k: usize) -> Table {
    let mut table = Table::new(
        format!("Top-{k} slowest traces"),
        &["trace", "class", "proxy", "item", "latency", "dominant", "segments"],
    );
    for tr in store.top_k_slowest(k) {
        table.row(vec![
            format!("{:#010x}", tr.id >> 32),
            tr.class.name().to_string(),
            tr.proxy.to_string(),
            tr.item.to_string(),
            f(tr.latency(), 5),
            tr.dominant_bucket().to_string(),
            tr.segments.len().to_string(),
        ]);
    }
    table
}

/// Largest relative conservation residual across the store — how far any
/// trace's segment sum strays from its measured latency.
pub fn max_residual(store: &TraceStore) -> f64 {
    store
        .traces
        .iter()
        .map(|t| (t.segment_sum() - t.latency()).abs() / t.latency().abs().max(1.0))
        .fold(0.0, f64::max)
}

/// Runs one traced sweep; returns the report text, the `e19_trace`
/// artifact section, and the Chrome trace-event export.
pub fn render_with(
    n_proxies: usize,
    shards: usize,
    total_requests: usize,
    every: u64,
) -> (String, Json, Json) {
    let (report, obs) = run_traced(n_proxies, shards, total_requests, every);
    let store = obs.traces.as_ref().expect("trace probes were on");

    let mut out = String::new();
    out.push_str("# E19 — causal tracing: where each request's latency went\n");
    out.push_str(&format!(
        "# {n_proxies}-proxy cooperative mesh, {shards} shard(s) ({} driver), \
         tracing 1-in-{every}\n",
        obs.driver
    ));
    out.push_str(&format!(
        "# {} traces extracted; spans merge on (trace, seq), so this page is\n\
         # bit-identical at every shard count (cluster/tests/trace_parity.rs)\n\n",
        store.traces.len()
    ));

    out.push_str(&attribution_table(store).render());
    out.push('\n');
    out.push_str(&top_k_table(store, TOP_K).render());

    out.push_str(&format!(
        "\nConservation: every trace's exclusive segments tile its end-to-end\n\
         interval; max relative residual {} (segment sum vs measured latency).\n",
        f(max_residual(store), 12)
    ));
    out.push_str(&format!(
        "\nReading: \"redirect\" is time on a peer leg a digest false hit wasted;\n\
         \"pending_wait\" is jitter between a prefetch decision and its issue;\n\
         \"wait\" is a delayed hit riding someone else's in-flight fetch. Mean\n\
         access time {} matches the report's {}. Full spans: TRACE_cluster.json\n\
         (Chrome trace-event format, load in Perfetto or chrome://tracing).\n",
        obs.latency().map_or("-".into(), |l| f(l.moments.mean(), 5)),
        f(report.mean_access_time, 5),
    ));

    // Wall-clock telemetry stays off stdout, as in E17/E18.
    eprintln!(
        "e19: {n_proxies} proxies, {shards} shard(s): {} traces, {:.2}s wall",
        store.traces.len(),
        obs.wall_secs,
    );

    let section = store
        .to_json(TOP_K)
        .set("experiment", Json::str("e19_trace"))
        .set("n_proxies", Json::num(n_proxies as f64))
        .set("shards", Json::num(shards as f64))
        .set("max_residual", Json::num(max_residual(store)))
        .set("mean_access_time", Json::num(report.mean_access_time));
    let chrome = store.chrome_json();
    (out, section, chrome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_contains_all_sections() {
        let (n, shards, total, every) = SMOKE;
        let (text, section, chrome) = render_with(n, shards, total, every);
        assert!(text.contains("Latency attribution"));
        assert!(text.contains("slowest traces"));
        assert!(text.contains("Conservation"));
        assert!(text.contains("demand"));

        assert_eq!(section.get("experiment").and_then(Json::as_str), Some("e19_trace"));
        assert!(section.get("traces").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(section.get("classes").and_then(|c| c.get("demand")).is_some());
        assert!(!section.get("slowest").and_then(Json::as_arr).unwrap().is_empty());
        assert!(section.get("max_residual").and_then(Json::as_f64).unwrap() <= 1e-9);

        let events = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        assert!(Json::parse(&chrome.render()).is_ok());
    }

    #[test]
    fn smoke_report_is_deterministic() {
        let (n, shards, total, every) = SMOKE;
        assert_eq!(render_with(n, shards, total, every).0, render_with(n, shards, total, every).0);
    }
}
