//! E22 — chaos under prefetching: deterministic fault injection on the
//! cooperative mesh, sweeping link-failure intensity × prefetch
//! aggressiveness, with and without the timeout–retry–backoff policy.
//!
//! The sweep runs every `(loss, policy)` cell twice through
//! [`ClusterSim::run_faulted`]: once under the default [`RetryPolicy`]
//! (4 attempts, capped exponential backoff with deterministic jitter) and
//! once under [`RetryPolicy::no_retries`]. Three phenomena are pinned:
//!
//! * **Graceful degradation** — with retries, availability falls
//!   smoothly as loss rises; without them, every lost first attempt is a
//!   failed request and the mesh collapses at moderate loss.
//! * **Prefetch amplification** — speculative fetches get exactly one
//!   attempt (a prefetch is never worth a retry budget), and demand
//!   requests that coalesce onto an in-flight prefetch inherit its fate.
//!   Aggressive prefetching therefore *widens* the failure surface: the
//!   more demand rides on speculative transfers, the more of the retry
//!   policy's protection is bypassed. This is the paper's network-load
//!   trade-off with a failure axis attached.
//! * **Ledger conservation** — under every fault mix the MSHR law
//!   `origin_fetches + coalesced + failed == demand_misses` holds on
//!   every node ([`ClusterReport::mshr_conservation_ok`]).
//!
//! A separate **chaos showcase** runs the full fault repertoire — link
//! flaps, a lossy degrade, an origin brownout and blackout, a proxy
//! crash, a digest loss — on one mesh and reports the recovery counters
//! (wiped entries, failovers, forced snapshot refreshes).
//!
//! Headline booleans gating the schema check:
//!
//! * `zero_fault_identical` — the loss-0 sweep column, run through the
//!   whole fault-aware machinery, is **bit-identical** (derived
//!   `PartialEq`) to the plain sharded run for every policy;
//! * `graceful_with_retries` — retries never hurt availability, and at
//!   the heaviest loss they materially beat no-retries;
//! * `collapse_without_retries` — at the heaviest loss the no-retries
//!   mesh loses a large fraction of its requests;
//! * `mshr_conservation_ok` — the conservation law held on every run.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, DelayedHitsConfig, ProxyPolicy, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use simcore::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
use simcore::Json;
use workload::synth_web::SynthWebConfig;

const SEED: u64 = 22;

/// Uniform per-link packet-loss intensities the sweep visits. 0 is the
/// bit-identity pin; the last entry is the collapse regime.
pub const LOSSES: [f64; 4] = [0.0, 0.1, 0.25, 0.4];

/// Prefetch aggressiveness axis: none, the paper's adaptive threshold,
/// and an eager low fixed threshold.
pub const POLICIES: [(&str, ProxyPolicy); 3] = [
    ("none", ProxyPolicy::NoPrefetch),
    ("adaptive", ProxyPolicy::Adaptive),
    ("eager", ProxyPolicy::FixedThreshold(0.05)),
];

/// Full sweep: an 8-proxy mesh, 2 shards (windowed driver), 1600
/// requests per proxy.
pub const FULL: (usize, usize, usize) = (8, 2, 1_600);

/// Reduced CI sweep (`--smoke`): 4 proxies, 2 shards, 400 per proxy.
pub const SMOKE: (usize, usize, usize) = (4, 2, 400);

/// The same latency mesh shape as E21: backbone bandwidth scales with
/// the proxy count so its per-proxy share stays constant.
fn mesh(n_proxies: usize) -> Topology {
    Topology::mesh_with_latency(n_proxies, 60.0, 20.0 * n_proxies as f64, 45.0, 0.05)
}

fn config(n: usize, policy: ProxyPolicy, requests: usize) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: mesh(n),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n)
                    .map(|i| SynthWebConfig {
                        lambda: 12.0 + 2.0 * (i % 3) as f64,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(SEED),
                delayed: DelayedHitsConfig::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                refresh: RefreshStrategy::Deltas,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

/// Every link degraded to `loss` from t = 0 — a steady uniformly lossy
/// fabric, the cleanest signal for the sweep axes.
fn lossy_plan(topology: &Topology, loss: f64) -> FaultPlan {
    if loss <= 0.0 {
        return FaultPlan::empty();
    }
    FaultPlan::new(
        (0..topology.links().len())
            .map(|l| FaultEvent {
                t: 0.0,
                kind: FaultKind::LinkDegrade { link: l, loss, latency_factor: 1.0 },
            })
            .collect(),
    )
}

/// The showcase plan: every fault kind fires once mid-run. The downed
/// link is `peer[0-1]` (link `1 + n`: backbone is 0, access links are
/// 1..=n), so peer-destined fetches hit the dark-route failover path.
fn showcase_plan(n_proxies: usize) -> FaultPlan {
    let peer01 = 1 + n_proxies;
    FaultPlan::new(vec![
        FaultEvent {
            t: 4.0,
            kind: FaultKind::LinkDegrade { link: 0, loss: 0.3, latency_factor: 2.0 },
        },
        FaultEvent { t: 8.0, kind: FaultKind::LinkDown { link: peer01 } },
        FaultEvent { t: 12.0, kind: FaultKind::LinkUp { link: peer01 } },
        FaultEvent { t: 14.0, kind: FaultKind::OriginBrownout { delay: 0.3 } },
        FaultEvent { t: 18.0, kind: FaultKind::ProxyCrash { proxy: 1 } },
        FaultEvent { t: 22.0, kind: FaultKind::DigestLoss { proxy: 2 } },
        FaultEvent { t: 26.0, kind: FaultKind::OriginBlackout },
        FaultEvent { t: 29.0, kind: FaultKind::OriginRestore },
        FaultEvent { t: 32.0, kind: FaultKind::LinkUp { link: 0 } },
    ])
}

/// Request-weighted mean user-perceived access time over all proxies.
fn mean_access(report: &ClusterReport) -> f64 {
    let total: u64 = report.nodes.iter().map(|n| n.measured_requests).sum();
    if total == 0 {
        return 0.0;
    }
    report.nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
        / total as f64
}

fn sum(report: &ClusterReport, get: impl Fn(&cluster::NodeReport) -> u64) -> u64 {
    report.nodes.iter().map(get).sum()
}

/// One sweep cell: a `(loss, policy)` pair run with and without retries.
pub struct Cell {
    pub loss: f64,
    pub policy: &'static str,
    pub with_retries: ClusterReport,
    pub no_retries: ClusterReport,
}

impl Cell {
    pub fn availability(&self) -> f64 {
        1.0 - self.with_retries.unavailability()
    }
    pub fn availability_no_retries(&self) -> f64 {
        1.0 - self.no_retries.unavailability()
    }
}

/// The chaos showcase run and its recovery counters.
pub struct Showcase {
    pub report: ClusterReport,
    pub lost_entries: u64,
    pub failovers: u64,
    pub snapshot_flushes: u64,
}

pub struct Outcome {
    pub n_proxies: usize,
    pub shards: usize,
    pub cells: Vec<Cell>,
    pub showcase: Showcase,
    /// Loss-0 faulted runs matched the plain sharded run, per policy.
    pub zero_fault_identical: bool,
}

impl Outcome {
    fn max_loss_cells(&self) -> impl Iterator<Item = &Cell> {
        let max = LOSSES[LOSSES.len() - 1];
        self.cells.iter().filter(move |c| c.loss == max)
    }

    /// Retries never reduce availability anywhere, and at the heaviest
    /// loss they beat no-retries by a material margin on every policy.
    pub fn graceful_with_retries(&self) -> bool {
        let never_worse =
            self.cells.iter().all(|c| c.availability() >= c.availability_no_retries() - 1e-12);
        let material_at_max =
            self.max_loss_cells().all(|c| c.availability() >= c.availability_no_retries() + 0.02);
        never_worse && material_at_max
    }

    /// At the heaviest loss, the no-retries mesh drops a large share of
    /// its requests on every policy.
    pub fn collapse_without_retries(&self) -> bool {
        self.max_loss_cells().all(|c| c.no_retries.unavailability() > 0.15)
    }

    /// The MSHR conservation law held on every run of the sweep and the
    /// showcase.
    pub fn mshr_conservation_ok(&self) -> bool {
        self.cells
            .iter()
            .flat_map(|c| [&c.with_retries, &c.no_retries])
            .chain([&self.showcase.report])
            .all(ClusterReport::mshr_conservation_ok)
    }

    /// Availability lost to prefetch aggressiveness at the heaviest loss
    /// (retried runs): `availability(none) − availability(eager)`. The
    /// amplification phenomenon, as a number.
    pub fn prefetch_amplification(&self) -> f64 {
        let avail = |name: &str| {
            self.max_loss_cells().find(|c| c.policy == name).map_or(0.0, Cell::availability)
        };
        avail("none") - avail("eager")
    }
}

/// Runs the sweep plus the showcase.
pub fn run(n: usize, shards: usize, requests: usize) -> Outcome {
    let mut cells = Vec::new();
    let mut zero_fault_identical = true;
    for (name, policy) in POLICIES {
        let cfg = config(n, policy, requests);
        let sim = ClusterSim::new(&cfg);
        let plain = sim.run_sharded(SEED, shards);
        for loss in LOSSES {
            let plan = lossy_plan(&cfg.topology, loss);
            let with_retries = FaultConfig { plan: plan.clone(), retry: RetryPolicy::default() };
            let no_retries = FaultConfig { plan, retry: RetryPolicy::no_retries(1.0) };
            let cell = Cell {
                loss,
                policy: name,
                with_retries: sim.run_faulted(SEED, shards, &with_retries),
                no_retries: sim.run_faulted(SEED, shards, &no_retries),
            };
            if loss == 0.0 {
                zero_fault_identical &= cell.with_retries == plain && cell.no_retries == plain;
            }
            cells.push(cell);
        }
    }

    let cfg = config(n, ProxyPolicy::Adaptive, requests);
    let fc = FaultConfig { plan: showcase_plan(n), retry: RetryPolicy::default() };
    let report = ClusterSim::new(&cfg).run_faulted(SEED, shards, &fc);
    let coop = report.coop.as_ref().expect("cooperative run");
    let showcase = Showcase {
        lost_entries: sum(&report, |p| p.lost_entries),
        failovers: sum(&report, |p| p.failovers),
        snapshot_flushes: coop.router.snapshot_flushes,
        report,
    };

    Outcome { n_proxies: n, shards, cells, showcase, zero_fault_identical }
}

/// Full-size report.
pub fn render() -> String {
    let (n, shards, requests) = FULL;
    render_with(n, shards, requests).0
}

/// Reduced CI report.
pub fn render_smoke() -> String {
    let (n, shards, requests) = SMOKE;
    render_with(n, shards, requests).0
}

/// Runs one sweep; returns the report text and the `e22_chaos` artifact
/// section.
pub fn render_with(n: usize, shards: usize, requests: usize) -> (String, Json) {
    let t0 = std::time::Instant::now();
    let outcome = run(n, shards, requests);

    let mut out = String::new();
    out.push_str("# E22 — chaos under prefetching: faults, retries, degradation\n");
    out.push_str(&format!(
        "# {n}-proxy cooperative mesh, {shards} shard(s), {requests} requests/proxy;\n\
         # uniform link loss x prefetch policy, each cell with the default\n\
         # retry policy (4 attempts, capped exponential backoff) and with\n\
         # no retries (1 attempt, fail on first timeout)\n\n"
    ));

    let mut table = Table::new(
        "Availability under uniform link loss (retries vs no retries)",
        &[
            "policy",
            "loss",
            "avail (retries)",
            "avail (none)",
            "t-bar",
            "retries",
            "timeouts",
            "failed",
        ],
    );
    for c in &outcome.cells {
        table.row(vec![
            c.policy.to_string(),
            f(c.loss, 2),
            f(c.availability(), 4),
            f(c.availability_no_retries(), 4),
            f(mean_access(&c.with_retries), 4),
            c.with_retries.retries().to_string(),
            sum(&c.with_retries, |p| p.timeouts).to_string(),
            c.with_retries.failed_fetches().to_string(),
        ]);
    }
    out.push_str(&table.render());

    let s = &outcome.showcase;
    out.push_str(&format!(
        "\nChaos showcase (flaps + degrade + brownout + blackout + crash +\n\
         digest loss, retries on): availability {}, {} cache entries wiped\n\
         by the crash, {} failovers to the origin, {} forced snapshot\n\
         refresh(es) under the pure-deltas strategy.\n",
        f(1.0 - s.report.unavailability(), 4),
        s.lost_entries,
        s.failovers,
        s.snapshot_flushes,
    ));
    out.push_str(&format!(
        "\nZero-fault runs bit-identical to the plain engine: {}. Graceful\n\
         degradation with retries: {}. Collapse without: {}. MSHR\n\
         conservation (origin + coalesced + failed == misses) everywhere:\n\
         {}. Prefetch amplification at loss {}: eager prefetching costs\n\
         {} availability vs no prefetching — speculative fetches get one\n\
         attempt, so demand coalescing onto them bypasses the retry budget.\n",
        outcome.zero_fault_identical,
        outcome.graceful_with_retries(),
        outcome.collapse_without_retries(),
        outcome.mshr_conservation_ok(),
        f(LOSSES[LOSSES.len() - 1], 2),
        f(outcome.prefetch_amplification(), 4),
    ));

    eprintln!("e22: total {:.2}s wall", t0.elapsed().as_secs_f64());

    let section = section(&outcome);
    (out, section)
}

fn cell_json(c: &Cell) -> Json {
    Json::obj()
        .set("policy", Json::str(c.policy))
        .set("loss", Json::num(c.loss))
        .set("availability", Json::num(c.availability()))
        .set("availability_no_retries", Json::num(c.availability_no_retries()))
        .set("mean_access_time", Json::num(mean_access(&c.with_retries)))
        .set("retries", Json::num(c.with_retries.retries() as f64))
        .set("timeouts", Json::num(sum(&c.with_retries, |p| p.timeouts) as f64))
        .set("failed_fetches", Json::num(c.with_retries.failed_fetches() as f64))
}

/// The machine-readable `e22_chaos` section: one row per sweep cell, the
/// showcase counters, and the headline booleans the schema check gates
/// on.
pub fn section(outcome: &Outcome) -> Json {
    let s = &outcome.showcase;
    Json::obj()
        .set("experiment", Json::str("e22_chaos"))
        .set("n_proxies", Json::num(outcome.n_proxies as f64))
        .set("shards", Json::num(outcome.shards as f64))
        .set("cells", Json::arr(outcome.cells.iter().map(cell_json)))
        .set(
            "showcase",
            Json::obj()
                .set("availability", Json::num(1.0 - s.report.unavailability()))
                .set("lost_entries", Json::num(s.lost_entries as f64))
                .set("failovers", Json::num(s.failovers as f64))
                .set("snapshot_flushes", Json::num(s.snapshot_flushes as f64)),
        )
        .set("prefetch_amplification", Json::num(outcome.prefetch_amplification()))
        .set("zero_fault_identical", Json::Bool(outcome.zero_fault_identical))
        .set("graceful_with_retries", Json::Bool(outcome.graceful_with_retries()))
        .set("collapse_without_retries", Json::Bool(outcome.collapse_without_retries()))
        .set("mshr_conservation_ok", Json::Bool(outcome.mshr_conservation_ok()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pins_the_headline_booleans() {
        let (n, shards, requests) = SMOKE;
        let outcome = run(n, shards, requests);
        assert!(
            outcome.zero_fault_identical,
            "loss-0 faulted runs must be bit-identical to the plain engine"
        );
        assert!(outcome.graceful_with_retries(), "retries must degrade gracefully");
        assert!(outcome.collapse_without_retries(), "no-retries must collapse at max loss");
        assert!(outcome.mshr_conservation_ok(), "MSHR conservation law violated");
        assert!(outcome.showcase.lost_entries > 0, "the showcase crash wiped nothing");
        assert!(outcome.showcase.snapshot_flushes >= 1, "no forced snapshot after the crash");
        let section = section(&outcome);
        for key in [
            "zero_fault_identical",
            "graceful_with_retries",
            "collapse_without_retries",
            "mshr_conservation_ok",
        ] {
            assert_eq!(section.get(key), Some(&Json::Bool(true)), "{key}");
        }
        assert_eq!(
            section.get("cells").and_then(Json::as_arr).map(<[Json]>::len),
            Some(LOSSES.len() * POLICIES.len())
        );
    }

    #[test]
    fn smoke_report_is_deterministic() {
        let (n, shards, requests) = SMOKE;
        assert_eq!(render_with(n, shards, requests).0, render_with(n, shards, requests).0);
    }
}
