//! E15 — cluster scale sweep on the indexed event scheduler.
//!
//! The original closed-loop engine paid an O(links + proxies) scan per
//! event, which capped experiments at a handful of proxies. With the
//! `simcore::sched` indexed scheduler every event costs O(log n), so this
//! experiment sweeps the peer-meshed cooperative deployment through
//! 64/128/256-proxy fabrics — the fan-outs the hardware-prefetching
//! surveys and Anselmi & Walton's speculative queueing networks argue the
//! interesting effects live at. A full 256-proxy mesh carries
//! 256·255/2 = 32 640 peer links, each its own PS queue: exactly the
//! shape the per-event scan could not touch.
//!
//! Per fabric size the sweep runs plain adaptive and cooperative modes at
//! a fixed *total* request budget (so wall-clock comparisons across sizes
//! are per-event cost, not workload growth). The stdout report carries
//! only seeded, deterministic metrics (the repo invariant: two runs of a
//! harness binary must diff empty); wall-clock event-loop throughput is
//! printed to stderr.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy};
use std::time::Instant;
use workload::synth_web::SynthWebConfig;

const SEED: u64 = 15;
const LAMBDA: f64 = 14.0;

/// Fabric sizes the sweep walks. CI's `--smoke` run covers the same
/// sizes at a reduced request budget, so the 256-proxy path cannot rot.
pub const SIZES: [usize; 3] = [64, 128, 256];

/// Total requests across the cluster at full size (split evenly over the
/// proxies, so bigger fabrics stress breadth, not per-proxy depth).
pub const TOTAL_REQUESTS: usize = 96_000;

/// Reduced total for the CI smoke invocation (`--smoke`).
pub const SMOKE_TOTAL_REQUESTS: usize = 24_000;

/// A peer mesh whose backbone scales with the proxy count (fixed per-proxy
/// headroom, so every size runs at a comparable utilisation).
fn scaled_mesh(n_proxies: usize) -> Topology {
    Topology::mesh(n_proxies, 50.0, 25.0 * n_proxies as f64, 45.0)
}

fn workload(n_proxies: usize, policy: ProxyPolicy) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|_| SynthWebConfig { lambda: LAMBDA, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(99),
        delayed: Default::default(),
    }
}

/// How the total request budget splits over `n_proxies` (floored so tiny
/// smoke budgets still clear the warmup at 256 proxies).
fn requests_per_proxy(n_proxies: usize, total_requests: usize) -> usize {
    (total_requests / n_proxies).max(60)
}

/// Runs one fabric size in one mode; returns the report and the wall time.
pub fn run_at(n_proxies: usize, cooperative: bool, total_requests: usize) -> (ClusterReport, f64) {
    let requests = requests_per_proxy(n_proxies, total_requests);
    let warmup = requests / 5;
    let base = workload(n_proxies, ProxyPolicy::Adaptive);
    let config = ClusterConfig {
        topology: scaled_mesh(n_proxies),
        workload: if cooperative {
            Workload::Cooperative(CooperativeWorkload {
                base,
                coop: CoopConfig {
                    placement: PlacementPolicy::LoadAware {
                        divergence: 0.05,
                        step: 4,
                        min_vnodes: 8,
                    },
                    digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                    ..CoopConfig::default()
                },
            })
        } else {
            Workload::Adaptive(base)
        },
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    let start = Instant::now();
    let report = ClusterSim::new(&config).run(SEED);
    (report, start.elapsed().as_secs_f64())
}

/// Full-size report.
pub fn render() -> String {
    render_with(TOTAL_REQUESTS)
}

/// Report at a caller-chosen total request budget (the CI smoke run uses
/// [`SMOKE_TOTAL_REQUESTS`]).
pub fn render_with(total_requests: usize) -> String {
    let mut out = String::new();
    out.push_str("# E15 — cluster scale sweep (indexed event scheduler)\n");
    out.push_str("# peer meshes at 64/128/256 proxies; every link its own PS queue\n");
    out.push_str(&format!("# total request budget per run: {total_requests}\n\n"));

    let mut sweep = Table::new(
        "Adaptive vs cooperative at scale (equal total requests per run)",
        &["proxies", "links", "mode", "hit ratio", "t mean", "backbone B/req", "peer%", "epochs"],
    );
    for &n in &SIZES {
        for coop_on in [false, true] {
            let (r, wall) = run_at(n, coop_on, total_requests);
            let requests_total: u64 = (requests_per_proxy(n, total_requests) * n) as u64;
            let mode = if coop_on { "cooperative" } else { "adaptive" };
            // Wall-clock throughput goes to stderr: the stdout report is
            // seeded and must be byte-identical run to run (the repo's
            // determinism invariant); timing never can be.
            eprintln!(
                "e15: {n} proxies, {mode}: {wall:.2}s wall ({:.1} kreq/s)",
                requests_total as f64 / wall / 1e3
            );
            let hit = r.nodes.iter().map(|node| node.hit_ratio).sum::<f64>() / r.nodes.len() as f64;
            let peer_share = match &r.coop {
                Some(c) => {
                    let backbone_jobs = r.link("backbone").map_or(0, |l| l.jobs_completed);
                    100.0 * c.peer_fetches as f64 / (c.peer_fetches + backbone_jobs).max(1) as f64
                }
                None => 0.0,
            };
            sweep.row(vec![
                n.to_string(),
                r.links.len().to_string(),
                mode.to_string(),
                f(hit, 3),
                f(r.mean_access_time, 5),
                f(r.link_bytes("backbone") / requests_total as f64, 3),
                f(peer_share, 1),
                r.coop.map_or("-".into(), |c| c.router.digest_epochs.to_string()),
            ]);
        }
    }
    out.push_str(&sweep.render());

    out.push_str(
        "\nReading: the event loop now scales to fabrics two orders of magnitude\n\
         beyond the 3-proxy deployments of E13/E14 -- a 256-proxy mesh is\n\
         ~32k queueing links, and per-event cost stays logarithmic in all of\n\
         them. Cooperation keeps shedding backbone bytes at every size: with\n\
         identical hot sets behind every proxy the digests turn redundant\n\
         origin fetches into peer fetches, while the load-aware placement\n\
         and grid-pinned digest epochs behave identically at 256 proxies as\n\
         at 3 (same code, same timers, bigger key space).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_sections() {
        let report = render_with(SMOKE_TOTAL_REQUESTS);
        assert!(report.contains("scale sweep"));
        assert!(report.contains("Adaptive vs cooperative at scale"));
        assert!(report.contains("256"));
        assert!(report.contains("cooperative"));
    }

    #[test]
    fn cooperation_still_relieves_the_backbone_at_64_proxies() {
        let (adaptive, _) = run_at(64, false, SMOKE_TOTAL_REQUESTS);
        let (coop, _) = run_at(64, true, SMOKE_TOTAL_REQUESTS);
        assert!(
            coop.link_bytes("backbone") < adaptive.link_bytes("backbone"),
            "coop backbone {} vs adaptive {}",
            coop.link_bytes("backbone"),
            adaptive.link_bytes("backbone")
        );
        let c = coop.coop.expect("coop counters");
        assert!(c.peer_fetches > 0);
        assert!(c.router.digest_epochs > 0);
    }
}
