//! E7 — validating the closed forms against the discrete-event simulator.
//!
//! For a grid of `(h′, n̄(F), p)` points, runs the parametric simulator
//! (which realises the paper's assumptions mechanically) and compares every
//! measured quantity against its equation: `t̄′` (eq 5), `h` (eq 7), `ρ`
//! (eq 8), `t̄` (eq 10), `G` (eq 11), `C` (eq 27). Points are independent,
//! so the grid runs on all cores.

use crate::rel_err;
use crate::report::{f, Table};
use netsim::parametric::{run, run_with_baseline, ParametricConfig};
use prefetch_core::{ModelA, SystemParams};
use simcore::dist::Exponential;
use simcore::par::par_map_auto;

/// One grid point's comparison.
#[derive(Clone, Debug)]
pub struct ValidationRow {
    pub h_prime: f64,
    pub n_f: f64,
    pub p: f64,
    pub t_measured: f64,
    pub t_predicted: f64,
    pub h_measured: f64,
    pub h_predicted: f64,
    pub rho_measured: f64,
    pub rho_predicted: f64,
    pub g_measured: Option<f64>,
    pub g_predicted: Option<f64>,
    pub c_measured: Option<f64>,
    pub c_predicted: Option<f64>,
}

/// The validation grid. All points are stable under Model A *and* respect
/// the consistency bound `n̄(F)·p ≤ f′` (eq 6) — beyond it the closed form
/// predicts `h > 1`, which no mechanism can realise.
pub fn grid() -> Vec<(f64, f64, f64)> {
    vec![
        (0.0, 0.0, 0.0),
        (0.3, 0.0, 0.0),
        (0.0, 0.5, 0.7),
        (0.0, 1.0, 0.9),
        (0.0, 0.5, 0.3),
        (0.3, 0.5, 0.8),
        (0.3, 0.7, 0.9),
        (0.3, 0.3, 0.3),
        (0.5, 0.6, 0.8),
    ]
}

/// Runs the whole grid (in parallel) with `requests` per run.
pub fn validate(requests: usize, seed: u64) -> Vec<ValidationRow> {
    let points = grid();
    par_map_auto(&points, |i, &(h, n_f, p)| {
        let params = SystemParams::new(30.0, 50.0, 1.0, h).unwrap();
        let size = Exponential::with_mean(1.0);
        let config =
            ParametricConfig { params, n_f, p, size_dist: &size, requests, warmup: requests / 6 };
        let model = ModelA::new(params, n_f, p);
        let point_seed = seed.wrapping_add(i as u64 * 7919);
        if n_f > 0.0 {
            let (base, with, g) = run_with_baseline(&config, point_seed);
            ValidationRow {
                h_prime: h,
                n_f,
                p,
                t_measured: with.mean_access_time,
                t_predicted: model.access_time().unwrap_or(f64::NAN),
                h_measured: with.hit_ratio,
                h_predicted: model.hit_ratio(),
                rho_measured: with.utilisation,
                rho_predicted: model.utilisation(),
                g_measured: Some(g),
                g_predicted: model.improvement(),
                c_measured: Some(with.retrieval_per_request - base.retrieval_per_request),
                c_predicted: model.excess_cost(),
            }
        } else {
            let r = run(&config, point_seed);
            ValidationRow {
                h_prime: h,
                n_f,
                p,
                t_measured: r.mean_access_time,
                t_predicted: params.access_time().unwrap_or(f64::NAN),
                h_measured: r.hit_ratio,
                h_predicted: h,
                rho_measured: r.utilisation,
                rho_predicted: params.rho_prime(),
                g_measured: None,
                g_predicted: None,
                c_measured: None,
                c_predicted: None,
            }
        }
    })
}

pub fn render() -> String {
    let rows = validate(150_000, 4242);
    let mut out = String::new();
    out.push_str("# E7 — closed forms vs discrete-event simulation (Model A mechanism)\n");
    out.push_str("# lambda=30, b=50, s=1, exponential sizes; eq numbers from the paper\n\n");
    let mut table = Table::new(
        "Measured vs predicted",
        &[
            "h'",
            "n(F)",
            "p",
            "t meas",
            "t eq(10)",
            "err",
            "h meas",
            "rho meas",
            "rho eq(8)",
            "G meas",
            "G eq(11)",
            "C meas",
            "C eq(27)",
        ],
    );
    for r in &rows {
        table.row(vec![
            f(r.h_prime, 1),
            f(r.n_f, 1),
            f(r.p, 1),
            f(r.t_measured, 5),
            f(r.t_predicted, 5),
            format!("{:.1}%", 100.0 * rel_err(r.t_measured, r.t_predicted)),
            f(r.h_measured, 3),
            f(r.rho_measured, 3),
            f(r.rho_predicted, 3),
            r.g_measured.map_or("-".into(), |v| f(v, 5)),
            r.g_predicted.map_or("-".into(), |v| f(v, 5)),
            r.c_measured.map_or("-".into(), |v| f(v, 5)),
            r.c_predicted.map_or("-".into(), |v| f(v, 5)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\n(t err is the relative gap between the measured mean access time and eq (10)/(5).)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_grid_points_within_tolerance() {
        // Smaller runs in the test suite; looser tolerance.
        for r in validate(60_000, 99) {
            assert!(
                rel_err(r.t_measured, r.t_predicted) < 0.10,
                "t at ({}, {}, {}): {} vs {}",
                r.h_prime,
                r.n_f,
                r.p,
                r.t_measured,
                r.t_predicted
            );
            assert!((r.h_measured - r.h_predicted).abs() < 0.02);
            assert!((r.rho_measured - r.rho_predicted).abs() < 0.03);
        }
    }

    #[test]
    fn g_sign_agrees_with_model_everywhere() {
        for r in validate(60_000, 123) {
            if let (Some(gm), Some(gp)) = (r.g_measured, r.g_predicted) {
                if gp.abs() > 5e-3 {
                    assert_eq!(gm > 0.0, gp > 0.0, "G sign at ({}, {}, {})", r.h_prime, r.n_f, r.p);
                }
            }
        }
    }
}
