//! E4 — Model-B analogues of Figures 1–3 (paper eqs 15–22).
//!
//! The paper derives Model B's formulas but plots only Model A. This
//! experiment regenerates the three figures under Model B for several
//! cache sizes `n̄(C)`, making the eviction-cost term `h′/n̄(C)` visible:
//! thresholds shift up by exactly that amount, and the `h′ = 0` panel is
//! *identical* to Model A (nothing of value to evict).

use crate::asciiplot::Chart;
use crate::report::{f, Table};
use prefetch_core::{ModelB, SystemParams};

use super::paper;

/// Cache sizes explored.
pub const CACHE_SIZES: [f64; 3] = [5.0, 20.0, 100.0];

/// Figure-1 analogue: `p_th(s) = f′λs/b + h′/n̄(C)`.
pub fn threshold_curve(h_prime: f64, bandwidth: f64, n_c: f64, s_points: usize) -> Vec<(f64, f64)> {
    (0..=s_points)
        .map(|i| {
            let s = 10.0 * i as f64 / s_points as f64;
            let pth = (1.0 - h_prime) * paper::LAMBDA * s / bandwidth + h_prime / n_c;
            (s, pth)
        })
        .collect()
}

/// Figure-2 analogue: `(n̄(F), G_B)` stable points.
pub fn g_curve(h_prime: f64, p: f64, n_c: f64, nf_points: usize) -> Vec<(f64, f64)> {
    let params =
        SystemParams::new(paper::LAMBDA, paper::FIG23_BANDWIDTH, paper::FIG23_MEAN_SIZE, h_prime)
            .unwrap();
    (0..=nf_points)
        .filter_map(|i| {
            let nf = 2.0 * i as f64 / nf_points as f64;
            ModelB::new(params, nf, p, n_c).improvement().map(|g| (nf, g))
        })
        .collect()
}

/// Figure-3 analogue: `(n̄(F), C_B)` stable points.
pub fn c_curve(h_prime: f64, p: f64, n_c: f64, nf_points: usize) -> Vec<(f64, f64)> {
    let params =
        SystemParams::new(paper::LAMBDA, paper::FIG23_BANDWIDTH, paper::FIG23_MEAN_SIZE, h_prime)
            .unwrap();
    (0..=nf_points)
        .filter_map(|i| {
            let nf = 2.0 * i as f64 / nf_points as f64;
            ModelB::new(params, nf, p, n_c).excess_cost().map(|c| (nf, c))
        })
        .collect()
}

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E4 — Model B analogues of Figures 1-3 (eqs 15-22)\n");
    out.push_str("# p_th(B) = rho' + h'/n(C): the eviction-cost term raises the bar\n\n");

    // Threshold table (Fig 1 analogue), h' = 0.3 where the term matters.
    let h = 0.3;
    let mut table = Table::new(
        "p_th under Model B at s = 1, b = 50, h' = 0.3",
        &["n(C)", "p_th(A)", "p_th(B)", "shift = h'/n(C)"],
    );
    let params = SystemParams::new(paper::LAMBDA, 50.0, 1.0, h).unwrap();
    for &nc in &CACHE_SIZES {
        let b = ModelB::new(params, 1.0, 0.5, nc);
        table.row(vec![
            format!("{nc}"),
            f(params.rho_prime(), 3),
            f(b.threshold(), 3),
            f(h / nc, 3),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');

    // Fig 2 analogue chart at n(C) = 20.
    for &h in &paper::H_PRIMES {
        let mut chart = Chart::new(
            format!("Figure 2 analogue under Model B: h' = {h}, n(C) = 20"),
            (0.0, 2.0),
            (-0.1, 0.1),
            72,
            21,
        );
        for &p in &paper::FIG23_PROBS {
            chart.series(format!("p = {p}"), g_curve(h, p, 20.0, 80));
        }
        out.push_str(&chart.render());
        out.push('\n');
    }

    // Fig 3 analogue chart at n(C) = 20, h' = 0.3.
    let mut chart = Chart::new(
        "Figure 3 analogue under Model B: h' = 0.3, n(C) = 20",
        (0.0, 2.0),
        (0.0, 0.1),
        72,
        21,
    );
    for &p in &paper::FIG23_PROBS {
        chart.series(format!("p = {p}"), c_curve(0.3, p, 20.0, 80));
    }
    out.push_str(&chart.render());
    out.push('\n');

    // Sign-flip demonstration: p between the two thresholds.
    let mut table = Table::new(
        "G for p between thresholds (h'=0.3, p=0.5, n(F)=0.5): A says yes, small caches say no",
        &["n(C)", "p_th(B)", "G(B)"],
    );
    for &nc in &[2.0, 5.0, 20.0, 100.0] {
        let m = ModelB::new(params, 0.5, 0.5, nc);
        table.row(vec![
            format!("{nc}"),
            f(m.threshold(), 3),
            match m.improvement() {
                Some(g) => f(g, 5),
                None => "unstable".into(),
            },
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_curves_offset_by_eviction_value() {
        let base = threshold_curve(0.3, 50.0, 1e12, 10); // n(C)→∞ ≈ model A
        let small = threshold_curve(0.3, 50.0, 5.0, 10);
        for (a, b) in base.iter().zip(&small) {
            assert!((b.1 - a.1 - 0.06).abs() < 1e-9);
        }
    }

    #[test]
    fn h_zero_panel_equals_model_a() {
        use super::super::e2_fig2;
        let a = e2_fig2::curve(0.0, 0.9, 40);
        let b = g_curve(0.0, 0.9, 5.0, 40);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sign_flip_between_thresholds() {
        // h'=0.3 → p_th(A)=0.42. With n(C)=2, p_th(B)=0.57. p=0.5 flips.
        let g_small_cache = g_curve(0.3, 0.5, 2.0, 20);
        let g_big_cache = g_curve(0.3, 0.5, 1000.0, 20);
        let last_small = g_small_cache.last().unwrap().1;
        let last_big = g_big_cache.last().unwrap().1;
        assert!(last_small < 0.0, "small cache G {last_small}");
        assert!(last_big > 0.0, "big cache G {last_big}");
    }

    #[test]
    fn render_mentions_all_cache_sizes() {
        let s = render();
        for nc in CACHE_SIZES {
            assert!(s.contains(&format!("{nc}")));
        }
    }
}
