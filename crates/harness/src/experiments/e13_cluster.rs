//! E13 — speculative prefetching across a multi-node cluster.
//!
//! The paper's analysis lives on one shared path; its title promises
//! distributed systems. This experiment runs the `cluster` crate's
//! network-of-queues simulator in three escalating settings:
//!
//! 1. **Degenerate parity** — the single-proxy topology against the
//!    paper's eq (10)/(14) closed forms (and, by construction, against
//!    `netsim::parametric` exactly);
//! 2. **Topology comparison** — the same aggregate load over private
//!    uplinks (star), a shared backbone (two-tier), and a sharded origin:
//!    where the queueing actually happens decides what prefetching costs;
//! 3. **Adaptive divergence** — three proxies with heterogeneous local
//!    load, each running its own §4 estimators: their thresholds `p̂_th`
//!    separate because each sees a different local `ρ̂′`.
//!
//! Plus the cluster-scope Figure 2/3 analogue: `G` and excess network
//! load vs prefetch volume, at p above and below the threshold.

use crate::report::{f, Table};
use cluster::{
    network_load_curve, AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport,
    ClusterSim, CurveSpec, ProxyPolicy, StaticProxy, StaticWorkload, Topology, Workload,
};
use prefetch_core::{ModelA, SystemParams};
use simcore::dist::Exponential;
use workload::synth_web::SynthWebConfig;

const REQUESTS: usize = 60_000;
const WARMUP: usize = 10_000;
const SEED: u64 = 13;

/// Reduced problem size for the CI smoke invocation (`--smoke`).
pub const SMOKE_REQUESTS: usize = 4_000;
pub const SMOKE_WARMUP: usize = 800;

/// Runs the open-loop cluster with the same parameters at every proxy.
pub fn run_static(
    topology: Topology,
    proxy: StaticProxy,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let size = Exponential::with_mean(1.0);
    let proxies = (0..topology.n_proxies()).map(|_| proxy).collect();
    let config = ClusterConfig {
        topology,
        workload: Workload::Static(StaticWorkload {
            proxies,
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    ClusterSim::new(&config).run(seed)
}

/// The heterogeneous-load adaptive deployment: 3 proxies, 2 origin shards.
pub fn run_adaptive(
    lambdas: &[f64],
    policy: ProxyPolicy,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let config = ClusterConfig {
        topology: Topology::sharded_origin(lambdas.len(), 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: lambdas
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    ClusterSim::new(&config).run(seed)
}

/// Full-size report.
pub fn render() -> String {
    render_with(REQUESTS, WARMUP)
}

/// Report at a caller-chosen problem size (the CI smoke run uses
/// [`SMOKE_REQUESTS`]).
pub fn render_with(requests: usize, warmup: usize) -> String {
    let mut out = String::new();
    out.push_str("# E13 — speculative prefetching across a multi-node cluster\n");
    out.push_str("# every link is a PS queue; every proxy a cache + controller\n\n");

    // 1. Degenerate parity against the closed forms.
    let params = SystemParams::paper_figure2(0.0);
    let mut parity = Table::new(
        "Single-node degenerate topology vs Model A closed forms (lambda=30, b=50, h'=0)",
        &["nf", "p", "rho measured", "rho eq(9)", "t measured", "t eq(10)"],
    );
    for (n_f, p) in [(0.0, 0.0), (0.5, 0.8), (1.0, 0.9)] {
        let proxy = StaticProxy { lambda: 30.0, h_prime: 0.0, n_f, p };
        let r = run_static(Topology::single(50.0), proxy, requests, warmup, SEED);
        let model = ModelA::new(params, n_f, p);
        parity.row(vec![
            f(n_f, 1),
            f(p, 1),
            f(r.links[0].utilisation, 4),
            f(model.utilisation(), 4),
            f(r.nodes[0].mean_access_time, 5),
            f(model.access_time().unwrap_or(f64::NAN), 5),
        ]);
    }
    out.push_str(&parity.render());

    // 2. Same aggregate load, three topologies.
    let mut topo = Table::new(
        "Where the queue lives: aggregate lambda=30 (nf=0.5, p=0.8) across layouts",
        &["layout", "links", "t mean", "max link rho", "bytes/req"],
    );
    let layouts: Vec<(&str, Topology, f64)> = vec![
        ("single shared path", Topology::single(50.0), 30.0),
        ("star, 3 private uplinks", Topology::star(3, 50.0 / 3.0), 10.0),
        ("two-tier shared backbone", Topology::two_tier(3, 25.0, 50.0), 10.0),
        ("sharded origin 3x2", Topology::sharded_origin(3, 2, 25.0, 30.0), 10.0),
    ];
    for (name, topology, lambda) in layouts {
        let links = topology.links().len();
        let proxy = StaticProxy { lambda, h_prime: 0.0, n_f: 0.5, p: 0.8 };
        let r = run_static(topology, proxy, requests, warmup, SEED);
        topo.row(vec![
            name.to_string(),
            links.to_string(),
            f(r.mean_access_time, 5),
            f(r.max_link_utilisation(), 3),
            f(r.bytes_per_request, 3),
        ]);
    }
    out.push('\n');
    out.push_str(&topo.render());

    // 3. Cluster-scope Figure 2/3 analogue.
    let size = Exponential::with_mean(1.0);
    let topology = Topology::star(2, 50.0);
    let proxies = [(30.0, 0.0), (30.0, 0.0)];
    let n_fs = [0.25, 0.5, 0.75, 1.0];
    let mut fig23 = Table::new(
        "Cluster Fig 2/3 analogue (star x2, rho'=0.6): G and excess load vs nf",
        &["nf", "G(p=0.9)", "C(p=0.9)", "G(p=0.3)", "C(p=0.3)"],
    );
    let spec = |p| CurveSpec {
        topology: &topology,
        proxies: &proxies,
        p,
        size_dist: &size,
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
        seed: SEED,
    };
    let above = network_load_curve(&spec(0.9), &n_fs);
    let below = network_load_curve(&spec(0.3), &n_fs);
    for (hi, lo) in above.iter().zip(&below) {
        fig23.row(vec![
            f(hi.n_f, 2),
            f(hi.improvement, 5),
            f(hi.excess_bytes_per_request, 3),
            f(lo.improvement, 5),
            f(lo.excess_bytes_per_request, 3),
        ]);
    }
    out.push('\n');
    out.push_str(&fig23.render());

    // 4. Adaptive divergence under heterogeneous load.
    let lambdas = [8.0, 18.0, 30.0];
    let adaptive = run_adaptive(&lambdas, ProxyPolicy::Adaptive, requests, warmup, SEED);
    let baseline = run_adaptive(&lambdas, ProxyPolicy::NoPrefetch, requests, warmup, SEED);
    let mut diverge = Table::new(
        "Per-proxy adaptive control (3 proxies, 2 shards): thresholds track local rho'",
        &[
            "proxy",
            "lambda",
            "rho' est",
            "p_th mean",
            "nf realised",
            "hit ratio",
            "hit (no-pf)",
            "goodput%",
        ],
    );
    for (i, node) in adaptive.nodes.iter().enumerate() {
        let good = node.goodput_bytes.unwrap_or(0.0);
        let bad = node.badput_bytes.unwrap_or(0.0);
        let good_frac = if good + bad > 0.0 { 100.0 * good / (good + bad) } else { 0.0 };
        diverge.row(vec![
            i.to_string(),
            f(lambdas[i], 0),
            f(node.rho_prime_estimate.unwrap_or(f64::NAN), 3),
            f(node.mean_threshold.unwrap_or(f64::NAN), 3),
            f(node.prefetches_per_request, 3),
            f(node.hit_ratio, 3),
            f(baseline.nodes[i].hit_ratio, 3),
            f(good_frac, 1),
        ]);
    }
    out.push('\n');
    out.push_str(&diverge.render());

    let mut links = Table::new("Link view of the adaptive run", &["link", "rho", "bytes", "jobs"]);
    for l in &adaptive.links {
        links.row(vec![
            l.name.clone(),
            f(l.utilisation, 3),
            f(l.bytes_carried, 0),
            l.jobs_completed.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&links.render());

    out.push_str(
        "\nReading: the degenerate topology lands on the closed forms (the cluster\n\
         engine is the parametric simulator when the network is one link). Moving\n\
         the same offered load onto a shared backbone costs more than private\n\
         uplinks of equal aggregate capacity -- load impedance now acts *between*\n\
         proxies. In the adaptive deployment each proxy's controller converges to\n\
         its own threshold p_th = rho'_local: the busy proxy prefetches only\n\
         near-certain items while the idle one speculates freely, which is\n\
         exactly the paper's single-node rule applied node-by-node.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_sections() {
        let report = render();
        assert!(report.contains("closed forms"));
        assert!(report.contains("shared backbone"));
        assert!(report.contains("G and excess load"));
        assert!(report.contains("thresholds track local rho'"));
    }

    #[test]
    fn degenerate_rho_matches_model_a() {
        let proxy = StaticProxy { lambda: 30.0, h_prime: 0.0, n_f: 1.0, p: 0.9 };
        let r = run_static(Topology::single(50.0), proxy, REQUESTS, WARMUP, 2);
        let m = ModelA::new(SystemParams::paper_figure2(0.0), 1.0, 0.9);
        assert!((r.links[0].utilisation - m.utilisation()).abs() < 0.03);
    }

    #[test]
    fn adaptive_thresholds_ordered_by_load() {
        let r = run_adaptive(&[8.0, 30.0], ProxyPolicy::Adaptive, REQUESTS, WARMUP, 3);
        let lo = r.nodes[0].mean_threshold.unwrap();
        let hi = r.nodes[1].mean_threshold.unwrap();
        assert!(hi > lo, "p_th at lambda=30 ({hi}) must exceed lambda=8 ({lo})");
    }
}
