//! E8 — the headline policy, end to end.
//!
//! On the synthetic proxy workload with real caches and learned predictors:
//!
//! * compares no-prefetch / prefetch-all / fixed thresholds / the adaptive
//!   `p̂_th = ρ̂′` controller;
//! * sweeps the fixed threshold to locate the empirical optimum and checks
//!   it sits near the analytic `ρ′` — the paper's central claim carried
//!   into a system where none of its idealisations hold exactly.

use crate::report::{f, Table};
use netsim::traced::{run, Policy, PredictorKind, TracedConfig, TracedReport};
use workload::synth_web::SynthWebConfig;

/// The workload every policy sees.
pub fn base_config() -> TracedConfig {
    TracedConfig {
        web: SynthWebConfig {
            n_clients: 12,
            lambda: 30.0,
            n_items: 400,
            branching: 3,
            link_skew: 0.3,
            mean_size: 1.0,
            size_shape: 2.5,
        },
        cache_capacity: 32,
        bandwidth: 60.0,
        predictor: PredictorKind::Oracle,
        policy: Policy::Adaptive,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        requests: 60_000,
        warmup: 10_000,
    }
}

/// Runs the policy × predictor matrix.
pub fn matrix(seed: u64) -> Vec<TracedReport> {
    let policies = [
        Policy::NoPrefetch,
        Policy::PrefetchAll,
        Policy::FixedThreshold(0.2),
        Policy::FixedThreshold(0.45),
        Policy::FixedThreshold(0.7),
        Policy::FixedThreshold(0.9),
        Policy::Adaptive,
    ];
    let predictors = [
        PredictorKind::Oracle,
        PredictorKind::Markov1,
        PredictorKind::Lz78,
        PredictorKind::Ensemble,
    ];
    let mut out = Vec::new();
    for pk in predictors {
        for pol in policies {
            let mut cfg = base_config();
            cfg.predictor = pk;
            cfg.policy = pol;
            out.push(run(&cfg, seed));
        }
    }
    out
}

/// Fixed-threshold sweep with the oracle predictor: `(θ, t̄)`.
pub fn threshold_sweep(seed: u64) -> Vec<(f64, f64)> {
    (1..=9)
        .map(|i| {
            let th = i as f64 / 10.0;
            let mut cfg = base_config();
            cfg.policy = Policy::FixedThreshold(th);
            let r = run(&cfg, seed);
            (th, r.mean_access_time)
        })
        .collect()
}

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E8 — end-to-end policy comparison on the synthetic proxy workload\n");
    out.push_str("# 12 clients, lambda=30, b=60, LRU(32), real predictors, shared PS link\n\n");

    let mut table = Table::new(
        "Policies x predictors",
        &[
            "predictor",
            "policy",
            "t mean",
            "ci95",
            "h",
            "h'(est)",
            "h'(twin)",
            "rho",
            "n(F)",
            "useful",
            "thresh",
            "bytes/req",
            "wasted B%",
        ],
    );
    for r in matrix(8080) {
        table.row(vec![
            r.predictor.clone(),
            r.policy.clone(),
            f(r.mean_access_time, 5),
            f(r.access_time_ci95, 5),
            f(r.hit_ratio, 3),
            f(r.h_prime_estimate, 3),
            f(r.twin_h_prime, 3),
            f(r.utilisation, 3),
            f(r.prefetches_per_request, 3),
            f(r.useful_prefetch_fraction, 3),
            if r.mean_threshold.is_nan() { "-".into() } else { f(r.mean_threshold, 3) },
            f(r.bytes_per_request, 3),
            format!("{:.0}%", 100.0 * r.wasted_prefetch_bytes_fraction),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');

    let sweep = threshold_sweep(9090);
    let mut table = Table::new(
        "Fixed-threshold sweep (oracle predictor): optimum should sit near rho'",
        &["threshold", "t mean"],
    );
    for &(th, t) in &sweep {
        table.row(vec![f(th, 1), f(t, 5)]);
    }
    out.push_str(&table.render());
    let best = sweep.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty sweep");
    out.push_str(&format!(
        "\nEmpirical optimum threshold: {:.1} (t = {:.5}).\n\
         The adaptive controller's average threshold (table above) should sit in\n\
         the same region — that is the paper's p_th = rho' at work.\n",
        best.0, best.1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TracedConfig {
        let mut cfg = base_config();
        cfg.requests = 30_000;
        cfg.warmup = 6_000;
        cfg
    }

    #[test]
    fn adaptive_beats_baseline_and_prefetch_all() {
        let mut cfg = quick_cfg();
        cfg.policy = Policy::NoPrefetch;
        let base = run(&cfg, 1);
        cfg.policy = Policy::Adaptive;
        let adaptive = run(&cfg, 1);
        cfg.policy = Policy::PrefetchAll;
        let all = run(&cfg, 1);
        assert!(adaptive.mean_access_time < base.mean_access_time);
        assert!(adaptive.mean_access_time < all.mean_access_time);
    }

    #[test]
    fn extreme_thresholds_are_suboptimal() {
        // θ=0.9 prefetches nothing (top successor p≈0.72); θ=0.05 prefetches
        // almost everything. A mid threshold must beat both.
        let mut cfg = quick_cfg();
        cfg.policy = Policy::FixedThreshold(0.9);
        let high = run(&cfg, 2);
        cfg.policy = Policy::FixedThreshold(0.05);
        let low = run(&cfg, 2);
        cfg.policy = Policy::FixedThreshold(0.45);
        let mid = run(&cfg, 2);
        assert!(
            mid.mean_access_time < high.mean_access_time,
            "mid {} vs high {}",
            mid.mean_access_time,
            high.mean_access_time
        );
        assert!(
            mid.mean_access_time < low.mean_access_time,
            "mid {} vs low {}",
            mid.mean_access_time,
            low.mean_access_time
        );
    }

    #[test]
    fn adaptive_threshold_lands_near_rho_prime() {
        let mut cfg = quick_cfg();
        cfg.policy = Policy::Adaptive;
        let r = run(&cfg, 3);
        // rho' using twin h': (1−h′)·λ·s̄/b.
        let rho_prime = (1.0 - r.twin_h_prime) * 30.0 * 1.0 / 60.0;
        assert!(
            (r.mean_threshold - rho_prime).abs() < 0.07,
            "adaptive {} vs rho' {}",
            r.mean_threshold,
            rho_prime
        );
    }
}
