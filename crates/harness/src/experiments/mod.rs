//! The experiment implementations (E1–E22). Each module exposes a
//! `render()` returning the full plain-text report, plus structured data
//! functions used by the integration tests and benches.

pub mod e10_ablation;
pub mod e11_wireless;
pub mod e12_caches;
pub mod e13_cluster;
pub mod e14_coop;
pub mod e15_scale;
pub mod e16_delta;
pub mod e17_shard;
pub mod e18_obs;
pub mod e19_trace;
pub mod e1_fig1;
pub mod e20_delayed;
pub mod e21_replay;
pub mod e22_chaos;
pub mod e2_fig2;
pub mod e3_fig3;
pub mod e4_modelb;
pub mod e5_compare;
pub mod e6_estimate;
pub mod e7_validate;
pub mod e8_endtoend;
pub mod e9_impedance;

/// The paper's global parameters: λ = 30 everywhere; Figures 2/3 use
/// s̄ = 1, b = 50; every figure has panels h′ = 0.0 and h′ = 0.3.
pub mod paper {
    /// λ used in every figure.
    pub const LAMBDA: f64 = 30.0;
    /// b of Figures 2 and 3.
    pub const FIG23_BANDWIDTH: f64 = 50.0;
    /// s̄ of Figures 2 and 3.
    pub const FIG23_MEAN_SIZE: f64 = 1.0;
    /// The two panels.
    pub const H_PRIMES: [f64; 2] = [0.0, 0.3];
    /// The `b` series of Figure 1.
    pub const FIG1_BANDWIDTHS: [f64; 9] =
        [50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0];
    /// The `p` series of Figures 2 and 3.
    pub const FIG23_PROBS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
}
