//! E17 — strong scaling of the sharded parallel cluster engine.
//!
//! E15 made wide fabrics affordable by replacing the per-event scan with
//! the indexed scheduler; the event loop itself was still one core. This
//! experiment drives the same cooperative mesh through the **sharded**
//! driver (`ClusterSim::run_sharded`): the topology is partitioned into
//! per-thread shards, each running its own scheduler, synchronised with
//! conservative time windows whose lookahead is the mesh's link
//! propagation latency (`Topology::mesh_with_latency` — the physically
//! honest WAN model, and the parallelism budget).
//!
//! Per fabric size the sweep runs every shard count and asserts the
//! reports are **bit-identical** — the determinism contract: sharding is
//! an executor choice, never a modelling choice. The stdout report
//! therefore carries only seeded, deterministic metrics (topology shape,
//! edge cut, lookahead, hit ratios, backbone load) and is byte-stable
//! run-to-run; wall-clock timings and the strong-scaling speedup go to
//! stderr, where the machine's core count decides what they look like.
//! The 512-proxy point (~131k PS links) is the fabric the single-threaded
//! sweeps never attempted.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, ShardPlan, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy};
use simcore::Json;
use std::time::Instant;
use workload::synth_web::SynthWebConfig;

const SEED: u64 = 17;
const LAMBDA: f64 = 14.0;

/// Propagation latency on every mesh link (seconds of virtual time) —
/// the conservative lookahead each window runs on.
pub const LATENCY: f64 = 0.05;

/// Fabric sizes of the full sweep: the E15 ceiling, and the point past
/// it that the single-threaded driver made impractical.
pub const SIZES: [usize; 2] = [256, 512];

/// Shard counts of the strong-scaling ladder.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Total requests across the cluster at full size.
pub const TOTAL_REQUESTS: usize = 96_000;

/// Reduced sweep for the CI smoke invocation (`--smoke`): one modest
/// fabric, shards ∈ {1, 2}, so the parallel path is exercised on every
/// push without dominating the pipeline.
pub const SMOKE_SIZES: [usize; 1] = [96];
pub const SMOKE_SHARD_COUNTS: [usize; 2] = [1, 2];
pub const SMOKE_TOTAL_REQUESTS: usize = 12_000;

/// The E15 mesh with propagation latency: backbone scaled with the proxy
/// count, every link carrying [`LATENCY`].
fn latency_mesh(n_proxies: usize) -> Topology {
    Topology::mesh_with_latency(n_proxies, 50.0, 25.0 * n_proxies as f64, 45.0, LATENCY)
}

fn workload(n_proxies: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|_| SynthWebConfig { lambda: LAMBDA, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(99),
        delayed: Default::default(),
    }
}

fn requests_per_proxy(n_proxies: usize, total_requests: usize) -> usize {
    (total_requests / n_proxies).max(60)
}

fn config(n_proxies: usize, total_requests: usize) -> ClusterConfig<'static> {
    let requests = requests_per_proxy(n_proxies, total_requests);
    ClusterConfig {
        topology: latency_mesh(n_proxies),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: workload(n_proxies),
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

/// Runs one fabric at one shard count; returns the report and wall time.
pub fn run_at(n_proxies: usize, shards: usize, total_requests: usize) -> (ClusterReport, f64) {
    let config = config(n_proxies, total_requests);
    let sim = ClusterSim::new(&config);
    let start = Instant::now();
    let report = if shards == 1 { sim.run(SEED) } else { sim.run_sharded(SEED, shards) };
    (report, start.elapsed().as_secs_f64())
}

/// Full-size report.
pub fn render() -> String {
    render_with(&SIZES, &SHARD_COUNTS, TOTAL_REQUESTS)
}

/// Reduced CI report.
pub fn render_smoke() -> String {
    render_with(&SMOKE_SIZES, &SMOKE_SHARD_COUNTS, SMOKE_TOTAL_REQUESTS)
}

/// Report over caller-chosen fabric sizes, shard ladder, and budget.
pub fn render_with(sizes: &[usize], shard_counts: &[usize], total_requests: usize) -> String {
    render_with_rows(sizes, shard_counts, total_requests).0
}

/// Like [`render_with`], also returning the wall-clock ladder as
/// structured rows for the `e17_strong_scaling` section of
/// `OBS_cluster.json` — the same numbers the stderr lines carry, which
/// is why stdout stays byte-identical: timings never print there.
pub fn render_with_rows(
    sizes: &[usize],
    shard_counts: &[usize],
    total_requests: usize,
) -> (String, Json) {
    let mut rows: Vec<Json> = Vec::new();
    let mut out = String::new();
    out.push_str("# E17 — sharded parallel cluster engine (strong scaling)\n");
    out.push_str("# conservative time windows over per-shard event loops;\n");
    out.push_str(&format!(
        "# mesh link latency {LATENCY} (= the lookahead); total request budget per run: \
         {total_requests}\n\n"
    ));

    let mut sweep = Table::new(
        "Shard ladder per fabric (every row's report is bit-identical to shards=1)",
        &[
            "proxies",
            "links",
            "shards",
            "edge cut",
            "lookahead",
            "hit ratio",
            "t mean",
            "backbone B/req",
            "peer%",
            "epochs",
        ],
    );
    for &n in sizes {
        let topology = latency_mesh(n);
        let requests_total = (requests_per_proxy(n, total_requests) * n) as u64;
        // Untimed warm-up: the first run at a new fabric size pays
        // allocator growth and page faults that later runs do not; timing
        // it as the 1-shard baseline would flatter every speedup ratio.
        let (_, warm_wall) = run_at(n, 1, total_requests);
        eprintln!("e17: {n} proxies, warm-up: {warm_wall:.2}s wall (discarded)");
        let mut baseline: Option<(ClusterReport, f64)> = None;
        for &shards in shard_counts {
            let (r, wall) = run_at(n, shards, total_requests);
            // Wall-clock goes to stderr and the JSON rows: stdout must be
            // byte-identical run to run (the repo's determinism invariant).
            let speedup = match &baseline {
                None => {
                    eprintln!(
                        "e17: {n} proxies, {shards} shard(s): {wall:.2}s wall \
                         ({:.1} kreq/s)",
                        requests_total as f64 / wall / 1e3
                    );
                    baseline = Some((r.clone(), wall));
                    None
                }
                Some((oracle, base_wall)) => {
                    eprintln!(
                        "e17: {n} proxies, {shards} shard(s): {wall:.2}s wall \
                         ({:.1} kreq/s, {:.2}x vs 1 shard)",
                        requests_total as f64 / wall / 1e3,
                        base_wall / wall
                    );
                    // The determinism contract, enforced on every cell.
                    assert_eq!(
                        &r, oracle,
                        "{n}-proxy mesh at {shards} shards diverged from the oracle"
                    );
                    Some(base_wall / wall)
                }
            };
            rows.push(
                Json::obj()
                    .set("proxies", Json::num(n as f64))
                    .set("links", Json::num(r.links.len() as f64))
                    .set("shards", Json::num(shards as f64))
                    .set("requests", Json::num(requests_total as f64))
                    .set("wall_secs", Json::num(wall))
                    .set("kreq_per_sec", Json::num(requests_total as f64 / wall / 1e3))
                    .set("speedup_vs_1shard", speedup.map_or(Json::Null, Json::num)),
            );
            let plan = ShardPlan::partition(&topology, shards);
            let hit = r.nodes.iter().map(|node| node.hit_ratio).sum::<f64>() / r.nodes.len() as f64;
            let peer_share = match &r.coop {
                Some(c) => {
                    let backbone_jobs = r.link("backbone").map_or(0, |l| l.jobs_completed);
                    100.0 * c.peer_fetches as f64 / (c.peer_fetches + backbone_jobs).max(1) as f64
                }
                None => 0.0,
            };
            sweep.row(vec![
                n.to_string(),
                r.links.len().to_string(),
                shards.to_string(),
                plan.edge_cut(&topology).to_string(),
                f(plan.lookahead(), 3),
                f(hit, 3),
                f(r.mean_access_time, 5),
                f(r.link_bytes("backbone") / requests_total as f64, 3),
                f(peer_share, 1),
                r.coop.as_ref().map_or("-".into(), |c| c.router.digest_epochs.to_string()),
            ]);
        }
    }
    out.push_str(&sweep.render());

    out.push_str(
        "\nReading: the shard ladder changes the executor, never the answer --\n\
         every row is asserted bit-identical to the single-threaded oracle\n\
         before it is printed, with real conservative windows (lookahead =\n\
         the mesh propagation latency) between barrier exchanges whenever\n\
         shards > 1. Speedup is printed to stderr because it is a property\n\
         of the machine (core count, thread scheduling), not of the model:\n\
         on a multi-core host the 256-proxy mesh is the regime where 8\n\
         shards pay off, and the 512-proxy point -- ~131k PS links, beyond\n\
         what the single-threaded sweeps attempted -- completes either way.\n\
         The edge cut is dominated by peer links between blocks (a full\n\
         mesh crosses a (k-1)/k share of them at k shards; access links\n\
         never cross), but cut *links* are not cut *traffic*: a window's\n\
         mailbox volume is proportional to the cross-shard transfers that\n\
         actually fire in it, bounded by the workload rate times the\n\
         lookahead, not by the topology's link count.\n",
    );
    let section = Json::obj()
        .set("experiment", Json::str("e17_shard"))
        .set("lookahead", Json::num(LATENCY))
        .set("total_requests", Json::num(total_requests as f64))
        .set("rows", Json::Arr(rows));
    (out, section)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_smoke_contains_all_sections() {
        let report = render_smoke();
        assert!(report.contains("strong scaling"));
        assert!(report.contains("Shard ladder"));
        assert!(report.contains("bit-identical"));
    }

    #[test]
    fn e17_mesh_admits_a_positive_lookahead() {
        let topology = latency_mesh(SMOKE_SIZES[0]);
        for &shards in &SHARD_COUNTS {
            let plan = ShardPlan::partition(&topology, shards);
            if shards > 1 {
                assert_eq!(plan.lookahead(), LATENCY, "{shards} shards");
                assert!(plan.edge_cut(&topology) > 0);
            }
        }
    }

    #[test]
    fn shard_ladder_is_deterministic_at_smoke_scale() {
        let (one, _) = run_at(SMOKE_SIZES[0], 1, SMOKE_TOTAL_REQUESTS);
        let (two, _) = run_at(SMOKE_SIZES[0], 2, SMOKE_TOTAL_REQUESTS);
        assert_eq!(one, two, "2-shard windowed run diverged from the oracle");
    }
}
