//! E14 — cooperative edge caching across the cluster.
//!
//! PR 1's cluster showed *where* the queue lives decides what prefetching
//! costs; every proxy still pulled its misses straight from the origin,
//! so identical objects crossed the backbone once per proxy. This
//! experiment turns on the `coop` layer (consistent-hash placement +
//! Bloom digests + peer routing) over peer-meshed topologies:
//!
//! 1. **Headline** — cooperative vs plain adaptive on a two-tier + peer
//!    mesh with identical Zipf workloads: backbone bytes drop at equal
//!    hit ratio, the saved transfers riding the peer links;
//! 2. **Sweep** — digest epoch × placement policy × prefetch threshold
//!    against aggregate backbone load: long epochs trade exchange traffic
//!    for staleness false hits, and speculative volume amplifies the
//!    redundancy cooperation removes;
//! 3. **Mesh vs ring** — the same cooperation over a peer ring (fewer
//!    links, multi-hop peer transfers);
//! 4. **Load-aware placement** — heterogeneous per-proxy load with the
//!    migration policy on: virtual nodes drain from the hot proxy.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy};
use simcore::par::par_map_auto;
use workload::synth_web::SynthWebConfig;

const REQUESTS: usize = 30_000;
const WARMUP: usize = 6_000;
const SEED: u64 = 14;

/// Reduced problem size for the CI smoke invocation (`--smoke`).
pub const SMOKE_REQUESTS: usize = 3_000;
pub const SMOKE_WARMUP: usize = 600;

/// Identical item universe at every proxy (shared structure seed): the
/// maximally redundant deployment cooperation is built for.
pub fn base_workload(lambdas: &[f64], policy: ProxyPolicy) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: lambdas
            .iter()
            .map(|&lambda| SynthWebConfig { lambda, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(99),
        delayed: Default::default(),
    }
}

/// Runs the closed loop over `topology`, cooperatively when `coop` is set.
pub fn run_mode(
    topology: Topology,
    base: AdaptiveWorkload,
    coop: Option<CoopConfig>,
    requests: usize,
    warmup: usize,
) -> ClusterReport {
    let workload = match coop {
        Some(c) => Workload::Cooperative(CooperativeWorkload { base, coop: c }),
        None => Workload::Adaptive(base),
    };
    let config = ClusterConfig {
        topology,
        workload,
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    ClusterSim::new(&config).run(SEED)
}

fn digest(epoch: f64) -> DigestConfig {
    DigestConfig { epoch, bits_per_entry: 10, hashes: 4 }
}

fn mean_hit_ratio(report: &ClusterReport) -> f64 {
    report.nodes.iter().map(|n| n.hit_ratio).sum::<f64>() / report.nodes.len() as f64
}

/// Full-size report.
pub fn render() -> String {
    render_with(REQUESTS, WARMUP)
}

/// Report at a caller-chosen problem size (the CI smoke run uses
/// [`SMOKE_REQUESTS`]).
pub fn render_with(requests: usize, warmup: usize) -> String {
    let n = 3;
    let lambdas = vec![14.0; n];
    let mesh = || Topology::mesh(n, 50.0, 70.0, 45.0);

    let mut out = String::new();
    out.push_str("# E14 — cooperative edge caching and request routing\n");
    out.push_str("# peers answer each other's misses via Bloom digests over a\n");
    out.push_str("# consistent-hash ring; peer traffic bypasses the backbone\n\n");

    // 1. Headline: cooperative vs adaptive at equal hit ratio.
    let adaptive =
        run_mode(mesh(), base_workload(&lambdas, ProxyPolicy::Adaptive), None, requests, warmup);
    let coop_cfg = CoopConfig { digest: digest(2.0), ..CoopConfig::default() };
    let cooperative = run_mode(
        mesh(),
        base_workload(&lambdas, ProxyPolicy::Adaptive),
        Some(coop_cfg),
        requests,
        warmup,
    );
    let mut headline = Table::new(
        "Cooperation on a two-tier + peer mesh (3 proxies, identical Zipf workloads)",
        &["mode", "backbone bytes", "peer bytes", "hit ratio", "t mean", "peer fetches"],
    );
    for (name, r) in [("adaptive (no coop)", &adaptive), ("cooperative", &cooperative)] {
        let peer_bytes: f64 = r.nodes.iter().map(|node| node.peer_bytes.unwrap_or(0.0)).sum();
        headline.row(vec![
            name.to_string(),
            f(r.link_bytes("backbone"), 0),
            f(peer_bytes, 0),
            f(mean_hit_ratio(r), 3),
            f(r.mean_access_time, 5),
            r.coop.map_or("-".into(), |c| c.peer_fetches.to_string()),
        ]);
    }
    out.push_str(&headline.render());
    let saved =
        100.0 * (1.0 - cooperative.link_bytes("backbone") / adaptive.link_bytes("backbone"));
    out.push_str(&format!(
        "\nBackbone relief: {saved:.1}% fewer origin-side bytes at equal hit ratio.\n\n"
    ));

    // 2. Digest epoch x placement policy x prefetch threshold.
    let epochs = [0.5, 2.0, 8.0];
    let placements = [
        ("static", PlacementPolicy::Static),
        ("load-aware", PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 }),
    ];
    let policies = [
        ("no prefetch", ProxyPolicy::NoPrefetch),
        ("fixed 0.3", ProxyPolicy::FixedThreshold(0.3)),
        ("adaptive", ProxyPolicy::Adaptive),
    ];
    let grid: Vec<(usize, usize, usize)> = (0..epochs.len())
        .flat_map(|e| {
            (0..placements.len()).flat_map(move |pl| (0..policies.len()).map(move |po| (e, pl, po)))
        })
        .collect();
    let reports = par_map_auto(&grid, |_, &(e, pl, po)| {
        let cfg = CoopConfig {
            placement: placements[pl].1,
            digest: digest(epochs[e]),
            ..CoopConfig::default()
        };
        run_mode(mesh(), base_workload(&lambdas, policies[po].1), Some(cfg), requests, warmup)
    });
    let mut sweep = Table::new(
        "Digest epoch x placement x prefetch policy vs aggregate backbone load",
        &["epoch", "placement", "policy", "backbone bytes", "peer%", "false hits", "hit ratio"],
    );
    for (&(e, pl, po), r) in grid.iter().zip(&reports) {
        let coop = r.coop.expect("cooperative run");
        // Every origin transfer crosses the backbone exactly once, so the
        // peer share of all transfers is peer / (peer + backbone).
        let backbone_jobs = r.link("backbone").map_or(0, |l| l.jobs_completed);
        let peer_share =
            100.0 * coop.peer_fetches as f64 / (coop.peer_fetches + backbone_jobs).max(1) as f64;
        sweep.row(vec![
            f(epochs[e], 1),
            placements[pl].0.to_string(),
            policies[po].0.to_string(),
            f(r.link_bytes("backbone"), 0),
            f(peer_share, 1),
            coop.peer_false_hits.to_string(),
            f(mean_hit_ratio(r), 3),
        ]);
    }
    out.push_str(&sweep.render());

    // 3. Mesh vs ring — at 4 proxies, where the fabrics actually differ
    // (a 3-proxy ring *is* a mesh: every pair is adjacent).
    let m = 4;
    let wide = vec![14.0; m];
    let fabrics = [
        ("mesh", m * (m - 1) / 2, Topology::mesh(m, 50.0, 70.0, 45.0)),
        ("ring", m, Topology::ring(m, 50.0, 70.0, 45.0)),
    ];
    let mut topo = Table::new(
        "Peer fabric at 4 proxies: full mesh vs ring (same cooperation settings)",
        &["fabric", "peer links", "backbone bytes", "t mean", "peer fetches"],
    );
    for (name, links, topology) in fabrics {
        let r = run_mode(
            topology,
            base_workload(&wide, ProxyPolicy::Adaptive),
            Some(CoopConfig { digest: digest(2.0), ..CoopConfig::default() }),
            requests,
            warmup,
        );
        topo.row(vec![
            name.to_string(),
            links.to_string(),
            f(r.link_bytes("backbone"), 0),
            f(r.mean_access_time, 5),
            r.coop.map_or("-".into(), |c| c.peer_fetches.to_string()),
        ]);
    }
    out.push('\n');
    out.push_str(&topo.render());

    // 4. Load-aware placement under heterogeneous load.
    let skewed = [6.0, 14.0, 28.0];
    let migrating = run_mode(
        mesh(),
        base_workload(&skewed, ProxyPolicy::Adaptive),
        Some(CoopConfig {
            placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
            digest: digest(2.0),
            ..CoopConfig::default()
        }),
        requests,
        warmup,
    );
    let frozen = run_mode(
        mesh(),
        base_workload(&skewed, ProxyPolicy::Adaptive),
        Some(CoopConfig { digest: digest(2.0), ..CoopConfig::default() }),
        requests,
        warmup,
    );
    let mut rebal = Table::new(
        "Placement under heterogeneous load (lambda = 6 / 14 / 28)",
        &["placement", "vnode migrations", "backbone bytes", "t mean", "max rho"],
    );
    for (name, r) in [("static", &frozen), ("load-aware", &migrating)] {
        rebal.row(vec![
            name.to_string(),
            r.coop.map_or("-".into(), |c| c.router.vnode_migrations.to_string()),
            f(r.link_bytes("backbone"), 0),
            f(r.mean_access_time, 5),
            f(r.max_link_utilisation(), 3),
        ]);
    }
    out.push('\n');
    out.push_str(&rebal.render());

    out.push_str(
        "\nReading: with identical hot sets behind every proxy, the digests turn\n\
         redundant origin fetches into peer fetches -- the backbone sheds load\n\
         while hit ratios stay put, because cooperation only re-routes misses.\n\
         Long digest epochs make peers advertise entries they have already\n\
         evicted, so false hits climb on top of the Bloom filter's small\n\
         structural floor, and every false hit pays the peer path *and* the\n\
         origin path. Prefetching raises the stakes in\n\
         both directions: speculative fetches are exactly the redundant bytes\n\
         cooperation removes. Under skewed load the load-aware policy drains\n\
         virtual nodes off the hot proxy; the ring buys cooperation with n\n\
         links instead of n(n-1)/2 at a small multi-hop latency premium.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 8_000;
    const W: usize = 1_600;

    #[test]
    fn render_contains_all_sections() {
        let report = render_with(SMOKE_REQUESTS, SMOKE_WARMUP);
        assert!(report.contains("Backbone relief"));
        assert!(report.contains("Digest epoch x placement x prefetch policy"));
        assert!(report.contains("full mesh vs ring"));
        assert!(report.contains("heterogeneous load"));
    }

    #[test]
    fn cooperation_relieves_the_backbone() {
        let lambdas = vec![14.0; 3];
        let mesh = || Topology::mesh(3, 50.0, 70.0, 45.0);
        let adaptive = run_mode(mesh(), base_workload(&lambdas, ProxyPolicy::Adaptive), None, N, W);
        let coop = run_mode(
            mesh(),
            base_workload(&lambdas, ProxyPolicy::Adaptive),
            Some(CoopConfig { digest: digest(2.0), ..CoopConfig::default() }),
            N,
            W,
        );
        assert!(
            coop.link_bytes("backbone") < adaptive.link_bytes("backbone"),
            "coop backbone {} vs adaptive {}",
            coop.link_bytes("backbone"),
            adaptive.link_bytes("backbone")
        );
    }

    #[test]
    fn longer_epochs_cause_more_false_hits() {
        let lambdas = vec![14.0; 3];
        let run_at = |epoch| {
            run_mode(
                Topology::mesh(3, 50.0, 70.0, 45.0),
                base_workload(&lambdas, ProxyPolicy::Adaptive),
                Some(CoopConfig { digest: digest(epoch), ..CoopConfig::default() }),
                N,
                W,
            )
        };
        let short = run_at(0.5).coop.unwrap();
        let long = run_at(10.0).coop.unwrap();
        assert!(
            long.peer_false_hits > short.peer_false_hits,
            "false hits: epoch 10 {} vs epoch 0.5 {}",
            long.peer_false_hits,
            short.peer_false_hits
        );
    }
}
