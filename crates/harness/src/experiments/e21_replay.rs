//! E21 — streaming trace replay: record a synthetic cluster run, scale it
//! by superposition, and replay it through bigger meshes without ever
//! materialising the trace.
//!
//! The pipeline under test is the full `.events` path:
//!
//! 1. **Record** — an adaptive Markov-predictor mesh runs with the
//!    request recorder attached ([`ClusterSim::run_recorded`]); the
//!    merged trace is written to a versioned `.events` file
//!    ([`E21_SAMPLE`], uploaded as a CI artifact).
//! 2. **Scale** — [`TraceScaler`] superposes K time-dilated copies with
//!    disjoint key spaces, for K in [`SCALES`]: one capture becomes a
//!    K×-heavier workload for a K×-bigger mesh.
//! 3. **Replay** — each scaled trace drives [`Workload::Trace`] through
//!    the sharded conservative-window driver. Every proxy streams its
//!    lane of the trace in fixed-size chunks, so peak resident trace
//!    bytes stay pinned at one chunk regardless of trace length.
//!
//! Two headline booleans gate the schema check:
//!
//! * `replay_bit_identical` — the ×1 replay reproduces the recorded
//!   source run's [`ClusterReport`] **bit-for-bit** (derived `PartialEq`,
//!   no tolerance);
//! * `peak_resident_ok` — no replay stream ever held more than one chunk
//!   of records resident.
//!
//! Stdout carries only virtual-time-deterministic numbers; wall-clock
//! throughput (`records_per_sec`) goes to stderr and the artifact, where
//! the sentinel's rate-suffix rule keeps it out of the tolerance bands.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim, DelayedHitsConfig,
    ProxyPolicy, ReplayStats, Topology, TraceSource, TraceWorkload, Workload,
};
use simcore::Json;
use workload::events::{write_events_file, RECORD_BYTES};
use workload::synth_web::SynthWebConfig;
use workload::{TraceRecord, TraceScaler};

const SEED: u64 = 21;

/// Superposition factors: ×1 is the bit-identity pin, ×4 and ×16 stress
/// the scaler and the bigger meshes.
pub const SCALES: [u32; 3] = [1, 4, 16];

/// Records each replay stream holds resident at a time.
pub const CHUNK_RECORDS: usize = 1024;

/// The recorded `.events` sample CI uploads as a build artifact.
pub const E21_SAMPLE: &str = "E21_trace_sample.events";

/// Full sweep: a 16-proxy capture replayed up to a 256-proxy mesh.
pub const FULL: (usize, usize, usize) = (16, 8, 32_000);

/// Reduced CI sweep (`--smoke`): a 2-proxy capture replayed up to a
/// 32-proxy mesh, still through the windowed driver.
pub const SMOKE: (usize, usize, usize) = (2, 2, 1_600);

/// The latency mesh both sides run on. Bandwidth scales with the proxy
/// count so the backbone's per-proxy share stays constant across scales.
fn mesh(n_proxies: usize) -> Topology {
    Topology::mesh_with_latency(n_proxies, 60.0, 20.0 * n_proxies as f64, 45.0, 0.05)
}

/// The recording side: heterogeneous proxies under the learned Markov
/// predictor — the only candidate source a trace can replay.
fn source_workload(n_proxies: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|i| SynthWebConfig {
                lambda: 18.0 + 3.0 * (i % 4) as f64,
                n_items: 120,
                link_skew: 0.25,
                ..SynthWebConfig::default()
            })
            .collect(),
        cache_capacity: 24,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Markov1,
        shared_structure_seed: None,
        delayed: DelayedHitsConfig::default(),
    }
}

fn source_config(n_proxies: usize, total: usize) -> ClusterConfig<'static> {
    let requests = (total / n_proxies).max(60);
    ClusterConfig {
        topology: mesh(n_proxies),
        workload: Workload::Adaptive(source_workload(n_proxies)),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

/// Request-weighted cache hit ratio over all proxies.
fn hit_ratio(report: &ClusterReport) -> f64 {
    let total: u64 = report.nodes.iter().map(|n| n.measured_requests).sum();
    if total == 0 {
        return 0.0;
    }
    report.nodes.iter().map(|n| n.hit_ratio * n.measured_requests as f64).sum::<f64>()
        / total as f64
}

/// Backbone utilisation — the paper's network-load axis.
fn backbone_load(report: &ClusterReport) -> f64 {
    report.link("backbone").map_or(0.0, |l| l.utilisation)
}

/// One replay at scale `k`: the replayed report, the stream accounting,
/// and the wall-clock the throughput number is derived from.
pub struct ScaleRun {
    pub scale: u32,
    pub n_proxies: usize,
    pub report: ClusterReport,
    pub stats: ReplayStats,
    pub wall_secs: f64,
}

/// The full experiment: source run + one replay per scale.
pub struct Outcome {
    pub n_base: usize,
    pub shards: usize,
    pub source: ClusterReport,
    pub trace: Vec<TraceRecord>,
    pub runs: Vec<ScaleRun>,
}

impl Outcome {
    /// The ×1 replay reproduces the recorded run bit-for-bit.
    pub fn replay_bit_identical(&self) -> bool {
        self.runs.iter().any(|r| r.scale == 1 && r.report == self.source)
    }

    /// No replay stream held more than one chunk resident.
    pub fn peak_resident_ok(&self) -> bool {
        self.runs.iter().all(|r| {
            r.stats.peak_resident_bytes > 0
                && r.stats.peak_resident_bytes <= CHUNK_RECORDS * RECORD_BYTES
        })
    }
}

/// Records the seed trace and replays its scaled superpositions.
pub fn run(n_base: usize, shards: usize, total: usize) -> Outcome {
    let config = source_config(n_base, total);
    let (source, trace) = ClusterSim::new(&config).run_recorded(SEED, shards);

    let runs = SCALES
        .iter()
        .map(|&scale| {
            let scaler = TraceScaler {
                copies: scale,
                dilation_step: 0.03,
                key_stride: 1 << 32,
                client_stride: n_base as u32,
            };
            let scaled = scaler.scale_records(&trace);
            let n_proxies = n_base * scale as usize;
            let mut w = TraceWorkload::replaying(
                &source_workload(n_base),
                TraceSource::from_records(&scaled).expect("recorded trace encodes"),
            );
            w.chunk_records = CHUNK_RECORDS;
            // ×1 must match the source run exactly, including the
            // per-request denominators; bigger meshes get headroom and
            // stop when their lane of the trace runs dry.
            let (requests, warmup) = if scale == 1 {
                (config.requests_per_proxy, config.warmup_per_proxy)
            } else {
                (scaled.len(), config.warmup_per_proxy)
            };
            let replay_config = ClusterConfig {
                topology: mesh(n_proxies),
                workload: Workload::Trace(w),
                requests_per_proxy: requests,
                warmup_per_proxy: warmup,
            };
            let t0 = std::time::Instant::now();
            let (report, stats) = ClusterSim::new(&replay_config).run_replayed(SEED, shards);
            ScaleRun { scale, n_proxies, report, stats, wall_secs: t0.elapsed().as_secs_f64() }
        })
        .collect();

    Outcome { n_base, shards, source, trace, runs }
}

/// Full-size report.
pub fn render() -> String {
    let (n, shards, total) = FULL;
    render_with(n, shards, total).0
}

/// Reduced CI report.
pub fn render_smoke() -> String {
    let (n, shards, total) = SMOKE;
    render_with(n, shards, total).0
}

/// Runs one sweep; returns the report text and the `e21_replay` artifact
/// section, and writes the recorded sample to [`E21_SAMPLE`].
pub fn render_with(n_base: usize, shards: usize, total: usize) -> (String, Json) {
    let t0 = std::time::Instant::now();
    let outcome = run(n_base, shards, total);

    if let Err(e) = write_events_file(std::path::Path::new(E21_SAMPLE), &outcome.trace) {
        eprintln!("e21: could not write {E21_SAMPLE}: {e}");
    }

    let mut out = String::new();
    out.push_str("# E21 — streaming trace replay: record, scale, replay\n");
    out.push_str(&format!(
        "# {n_base}-proxy source mesh, {shards} shard(s), {} records captured;\n\
         # scaled superpositions replayed through meshes up to {} proxies,\n\
         # {CHUNK_RECORDS}-record stream chunks ({} bytes resident ceiling per stream)\n\n",
        outcome.trace.len(),
        n_base * SCALES[SCALES.len() - 1] as usize,
        CHUNK_RECORDS * RECORD_BYTES,
    ));

    let src_hit = hit_ratio(&outcome.source);
    let src_load = backbone_load(&outcome.source);
    let mut table = Table::new(
        "Replay at each superposition factor (deltas vs the synthetic source run)",
        &[
            "scale",
            "proxies",
            "records",
            "resident bytes",
            "hit ratio",
            "Δ hit",
            "backbone load",
            "Δ load",
        ],
    );
    for r in &outcome.runs {
        table.row(vec![
            format!("x{}", r.scale),
            r.n_proxies.to_string(),
            r.stats.records_replayed.to_string(),
            r.stats.peak_resident_bytes.to_string(),
            f(hit_ratio(&r.report), 4),
            format!("{:+.4}", hit_ratio(&r.report) - src_hit),
            f(backbone_load(&r.report), 4),
            format!("{:+.4}", backbone_load(&r.report) - src_load),
        ]);
    }
    out.push_str(&table.render());

    out.push_str(&format!(
        "\nSource run: hit ratio {}, backbone load {}. The x1 replay is\n\
         bit-identical to it: {}. Peak resident trace bytes stayed within one\n\
         chunk on every replay: {}. At higher scales the per-copy key spaces\n\
         are disjoint, so caches see K independent populations: per-proxy\n\
         behaviour stays in the source's regime while the fabric carries K\n\
         times the records.\n",
        f(src_hit, 4),
        f(src_load, 4),
        outcome.replay_bit_identical(),
        outcome.peak_resident_ok(),
    ));

    // Wall-clock telemetry stays off stdout, as in E17–E20.
    for r in &outcome.runs {
        eprintln!(
            "e21: x{} replay of {} records on {} proxies: {:.2}s wall ({:.0} records/s)",
            r.scale,
            r.stats.records_replayed,
            r.n_proxies,
            r.wall_secs,
            r.stats.records_replayed as f64 / r.wall_secs.max(1e-9)
        );
    }
    eprintln!("e21: total {:.2}s wall", t0.elapsed().as_secs_f64());

    let section = section(&outcome);
    (out, section)
}

fn scale_json(r: &ScaleRun, source_hit: f64, source_load: f64) -> Json {
    Json::obj()
        .set("scale", Json::num(f64::from(r.scale)))
        .set("n_proxies", Json::num(r.n_proxies as f64))
        .set("records_replayed", Json::num(r.stats.records_replayed as f64))
        .set("records_per_sec", Json::num(r.stats.records_replayed as f64 / r.wall_secs.max(1e-9)))
        .set("peak_resident_bytes", Json::num(r.stats.peak_resident_bytes as f64))
        .set("hit_ratio", Json::num(hit_ratio(&r.report)))
        .set("hit_ratio_delta", Json::num(hit_ratio(&r.report) - source_hit))
        .set("backbone_utilisation", Json::num(backbone_load(&r.report)))
        .set("network_load_delta", Json::num(backbone_load(&r.report) - source_load))
}

/// The machine-readable `e21_replay` section: source summary, one row per
/// scale, and the two headline booleans the schema check gates on.
pub fn section(outcome: &Outcome) -> Json {
    let src_hit = hit_ratio(&outcome.source);
    let src_load = backbone_load(&outcome.source);
    Json::obj()
        .set("experiment", Json::str("e21_replay"))
        .set("n_base", Json::num(outcome.n_base as f64))
        .set("shards", Json::num(outcome.shards as f64))
        .set("chunk_records", Json::num(CHUNK_RECORDS as f64))
        .set(
            "source",
            Json::obj()
                .set("records", Json::num(outcome.trace.len() as f64))
                .set("hit_ratio", Json::num(src_hit))
                .set("backbone_utilisation", Json::num(src_load)),
        )
        .set("scales", Json::arr(outcome.runs.iter().map(|r| scale_json(r, src_hit, src_load))))
        .set("replay_bit_identical", Json::Bool(outcome.replay_bit_identical()))
        .set("peak_resident_ok", Json::Bool(outcome.peak_resident_ok()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pins_identity_and_memory() {
        let (n, shards, total) = SMOKE;
        let outcome = run(n, shards, total);
        assert!(
            outcome.replay_bit_identical(),
            "the x1 replay must reproduce the recorded source run bit-for-bit"
        );
        assert!(
            outcome.peak_resident_ok(),
            "replay streams must never hold more than one chunk resident"
        );
        for r in &outcome.runs {
            assert_eq!(
                r.stats.records_replayed,
                outcome.trace.len() as u64 * u64::from(r.scale),
                "x{} replay must consume its whole scaled trace",
                r.scale
            );
        }
        let section = section(&outcome);
        assert_eq!(section.get("replay_bit_identical"), Some(&Json::Bool(true)));
        assert_eq!(section.get("peak_resident_ok"), Some(&Json::Bool(true)));
        assert_eq!(
            section.get("scales").and_then(Json::as_arr).map(<[Json]>::len),
            Some(SCALES.len())
        );
    }

    #[test]
    fn smoke_report_is_deterministic() {
        let (n, shards, total) = SMOKE;
        assert_eq!(render_with(n, shards, total).0, render_with(n, shards, total).0);
    }
}
