//! E3 — Figure 3: excess retrieval cost `C` against `n̄(F)`, Model A.
//!
//! Same parameters as Figure 2. `C = (ρ−ρ′)/(λ(1−ρ)(1−ρ′))` (eq 27);
//! curves for low `p` blow up as the prefetch load saturates the server —
//! the paper's "load impedance".

use crate::asciiplot::Chart;
use crate::report::{f, Table};
use prefetch_core::{ModelA, SystemParams};

use super::paper;

/// One curve: `(n̄(F), C)` for stable points only.
pub fn curve(h_prime: f64, p: f64, nf_points: usize) -> Vec<(f64, f64)> {
    let params =
        SystemParams::new(paper::LAMBDA, paper::FIG23_BANDWIDTH, paper::FIG23_MEAN_SIZE, h_prime)
            .expect("paper parameters");
    (0..=nf_points)
        .filter_map(|i| {
            let nf = 2.0 * i as f64 / nf_points as f64;
            let m = ModelA::new(params, nf, p);
            m.excess_cost().map(|c| (nf, c))
        })
        .collect()
}

/// The full panel: per `p`, its curve.
pub fn panel(h_prime: f64, nf_points: usize) -> Vec<(f64, Vec<(f64, f64)>)> {
    paper::FIG23_PROBS.iter().map(|&p| (p, curve(h_prime, p, nf_points))).collect()
}

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E3 / Figure 3 — excess retrieval cost C vs n(F) (Model A)\n");
    out.push_str("# s = 1, lambda = 30, b = 50; eq (27); unstable points omitted\n\n");
    for &h in &paper::H_PRIMES {
        let params =
            SystemParams::new(paper::LAMBDA, paper::FIG23_BANDWIDTH, paper::FIG23_MEAN_SIZE, h)
                .unwrap();
        let mut chart = Chart::new(
            format!("Figure 3 panel: h' = {h} (rho' = {:.2})", params.rho_prime()),
            (0.0, 2.0),
            (0.0, 0.1),
            72,
            21,
        );
        for (p, pts) in panel(h, 80) {
            chart.series(format!("p = {p}"), pts);
        }
        out.push_str(&chart.render());
        out.push('\n');

        let mut table = Table::new(
            format!("C at selected volumes (h' = {h})"),
            &["p", "nF=0.25", "nF=0.5", "nF=1.0", "nF=1.5", "nF=2.0"],
        );
        for &p in &paper::FIG23_PROBS {
            let mut row = vec![format!("{p:.1}")];
            for &nf in &[0.25, 0.5, 1.0, 1.5, 2.0] {
                let m = ModelA::new(params, nf, p);
                row.push(match m.excess_cost() {
                    Some(c) => f(c, 4),
                    None => "unstable".into(),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_non_negative_and_increasing() {
        for (p, pts) in panel(0.0, 40) {
            for w in pts.windows(2) {
                assert!(w[0].1 >= -1e-12, "p={p}");
                assert!(w[1].1 >= w[0].1 - 1e-12, "C must grow with volume, p={p}");
            }
        }
    }

    #[test]
    fn lower_p_costs_more() {
        // At equal volume, less-probable prefetches waste more bandwidth.
        let c_low = curve(0.0, 0.2, 40);
        let c_high = curve(0.0, 0.9, 40);
        // Compare at nf = 0.5 (index where nf==0.5).
        let at = |pts: &Vec<(f64, f64)>| {
            pts.iter().find(|(nf, _)| (*nf - 0.5).abs() < 1e-9).map(|&(_, c)| c)
        };
        let (lo, hi) = (at(&c_low).unwrap(), at(&c_high).unwrap());
        assert!(lo > hi, "p=0.2 cost {lo} vs p=0.9 cost {hi}");
    }

    #[test]
    fn hand_computed_point() {
        // C(nf=1, p=0.9, h'=0) = 0.06/(30·0.34·0.4) ≈ 0.01471.
        let pts = curve(0.0, 0.9, 80);
        let c = pts.iter().find(|(nf, _)| (*nf - 1.0).abs() < 1e-9).unwrap().1;
        assert!((c - 0.0147058823).abs() < 1e-8, "C = {c}");
    }

    #[test]
    fn informed_prefetch_costs_nothing() {
        // p = 1: utilisation unchanged → C = 0 (not in the paper's grid but
        // the limiting case of its formula).
        let params = SystemParams::paper_figure2(0.0);
        let m = ModelA::new(params, 1.5, 1.0);
        assert_eq!(m.excess_cost(), Some(0.0));
    }
}
