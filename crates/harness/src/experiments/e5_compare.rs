//! E5 — §6 model comparison: A vs AB vs B.
//!
//! Reproduces the paper's three observations:
//!
//! 1. both models stop restricting volume once `p > p_th`;
//! 2. the threshold gap is at most `1/n̄(C)`;
//! 3. all derived quantities coincide when `n̄(C) ≫ n̄(F)` — so Model A,
//!    despite its crude assumption, approximates the realistic model AB.

use crate::report::{f, Table};
use prefetch_core::model_ab::family_improvements;
use prefetch_core::{ModelA, ModelAb, ModelB, SystemParams};

/// Convergence data: for each `n̄(C)`, `(G_A, G_AB(mid), G_B)`.
pub fn convergence(params: SystemParams, n_f: f64, p: f64) -> Vec<(f64, f64, f64, f64)> {
    [2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0]
        .iter()
        .filter_map(|&nc| {
            let (a, mid, b) = family_improvements(params, n_f, p, nc);
            match (a, mid, b) {
                (Some(a), Some(mid), Some(b)) => Some((nc, a, mid, b)),
                _ => None,
            }
        })
        .collect()
}

pub fn render() -> String {
    let params = SystemParams::paper_figure2(0.3);
    let (n_f, p) = (0.8, 0.8); // n̄F·p = 0.64 ≤ f′ = 0.7 (eq 6 consistent)
    let mut out = String::new();
    out.push_str("# E5 — prefetch-cache interaction models compared (paper §6)\n\n");

    let mut table = Table::new(
        format!("G under A / AB(mid) / B at h'=0.3, n(F)={n_f}, p={p}"),
        &["n(C)", "G(A)", "G(AB mid)", "G(B)", "|G(B)-G(A)|", "pth gap"],
    );
    for (nc, a, mid, b) in convergence(params, n_f, p) {
        let gap =
            ModelB::new(params, n_f, p, nc).threshold() - ModelA::new(params, n_f, p).threshold();
        table.row(vec![
            format!("{nc}"),
            f(a, 6),
            f(mid, 6),
            f(b, 6),
            format!("{:.2e}", (b - a).abs()),
            f(gap, 4),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');

    // Observation 2: gap ≤ 1/n(C) for any h'.
    let mut table = Table::new(
        "Threshold gap p_th(B) − p_th(A) vs the paper's bound 1/n(C)",
        &["h'", "n(C)", "gap", "bound 1/n(C)"],
    );
    for &h in &[0.0, 0.3, 0.7, 1.0] {
        for &nc in &[2.0, 10.0, 50.0] {
            let sp = SystemParams::new(30.0, 50.0, 1.0, h).unwrap();
            let gap = ModelB::new(sp, 1.0, 0.5, nc).threshold() - sp.rho_prime();
            table.row(vec![format!("{h}"), format!("{nc}"), f(gap, 4), f(1.0 / nc, 4)]);
        }
    }
    out.push_str(&table.render());
    out.push('\n');

    // Observation 3: h, rho, t agree when n(C) >> n(F).
    let mut table = Table::new(
        "Derived quantities at n(C) = 100 vs n(C) = 2 (n(F)=0.8, p=0.8, h'=0.3)",
        &["quantity", "Model A", "B, n(C)=100", "B, n(C)=2"],
    );
    let a = ModelA::new(params, n_f, p);
    let b_big = ModelB::new(params, n_f, p, 100.0);
    let b_small = ModelB::new(params, n_f, p, 2.0);
    table.row(vec![
        "h".into(),
        f(a.hit_ratio(), 4),
        f(b_big.hit_ratio(), 4),
        f(b_small.hit_ratio(), 4),
    ]);
    table.row(vec![
        "rho".into(),
        f(a.utilisation(), 4),
        f(b_big.utilisation(), 4),
        f(b_small.utilisation(), 4),
    ]);
    table.row(vec![
        "t".into(),
        f(a.access_time().unwrap_or(f64::NAN), 4),
        f(b_big.access_time().unwrap_or(f64::NAN), 4),
        f(b_small.access_time().unwrap_or(f64::NAN), 4),
    ]);
    out.push_str(&table.render());

    // AB interpolation sanity.
    out.push('\n');
    let ab0 = ModelAb::model_a(params, n_f, p).improvement().unwrap();
    let abb = ModelAb::model_b(params, n_f, p, 10.0).improvement().unwrap();
    out.push_str(&format!(
        "AB family endpoints: q=0 gives G={ab0:.6} (=A), q=h'/n(C) gives G={abb:.6} (=B at n(C)=10)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_is_monotone() {
        let params = SystemParams::paper_figure2(0.3);
        let rows = convergence(params, 0.8, 0.8);
        let mut last_gap = f64::INFINITY;
        for (_, a, mid, b) in &rows {
            let gap = (b - a).abs();
            assert!(gap <= last_gap + 1e-15);
            last_gap = gap;
            // AB midpoint lies between.
            assert!((*mid >= *b && *mid <= *a) || (*mid <= *b && *mid >= *a));
        }
        assert!(last_gap < 1e-4, "final gap {last_gap}");
    }

    #[test]
    fn render_has_all_sections() {
        let s = render();
        assert!(s.contains("Threshold gap"));
        assert!(s.contains("n(C) = 100 vs n(C) = 2"));
        assert!(s.contains("AB family endpoints"));
    }
}
