//! E11 — wireless QoS: prefetching over a time-varying link.
//!
//! The paper's conclusions point at "QoS issues of multimedia access in
//! wired as well as wireless networks". A wireless channel alternates
//! between good and bad states (Gilbert–Elliott); the threshold
//! `p_th = f′λs̄/b(t)` *moves with the bandwidth*. A prefetch probability
//! that clears the good-state threshold can sit far below the bad-state
//! one, so:
//!
//! * a **static** policy tuned for the good state keeps prefetching into
//!   the degraded channel — paying the §5 load-impedance premium exactly
//!   when capacity is scarcest;
//! * a **channel-aware** policy re-evaluates `p > f′λs̄/b(t)` per request
//!   and goes quiet in bad states.
//!
//! The simulator: Poisson(λ) requests over one PS link whose capacity
//! switches between `b_good` and `b_bad` with exponential sojourns. Each
//! request announces one candidate for the *next* request with known
//! probability `p`; prefetching it in time makes the next request a hit.

use crate::report::{f, Table};
use queueing::{PsServer, Server};
use simcore::rng::Rng;
use simcore::stats::BatchMeans;

/// Channel and workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WirelessConfig {
    pub lambda: f64,
    pub mean_size: f64,
    pub h_prime: f64,
    pub b_good: f64,
    pub b_bad: f64,
    /// Mean sojourn in the good state (seconds).
    pub good_sojourn: f64,
    /// Mean sojourn in the bad state (seconds).
    pub bad_sojourn: f64,
    /// Candidate access probability.
    pub p: f64,
    pub requests: usize,
    pub warmup: usize,
}

impl Default for WirelessConfig {
    fn default() -> Self {
        WirelessConfig {
            lambda: 30.0,
            mean_size: 1.0,
            h_prime: 0.3,
            b_good: 80.0, // ρ′ = 0.2625, p_th = 0.26
            b_bad: 26.0,  // ρ′ = 0.8077, p_th = 0.81
            good_sojourn: 20.0,
            bad_sojourn: 6.0,
            p: 0.6, // clears the good-state bar, far below the bad-state bar
            requests: 150_000,
            warmup: 25_000,
        }
    }
}

/// The prefetch policy under test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WirelessPolicy {
    /// Never prefetch.
    Never,
    /// Prefetch iff `p > f′λs̄/b_good` — ignores the channel state.
    StaticGoodState,
    /// Prefetch iff `p > f′λs̄/b(t)` — the paper's rule applied to the
    /// *current* bandwidth.
    ChannelAware,
}

impl WirelessPolicy {
    pub fn label(&self) -> &'static str {
        match self {
            WirelessPolicy::Never => "no-prefetch",
            WirelessPolicy::StaticGoodState => "static(good-state pth)",
            WirelessPolicy::ChannelAware => "channel-aware pth",
        }
    }
}

/// Measured outcome.
#[derive(Clone, Debug)]
pub struct WirelessReport {
    pub policy: &'static str,
    pub mean_access_time: f64,
    pub ci95: f64,
    pub hit_ratio: f64,
    pub prefetches_per_request: f64,
    /// Fraction of prefetches issued while the channel was bad.
    pub bad_state_prefetch_fraction: f64,
}

#[derive(Clone, Copy)]
enum Job {
    Demand { idx: u64, issued: f64 },
    Prefetch,
}

/// Runs one policy over the switching channel.
pub fn run(config: &WirelessConfig, policy: WirelessPolicy, seed: u64) -> WirelessReport {
    let mut rng = Rng::new(seed);
    let mut channel_rng = rng.split();
    let c = *config;
    let f_prime = 1.0 - c.h_prime;
    let threshold_at = |b: f64| f_prime * c.lambda * c.mean_size / b;

    let mut server: PsServer<Job> = PsServer::new(c.b_good);
    let mut good = true;
    let mut next_switch = channel_rng.exp(1.0 / c.good_sojourn);

    let mut access_times = BatchMeans::new(20);
    let mut hits = 0u64;
    let mut prefetches = 0u64;
    let mut bad_prefetches = 0u64;
    // Whether the previous request prefetched its successor candidate (and
    // therefore the current request hits with probability h′ + p).
    let mut bonus_pending = false;

    let warm = c.warmup as u64;
    let n_requests = c.requests as u64;
    let mut issued = 0u64;
    let mut next_request_t = rng.exp(c.lambda);

    loop {
        let more = issued < n_requests;
        let ts = server.next_event().map_or(f64::INFINITY, |t| t);
        let tr = if more { next_request_t } else { f64::INFINITY };
        let tsw = if more { next_switch } else { f64::INFINITY };

        if ts.is_infinite() && tr.is_infinite() && tsw.is_infinite() {
            break;
        }
        if ts <= tr && ts <= tsw {
            for done in server.on_event(ts) {
                if let Job::Demand { idx, issued: t0 } = done.tag {
                    if idx >= warm {
                        access_times.push(ts - t0);
                    }
                }
            }
        } else if tsw <= tr {
            good = !good;
            let (b, sojourn) =
                if good { (c.b_good, c.good_sojourn) } else { (c.b_bad, c.bad_sojourn) };
            server.set_capacity(tsw, b);
            next_switch = tsw + channel_rng.exp(1.0 / sojourn);
        } else {
            let t = next_request_t;
            let idx = issued;
            issued += 1;
            let in_window = idx >= warm;
            // Resolve the hit/miss with the pending prefetch bonus.
            let hit_prob = if bonus_pending { c.h_prime + c.p } else { c.h_prime };
            if rng.chance(hit_prob.min(1.0)) {
                if in_window {
                    access_times.push(0.0);
                    hits += 1;
                }
            } else {
                server.arrive(t, c.mean_size, Job::Demand { idx, issued: t });
            }
            // Prefetch decision for the next request's candidate.
            let b_now = if good { c.b_good } else { c.b_bad };
            let prefetch = match policy {
                WirelessPolicy::Never => false,
                WirelessPolicy::StaticGoodState => c.p > threshold_at(c.b_good),
                WirelessPolicy::ChannelAware => c.p > threshold_at(b_now),
            };
            bonus_pending = prefetch;
            if prefetch {
                prefetches += 1;
                if !good {
                    bad_prefetches += 1;
                }
                server.arrive(t, c.mean_size, Job::Prefetch);
            }
            next_request_t = t + rng.exp(c.lambda);
        }
    }

    let measured = (n_requests - warm).max(1);
    let (mean, ci) = access_times.mean_ci();
    WirelessReport {
        policy: policy.label(),
        mean_access_time: mean,
        ci95: ci,
        hit_ratio: hits as f64 / measured as f64,
        prefetches_per_request: prefetches as f64 / n_requests as f64,
        bad_state_prefetch_fraction: if prefetches > 0 {
            bad_prefetches as f64 / prefetches as f64
        } else {
            0.0
        },
    }
}

pub fn render() -> String {
    let config = WirelessConfig::default();
    let mut out = String::new();
    out.push_str("# E11 — wireless QoS: prefetching over a Gilbert-Elliott channel\n");
    out.push_str(&format!(
        "# b alternates {}/{} (pth {:.2} / {:.2}); candidates have p = {}\n\n",
        config.b_good,
        config.b_bad,
        (1.0 - config.h_prime) * config.lambda * config.mean_size / config.b_good,
        (1.0 - config.h_prime) * config.lambda * config.mean_size / config.b_bad,
        config.p
    ));
    let mut table = Table::new(
        "Policies over the switching channel",
        &["policy", "t mean", "ci95", "h", "n(F)", "bad-state prefetch %"],
    );
    for policy in
        [WirelessPolicy::Never, WirelessPolicy::StaticGoodState, WirelessPolicy::ChannelAware]
    {
        let r = run(&config, policy, 11_011);
        table.row(vec![
            r.policy.to_string(),
            f(r.mean_access_time, 5),
            f(r.ci95, 5),
            f(r.hit_ratio, 3),
            f(r.prefetches_per_request, 3),
            format!("{:.1}%", 100.0 * r.bad_state_prefetch_fraction),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe static policy keeps prefetching into the degraded channel (its\n\
         bad-state prefetch share matches the time spent there) and pays the\n\
         load-impedance premium; the channel-aware policy goes quiet in bad\n\
         states, keeping most of the hit-ratio gain at a fraction of the cost.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> WirelessConfig {
        WirelessConfig { requests: 60_000, warmup: 10_000, ..Default::default() }
    }

    #[test]
    fn channel_aware_beats_static_and_never() {
        let c = quick();
        let never = run(&c, WirelessPolicy::Never, 1);
        let fixed = run(&c, WirelessPolicy::StaticGoodState, 1);
        let aware = run(&c, WirelessPolicy::ChannelAware, 1);
        assert!(
            aware.mean_access_time < never.mean_access_time,
            "aware {} vs never {}",
            aware.mean_access_time,
            never.mean_access_time
        );
        assert!(
            aware.mean_access_time < fixed.mean_access_time,
            "aware {} vs static {}",
            aware.mean_access_time,
            fixed.mean_access_time
        );
    }

    #[test]
    fn channel_aware_avoids_bad_state_prefetching() {
        let c = quick();
        let fixed = run(&c, WirelessPolicy::StaticGoodState, 2);
        let aware = run(&c, WirelessPolicy::ChannelAware, 2);
        assert_eq!(aware.bad_state_prefetch_fraction, 0.0);
        assert!(fixed.bad_state_prefetch_fraction > 0.1);
        // Both prefetch in good states, so hit ratios are comparable.
        assert!(aware.hit_ratio > c.h_prime + 0.2);
    }

    #[test]
    fn no_prefetch_hit_ratio_is_h_prime() {
        let c = quick();
        let never = run(&c, WirelessPolicy::Never, 3);
        assert!((never.hit_ratio - c.h_prime).abs() < 0.02);
        assert_eq!(never.prefetches_per_request, 0.0);
    }
}
