//! E16 — incremental digest deltas and byte-addressed caching at scale.
//!
//! E15 removed the per-event scan; the remaining per-epoch cost was the
//! digest exchange: every boundary, every proxy rebuilt and shipped its
//! whole Bloom summary — O(proxies × capacity) work and bytes, the last
//! term that grows with cache size rather than with activity. This
//! experiment turns on the two PR-4 mechanisms together over the
//! 64/128/256-proxy peer meshes:
//!
//! * **digest deltas** (`RefreshStrategy::Deltas`) — proxies ship only
//!   their insert/evict streams; the routers maintain counting-Bloom
//!   digests, provably equivalent to full rebuilds (the delta-parity
//!   suite), at O(churn) instead of O(capacity) per boundary;
//! * **byte-addressed caches** (`cache_bytes`) — eviction driven by a
//!   byte budget under markedly heterogeneous object sizes (Pareto tail
//!   at shape 1.6), so cache occupancy, goodput/badput, and the digest
//!   streams are all denominated in the paper's unit: bytes.
//!
//! Per fabric size the sweep runs all three refresh strategies at a
//! fixed total request budget and compares digest-exchange bytes,
//! backbone load, and false hits. The crossover is part of the story:
//! deltas win whenever per-epoch churn stays below
//! `capacity · bits / 8` wire-bytes — the regime real summary caches
//! live in — and `RefreshStrategy::Auto` (the compaction fallback) makes
//! the bound structural: each proxy ships whichever of the two forms is
//! cheaper that boundary, so its cost is `min(churn · 9, ⌈m/8⌉)` bytes
//! per proxy per epoch by construction, with `RouterStats` metering
//! which side fired. The stdout report carries only seeded,
//! deterministic metrics; wall-clock goes to stderr.

use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use std::time::Instant;
use workload::synth_web::SynthWebConfig;

const SEED: u64 = 16;
const LAMBDA: f64 = 14.0;

/// Fabric sizes the sweep walks (shared with E15 so rows line up).
pub const SIZES: [usize; 3] = [64, 128, 256];

/// Per-proxy cache capacity in entries, and the byte budget that actually
/// binds under the heavy-tailed sizes (mean size 1.0).
pub const CACHE_CAPACITY: usize = 192;
pub const CACHE_BYTES: f64 = 160.0;

/// Total requests across the cluster at full size.
pub const TOTAL_REQUESTS: usize = 96_000;

/// Reduced total for the CI smoke invocation (`--smoke`).
pub const SMOKE_TOTAL_REQUESTS: usize = 24_000;

/// A peer mesh whose backbone scales with the proxy count.
fn scaled_mesh(n_proxies: usize) -> Topology {
    Topology::mesh(n_proxies, 50.0, 25.0 * n_proxies as f64, 45.0)
}

fn workload(n_proxies: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|_| SynthWebConfig {
                lambda: LAMBDA,
                link_skew: 0.3,
                // Heavy Pareto tail: object sizes span ~50x, so an
                // admission can evict several entries under the byte
                // budget.
                size_shape: 1.6,
                ..SynthWebConfig::default()
            })
            .collect(),
        cache_capacity: CACHE_CAPACITY,
        cache_bytes: Some(CACHE_BYTES),
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(99),
        delayed: Default::default(),
    }
}

fn requests_per_proxy(n_proxies: usize, total_requests: usize) -> usize {
    (total_requests / n_proxies).max(60)
}

/// Runs one fabric size under one refresh strategy; returns the report
/// and the wall time.
pub fn run_at(
    n_proxies: usize,
    strategy: RefreshStrategy,
    total_requests: usize,
) -> (ClusterReport, f64) {
    let requests = requests_per_proxy(n_proxies, total_requests);
    let warmup = requests / 5;
    let config = ClusterConfig {
        topology: scaled_mesh(n_proxies),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: workload(n_proxies),
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 1.0, bits_per_entry: 10, hashes: 4 },
                refresh: strategy,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    let start = Instant::now();
    let report = ClusterSim::new(&config).run(SEED);
    (report, start.elapsed().as_secs_f64())
}

/// Full-size report.
pub fn render() -> String {
    render_with(TOTAL_REQUESTS)
}

/// Report at a caller-chosen total request budget (the CI smoke run uses
/// [`SMOKE_TOTAL_REQUESTS`]).
pub fn render_with(total_requests: usize) -> String {
    let mut out = String::new();
    out.push_str("# E16 — incremental digest deltas + byte-addressed caches\n");
    out.push_str("# delta streams vs full snapshot rebuilds over 64/128/256-proxy\n");
    out.push_str("# meshes; heterogeneous (Pareto 1.6) object sizes, byte-driven\n");
    out.push_str(&format!(
        "# eviction at {CACHE_BYTES} B per proxy; total request budget per run: {total_requests}\n\n"
    ));

    let mut sweep = Table::new(
        "Digest exchange and backbone load: deltas vs full rebuilds",
        &[
            "proxies",
            "refresh",
            "digest KB",
            "KB/epoch",
            "delta ops",
            "backbone B/req",
            "false hits",
            "hit ratio",
            "cache B used",
        ],
    );
    let mut digest_bytes = [[0u64; 3]; SIZES.len()];
    for (si, &n) in SIZES.iter().enumerate() {
        for (mi, strategy) in
            [RefreshStrategy::Deltas, RefreshStrategy::FullRebuild, RefreshStrategy::Auto]
                .into_iter()
                .enumerate()
        {
            let (r, wall) = run_at(n, strategy, total_requests);
            let requests_total = (requests_per_proxy(n, total_requests) * n) as u64;
            let mode = match strategy {
                RefreshStrategy::Deltas => "deltas",
                RefreshStrategy::FullRebuild => "full rebuild",
                RefreshStrategy::Auto => "auto",
            };
            eprintln!(
                "e16: {n} proxies, {mode}: {wall:.2}s wall ({:.1} kreq/s)",
                requests_total as f64 / wall / 1e3
            );
            let coop = r.coop.expect("cooperative run");
            digest_bytes[si][mi] = coop.router.digest_bytes;
            let epochs = coop.router.digest_epochs.max(1);
            let hit = r.nodes.iter().map(|node| node.hit_ratio).sum::<f64>() / r.nodes.len() as f64;
            let used = r.nodes.iter().map(|node| node.cache_used_bytes.unwrap_or(0.0)).sum::<f64>()
                / r.nodes.len() as f64;
            sweep.row(vec![
                n.to_string(),
                mode.to_string(),
                f(coop.router.digest_bytes as f64 / 1e3, 1),
                f(coop.router.digest_bytes as f64 / 1e3 / epochs as f64, 2),
                coop.router.delta_ops.to_string(),
                f(r.link_bytes("backbone") / requests_total as f64, 3),
                coop.peer_false_hits.to_string(),
                f(hit, 3),
                f(used, 1),
            ]);
        }
    }
    out.push_str(&sweep.render());

    // Headline: the exchange-byte ratio at each size (deltas as a share of
    // snapshot traffic — below 100% the delta protocol wins the wire).
    out.push('\n');
    let mut head = Table::new(
        "Delta exchange traffic as a share of full-rebuild traffic",
        &["proxies", "delta KB", "rebuild KB", "auto KB", "delta share", "auto share"],
    );
    for (si, &n) in SIZES.iter().enumerate() {
        let [d, fl, auto] = digest_bytes[si];
        head.row(vec![
            n.to_string(),
            f(d as f64 / 1e3, 1),
            f(fl as f64 / 1e3, 1),
            f(auto as f64 / 1e3, 1),
            format!("{:.0}%", 100.0 * d as f64 / fl.max(1) as f64),
            format!("{:.0}%", 100.0 * auto as f64 / fl.max(1) as f64),
        ]);
    }
    out.push_str(&head.render());

    out.push_str(
        "\nReading: both refresh protocols advertise identical state (pinned to\n\
         1e-12 by the delta-parity suite), so backbone bytes, hit ratios and\n\
         false hits line up row for row -- what changes is the metadata cost.\n\
         Full rebuilds ship capacity-proportional snapshots every epoch\n\
         whether or not anything changed; deltas ship 9 bytes per actual\n\
         cache change. With per-proxy request streams deep enough to warm\n\
         the caches, churn per epoch falls well below capacity and the\n\
         delta share drops accordingly; under cold-cache churn (256 proxies\n\
         at a thin per-proxy budget) the stream approaches snapshot cost\n\
         from below -- the worst case is parity, never a regression, while\n\
         the refresh CPU drops from O(capacity) to O(churn) per proxy\n\
         either way. Byte-driven eviction keeps occupancy pinned under the\n\
         byte budget at every size while the item count floats with the\n\
         size mix.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_sections() {
        let report = render_with(SMOKE_TOTAL_REQUESTS);
        assert!(report.contains("digest deltas"));
        assert!(report.contains("full rebuild"));
        assert!(report.contains("Delta exchange traffic"));
        assert!(report.contains("256"));
    }

    #[test]
    fn strategies_agree_on_everything_but_exchange_bytes() {
        let (by_delta, _) = run_at(64, RefreshStrategy::Deltas, SMOKE_TOTAL_REQUESTS);
        let (by_full, _) = run_at(64, RefreshStrategy::FullRebuild, SMOKE_TOTAL_REQUESTS);
        cluster::parity::assert_reports_match_modulo_digest_traffic(
            &by_delta,
            &by_full,
            "e16 smoke 64 proxies",
        );
        assert!(by_delta.coop.unwrap().router.delta_ops > 0);
    }

    #[test]
    fn auto_compaction_is_never_costlier_and_meters_its_choices() {
        // Auto flushes each proxy's cheaper form per boundary, so its
        // exchange volume is bounded by both pure strategies, while the
        // advertised state (and hence the whole report modulo exchange
        // metering) stays identical.
        let (by_auto, _) = run_at(64, RefreshStrategy::Auto, SMOKE_TOTAL_REQUESTS);
        let (by_delta, _) = run_at(64, RefreshStrategy::Deltas, SMOKE_TOTAL_REQUESTS);
        let (by_full, _) = run_at(64, RefreshStrategy::FullRebuild, SMOKE_TOTAL_REQUESTS);
        cluster::parity::assert_reports_match_modulo_digest_traffic(
            &by_auto,
            &by_delta,
            "e16 auto vs deltas",
        );
        let auto = by_auto.coop.unwrap().router;
        let delta = by_delta.coop.unwrap().router;
        let full = by_full.coop.unwrap().router;
        assert!(auto.digest_bytes <= delta.digest_bytes, "auto worse than pure deltas");
        assert!(auto.digest_bytes <= full.digest_bytes, "auto worse than pure snapshots");
        // The meter records which side of the crossover each flush took.
        assert_eq!(delta.snapshot_flushes, 0);
        assert_eq!(full.delta_flushes, 0);
        assert_eq!(
            auto.delta_flushes + auto.snapshot_flushes,
            delta.delta_flushes,
            "auto flushes once per proxy per boundary, same as pure deltas"
        );
        assert_eq!(delta.delta_flushes, full.snapshot_flushes);
    }

    #[test]
    fn byte_budget_binds_at_every_proxy() {
        let (r, _) = run_at(64, RefreshStrategy::Deltas, SMOKE_TOTAL_REQUESTS);
        for node in &r.nodes {
            let used = node.cache_used_bytes.expect("closed loop reports occupancy");
            assert!(
                used <= CACHE_BYTES + 1e-9,
                "proxy {}: occupancy {used} exceeds byte budget",
                node.proxy
            );
        }
    }
}
