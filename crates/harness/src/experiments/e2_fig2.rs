//! E2 — Figure 2: access improvement `G` against `n̄(F)`, Model A.
//!
//! s̄ = 1, λ = 30, b = 50; panels h′ ∈ {0, 0.3}. The paper's observation to
//! reproduce: every curve is *consistently* positive (p > p_th), negative
//! (p < p_th) or zero (p = p_th), and moves monotonically with `n̄(F)`.
//! Where the prefetching load would destabilise the server (ρ ≥ 1) the
//! closed form stops describing a steady state — those points are omitted,
//! exactly as the paper's curves leave the ±0.1 axis window.

use crate::asciiplot::Chart;
use crate::report::{f, Table};
use prefetch_core::{ModelA, SystemParams};

use super::paper;

/// One curve: `(n̄(F), G)` for stable points only.
pub fn curve(h_prime: f64, p: f64, nf_points: usize) -> Vec<(f64, f64)> {
    let params =
        SystemParams::new(paper::LAMBDA, paper::FIG23_BANDWIDTH, paper::FIG23_MEAN_SIZE, h_prime)
            .expect("paper parameters");
    (0..=nf_points)
        .filter_map(|i| {
            let nf = 2.0 * i as f64 / nf_points as f64;
            let m = ModelA::new(params, nf, p);
            m.improvement().map(|g| (nf, g))
        })
        .collect()
}

/// The full panel: per `p`, its curve.
pub fn panel(h_prime: f64, nf_points: usize) -> Vec<(f64, Vec<(f64, f64)>)> {
    paper::FIG23_PROBS.iter().map(|&p| (p, curve(h_prime, p, nf_points))).collect()
}

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E2 / Figure 2 — access improvement G vs n(F) (Model A)\n");
    out.push_str("# s = 1, lambda = 30, b = 50; eq (11); unstable points omitted\n\n");
    for &h in &paper::H_PRIMES {
        let params =
            SystemParams::new(paper::LAMBDA, paper::FIG23_BANDWIDTH, paper::FIG23_MEAN_SIZE, h)
                .unwrap();
        let mut chart = Chart::new(
            format!("Figure 2 panel: h' = {h} (p_th = {:.2})", params.rho_prime()),
            (0.0, 2.0),
            (-0.1, 0.1),
            72,
            21,
        );
        for (p, pts) in panel(h, 80) {
            chart.series(format!("p = {p}"), pts);
        }
        out.push_str(&chart.render());
        out.push('\n');

        let mut table = Table::new(
            format!("G at selected volumes (h' = {h})"),
            &["p", "nF=0.25", "nF=0.5", "nF=1.0", "nF=1.5", "nF=2.0"],
        );
        for &p in &paper::FIG23_PROBS {
            let mut row = vec![format!("{p:.1}")];
            for &nf in &[0.25, 0.5, 1.0, 1.5, 2.0] {
                let m = ModelA::new(params, nf, p);
                row.push(match m.improvement() {
                    Some(g) => f(g, 4),
                    None => "unstable".into(),
                });
            }
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_consistent_sign() {
        // h'=0: p_th = 0.6.
        for (p, pts) in panel(0.0, 40) {
            for &(nf, g) in &pts {
                if nf == 0.0 {
                    assert_eq!(g, 0.0);
                } else if p > 0.6 + 1e-9 {
                    assert!(g > 0.0, "p={p} nf={nf} g={g}");
                } else if p < 0.6 - 1e-9 {
                    assert!(g < 0.0, "p={p} nf={nf} g={g}");
                } else {
                    assert!(g.abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn curves_are_monotone() {
        for (p, pts) in panel(0.3, 40) {
            for w in pts.windows(2) {
                if p > 0.42 {
                    assert!(w[1].1 >= w[0].1, "p={p}");
                } else if p < 0.42 {
                    assert!(w[1].1 <= w[0].1, "p={p}");
                }
            }
        }
    }

    #[test]
    fn low_p_curves_truncate_at_instability() {
        // p=0.1, h'=0: rho hits 1 at nf = (1/0.6 − 1)/0.9 ≈ 0.7407.
        let pts = curve(0.0, 0.1, 80);
        let max_nf = pts.last().unwrap().0;
        assert!(max_nf < 0.75, "last stable nf {max_nf}");
        assert!(max_nf > 0.70, "last stable nf {max_nf}");
        // While p=0.9 stays stable over the whole axis.
        let pts = curve(0.0, 0.9, 80);
        assert_eq!(pts.last().unwrap().0, 2.0);
    }

    #[test]
    fn hand_checked_value_in_render() {
        // G(nf=1, p=0.9, h'=0) = 15/340 ≈ 0.0441.
        let s = render();
        assert!(s.contains("0.0441"), "render should contain the hand-checked G");
    }
}
