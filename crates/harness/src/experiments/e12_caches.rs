//! E12 — cache-policy comparison under the paper's workloads.
//!
//! The analysis folds all caching behaviour into one number, `h′`. This
//! experiment grounds that abstraction: it measures the `h′` different
//! replacement policies actually deliver on (a) the Zipf/IRM workload,
//! (b) the Markov navigation workload, and (c) the stack-distance workload
//! with a designed-in hit ratio — and therefore how the *threshold*
//! `p_th = f′λs̄/b` shifts purely as a function of the cache policy.

use crate::report::{f, Table};
use cachesim::{
    ClockCache, FifoCache, GdsfCache, LfuCache, LruCache, RandomCache, ReplacementCache, SlruCache,
};
use simcore::rng::Rng;
use workload::{Catalog, ItemId, LruStackStream, MarkovChain, RequestStream};

/// Owning IRM stream (the library's `IrmStream` borrows its catalog).
struct OwnedIrm {
    catalog: Catalog,
}

impl RequestStream for OwnedIrm {
    fn next_item(&mut self, rng: &mut Rng) -> ItemId {
        self.catalog.sample(rng)
    }
}

/// The Zipf IRM workload used across this experiment.
fn zipf_stream(rng: &mut Rng) -> OwnedIrm {
    OwnedIrm { catalog: Catalog::zipf(2000, 0.9, 1.0, rng) }
}

/// Hit ratio of `cache` over `n` requests of `stream` (after warm-up).
fn measure<C: ReplacementCache<u64> + ?Sized, S: RequestStream>(
    cache: &mut C,
    stream: &mut S,
    warmup: usize,
    n: usize,
    rng: &mut Rng,
) -> f64 {
    let mut hits = 0usize;
    for i in 0..warmup + n {
        let item = stream.next_item(rng).0;
        if cache.touch(item) {
            if i >= warmup {
                hits += 1;
            }
        } else {
            cache.insert(item);
        }
    }
    hits as f64 / n as f64
}

/// All policies at one capacity.
fn policies(capacity: usize, seed: u64) -> Vec<(&'static str, Box<dyn ReplacementCache<u64>>)> {
    vec![
        ("lru", Box::new(LruCache::new(capacity))),
        ("slru", Box::new(SlruCache::new(capacity))),
        ("lfu", Box::new(LfuCache::new(capacity))),
        ("clock", Box::new(ClockCache::new(capacity))),
        ("fifo", Box::new(FifoCache::new(capacity))),
        ("gdsf", Box::new(GdsfCache::new(capacity))),
        ("random", Box::new(RandomCache::new(capacity, seed))),
    ]
}

/// Measures every policy on a workload builder. Returns `(name, h′)`.
pub fn compare<S: RequestStream>(
    capacity: usize,
    make_stream: impl Fn(&mut Rng) -> S,
    requests: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    policies(capacity, seed)
        .into_iter()
        .map(|(name, mut cache)| {
            let mut rng = Rng::new(seed);
            let mut stream = make_stream(&mut rng);
            let h = measure(cache.as_mut(), &mut stream, requests / 5, requests, &mut rng);
            (name, h)
        })
        .collect()
}

pub fn render() -> String {
    let capacity = 64;
    let requests = 60_000;
    let mut out = String::new();
    out.push_str("# E12 — what h' does each cache policy deliver? (cap = 64 items)\n");
    out.push_str("# the paper's threshold p_th = f'*lambda*s/b moves with each h'\n\n");

    let mut table = Table::new(
        "Measured h' by policy and workload (and the p_th it implies at lambda=30, b=100, s=1)",
        &["policy", "zipf(0.9) IRM", "markov nav", "stack(h'=0.5)", "p_th on zipf"],
    );
    let zipf = compare(capacity, zipf_stream, requests, 42);
    let markov = compare(capacity, |rng| MarkovChain::random(600, 3, 0.3, rng), requests, 43);
    let stack = compare(capacity, |_| LruStackStream::new(0.5, 64), requests, 44);

    for i in 0..zipf.len() {
        let (name, h_zipf) = zipf[i];
        let (_, h_markov) = markov[i];
        let (_, h_stack) = stack[i];
        let pth = (1.0 - h_zipf) * 30.0 * 1.0 / 100.0;
        table.row(vec![name.to_string(), f(h_zipf, 3), f(h_markov, 3), f(h_stack, 3), f(pth, 3)]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: on the stack-distance workload (pure recency, deliberately no\n\
         frequency signal) LRU recovers the designed-in h' = 0.5 exactly, CLOCK\n\
         nearly so; FIFO/random fall short; frequency-biased policies (LFU, and\n\
         SLRU with its small probation segment) collapse, hoarding stale items.\n\
         On the IRM workload the ranking flips: frequency is the optimal signal.\n\
         The h' spread moves the paper's prefetch threshold — a better cache\n\
         *lowers* the bar for prefetching (dp_th/dh' = -lambda*s/b < 0).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_recovers_designed_hit_ratio() {
        let rows = compare(64, |_| LruStackStream::new(0.5, 64), 40_000, 7);
        let lru = rows.iter().find(|(n, _)| *n == "lru").unwrap().1;
        assert!((lru - 0.5).abs() < 0.03, "LRU h' {lru}");
    }

    #[test]
    fn recency_policies_beat_fifo_on_markov_navigation() {
        let rows = compare(48, |rng| MarkovChain::random(600, 3, 0.3, rng), 40_000, 8);
        let get = |n: &str| rows.iter().find(|(name, _)| *name == n).unwrap().1;
        assert!(get("lru") >= get("fifo") - 0.02, "lru {} fifo {}", get("lru"), get("fifo"));
        assert!(get("lru") > get("random") - 0.02);
    }

    #[test]
    fn lfu_wins_on_irm() {
        // Under the independent reference model, frequency is the optimal
        // signal (LFU ≥ LRU asymptotically).
        let rows = compare(64, zipf_stream, 60_000, 9);
        let get = |n: &str| rows.iter().find(|(name, _)| *name == n).unwrap().1;
        assert!(get("lfu") >= get("lru") - 0.01, "lfu {} lru {}", get("lfu"), get("lru"));
    }

    #[test]
    fn all_policies_report_sane_ratios() {
        let rows = compare(32, |_| LruStackStream::new(0.4, 32), 20_000, 10);
        for (name, h) in rows {
            assert!((0.0..=1.0).contains(&h), "{name}: {h}");
        }
    }
}
