//! E9 — load impedance: the same prefetch volume costs more under load.
//!
//! Paper §5: "prefetching an item when the system load is high costs more
//! than prefetching the same item during low system load". We fix the
//! prefetch configuration `(n̄(F), p)` and sweep the background demand `λ`,
//! measuring the excess retrieval cost `C` against eq (27).

use crate::rel_err;
use crate::report::{f, Table};
use netsim::parametric::{run_with_baseline, ParametricConfig};
use prefetch_core::{ModelA, SystemParams};
use simcore::dist::Exponential;
use simcore::par::par_map_auto;

/// One impedance measurement.
#[derive(Clone, Debug)]
pub struct ImpedanceRow {
    pub lambda: f64,
    pub rho_prime: f64,
    pub c_measured: f64,
    pub c_predicted: f64,
}

/// The λ sweep with fixed prefetch volume `n̄(F)=0.3, p=0.5`.
pub fn sweep(requests: usize, seed: u64) -> Vec<ImpedanceRow> {
    let lambdas = [10.0, 20.0, 30.0, 40.0];
    par_map_auto(&lambdas, |i, &lambda| {
        let params = SystemParams::new(lambda, 50.0, 1.0, 0.0).unwrap();
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params,
            n_f: 0.3,
            p: 0.5,
            size_dist: &size,
            requests,
            warmup: requests / 6,
        };
        let (base, with, _) = run_with_baseline(&config, seed.wrapping_add(i as u64));
        let model = ModelA::new(params, 0.3, 0.5);
        ImpedanceRow {
            lambda,
            rho_prime: params.rho_prime(),
            c_measured: with.retrieval_per_request - base.retrieval_per_request,
            c_predicted: model.excess_cost().expect("stable configuration"),
        }
    })
}

pub fn render() -> String {
    let rows = sweep(200_000, 777);
    let mut out = String::new();
    out.push_str("# E9 — load impedance (paper §5)\n");
    out.push_str("# fixed prefetching n(F)=0.3, p=0.5, b=50, s=1; background load swept\n\n");
    let mut table = Table::new(
        "Excess retrieval cost under rising load",
        &["lambda", "rho'", "C measured", "C eq(27)", "err", "x cost vs lambda=10"],
    );
    let base_cost = rows[0].c_measured;
    for r in &rows {
        table.row(vec![
            f(r.lambda, 0),
            f(r.rho_prime, 2),
            f(r.c_measured, 5),
            f(r.c_predicted, 5),
            format!("{:.1}%", 100.0 * rel_err(r.c_measured, r.c_predicted)),
            format!("{:.1}x", r.c_measured / base_cost),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nThe same 0.3 prefetches/request cost several times more network time\nat rho' = 0.8 than at rho' = 0.2 — the paper's load impedance.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_rises_with_load() {
        let rows = sweep(80_000, 3);
        for w in rows.windows(2) {
            assert!(
                w[1].c_measured > w[0].c_measured,
                "C must rise: {} then {}",
                w[0].c_measured,
                w[1].c_measured
            );
        }
        // And substantially: at least 3x from rho'=0.2 to rho'=0.8.
        assert!(rows.last().unwrap().c_measured / rows[0].c_measured > 3.0);
    }

    #[test]
    fn measured_tracks_eq27() {
        for r in sweep(80_000, 5) {
            assert!(
                rel_err(r.c_measured, r.c_predicted) < 0.35,
                "lambda {}: measured {} vs {}",
                r.lambda,
                r.c_measured,
                r.c_predicted
            );
        }
    }
}
