//! E6 — §4 estimator accuracy: tagged-entry `ĥ′` vs twin-cache truth.
//!
//! Runs the full trace-driven system with prefetching *live* and compares
//! the paper's counterfactual estimate against a twin cache fed the same
//! requests with prefetching off. Also applies the model-B correction with
//! the measured prefetch volume.

use crate::report::{f, Table};
use netsim::traced::{run, Policy, PredictorKind, TracedConfig};
use workload::synth_web::SynthWebConfig;

/// One estimator trial.
#[derive(Clone, Debug)]
pub struct EstimateTrial {
    pub cache_capacity: usize,
    pub predictor: String,
    pub twin_h_prime: f64,
    pub estimate_a: f64,
    pub estimate_b: f64,
    pub real_hit_ratio: f64,
    pub nf_realised: f64,
}

fn config(cache_capacity: usize, predictor: PredictorKind) -> TracedConfig {
    TracedConfig {
        web: SynthWebConfig {
            n_clients: 12,
            lambda: 30.0,
            n_items: 400,
            branching: 3,
            link_skew: 0.3,
            mean_size: 1.0,
            size_shape: 2.5,
        },
        cache_capacity,
        bandwidth: 60.0,
        predictor,
        policy: Policy::Adaptive,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        requests: 60_000,
        warmup: 10_000,
    }
}

/// Runs the estimator trials across cache sizes and predictors.
pub fn trials(seed: u64) -> Vec<EstimateTrial> {
    let mut out = Vec::new();
    for &cap in &[16usize, 32, 64] {
        for pk in [PredictorKind::Oracle, PredictorKind::Markov1] {
            let cfg = config(cap, pk);
            let r = run(&cfg, seed);
            // Model-B correction with the realised per-request volume and
            // the per-client cache population n̄(C) = capacity.
            let n_c = cap as f64;
            let n_f = r.prefetches_per_request.min(n_c * 0.5);
            let est_b = (r.h_prime_estimate * n_c / (n_c - n_f)).min(1.0);
            out.push(EstimateTrial {
                cache_capacity: cap,
                predictor: pk.label(),
                twin_h_prime: r.twin_h_prime,
                estimate_a: r.h_prime_estimate,
                estimate_b: est_b,
                real_hit_ratio: r.hit_ratio,
                nf_realised: r.prefetches_per_request,
            });
        }
    }
    out
}

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("# E6 — estimating h' while prefetching is live (paper §4)\n");
    out.push_str("# twin = ground truth (same stream, prefetch off)\n\n");
    let mut table = Table::new(
        "Tagged/untagged estimates vs twin-cache ground truth",
        &[
            "cache",
            "predictor",
            "twin h'",
            "est(A)",
            "est(B)",
            "err(A)",
            "err(B)",
            "real h",
            "n(F)",
        ],
    );
    for t in trials(2001) {
        table.row(vec![
            format!("{}", t.cache_capacity),
            t.predictor.clone(),
            f(t.twin_h_prime, 4),
            f(t.estimate_a, 4),
            f(t.estimate_b, 4),
            f((t.estimate_a - t.twin_h_prime).abs(), 4),
            f((t.estimate_b - t.twin_h_prime).abs(), 4),
            f(t.real_hit_ratio, 4),
            f(t.nf_realised, 3),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: estimate(A) tracks the twin within a few points; the residual\n\
         bias is the eviction damage model A assumes away (prefetched items push\n\
         out entries that would have produced future counterfactual hits) — it\n\
         shrinks as the cache grows, which is the paper's n(C) >> n(F) regime.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_twin_truth() {
        for t in trials(7) {
            // Absolute bias stays within a few points of hit ratio; it is
            // systematically *low* (prefetch evictions destroy future
            // counterfactual hits — the damage model A assumes away).
            assert!(
                (t.estimate_a - t.twin_h_prime).abs() < 0.08,
                "cap {} {}: est {} vs twin {}",
                t.cache_capacity,
                t.predictor,
                t.estimate_a,
                t.twin_h_prime
            );
            assert!(
                t.estimate_a <= t.twin_h_prime + 0.02,
                "bias should be low-sided: est {} twin {}",
                t.estimate_a,
                t.twin_h_prime
            );
        }
    }

    #[test]
    fn relative_bias_shrinks_with_cache_size() {
        // Absolute bias grows with h′ (bigger caches have more hit ratio to
        // damage), but the *relative* error shrinks — the paper's
        // n̄(C) ≫ n̄(F) regime.
        let ts = trials(9);
        let rel_err = |cap: usize| {
            ts.iter()
                .filter(|t| t.cache_capacity == cap && t.predictor == "oracle")
                .map(|t| (t.estimate_a - t.twin_h_prime).abs() / t.twin_h_prime)
                .next()
                .unwrap()
        };
        assert!(
            rel_err(64) <= rel_err(16) + 0.02,
            "rel err64 {} vs err16 {}",
            rel_err(64),
            rel_err(16)
        );
    }
}
