//! E18 — the observability layer over a cooperative latency mesh.
//!
//! E17 proved the sharded driver changes the executor, never the answer;
//! this experiment turns the probes on and shows what the run *looked
//! like*: per-link utilization and queue-depth time-series sampled on the
//! digest-epoch grid, the request-latency histogram (p50/p90/p99), the
//! prefetch pipeline's counters, and the sharded driver's per-shard
//! profile (events, windows, mailbox occupancy, scheduler heap depth).
//! The same telemetry lands machine-readably in `OBS_cluster.json`
//! (section `e18_obs`) for the ROADMAP-3/5 work to consume.
//!
//! The dashboard on stdout carries only deterministic quantities — every
//! sample is virtual-time-gridded and obs-parity pins that attaching the
//! probes never perturbs the report — so the report is byte-stable
//! run-to-run. Wall-clock telemetry (events/sec, preds/sec, window-drain
//! and barrier-wait profiles) is machine-dependent and goes to stderr and
//! the JSON artifact, exactly like E17's scaling numbers.

use crate::asciiplot::sparkline;
use crate::report::{f, Table};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterObs, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy};
use simcore::{Json, ObsConfig};
use workload::synth_web::SynthWebConfig;

const SEED: u64 = 18;
const LAMBDA: f64 = 14.0;

/// Propagation latency on every mesh link — the conservative lookahead,
/// same WAN model as E17.
pub const LATENCY: f64 = 0.05;

/// Full sweep: the 64-proxy cooperative mesh at 4 shards.
pub const FULL: (usize, usize, usize) = (64, 4, 24_000);

/// Reduced CI sweep (`--smoke`): 16 proxies at 2 shards, still through
/// the windowed driver so the profiler columns are exercised.
pub const SMOKE: (usize, usize, usize) = (16, 2, 6_000);

/// Sparkline width of the dashboard's series column.
const SPARK_W: usize = 48;

/// The cooperative latency-mesh fabric E18 observes and E19 traces —
/// shared so the trace experiment's attribution describes the same run
/// family the dashboard summarizes.
pub fn config(n_proxies: usize, total_requests: usize) -> ClusterConfig<'static> {
    let requests = (total_requests / n_proxies).max(60);
    ClusterConfig {
        topology: Topology::mesh_with_latency(
            n_proxies,
            50.0,
            25.0 * n_proxies as f64,
            45.0,
            LATENCY,
        ),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n_proxies)
                    .map(|_| SynthWebConfig {
                        lambda: LAMBDA,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

/// The probe set E18 runs with: series on the digest-epoch grid, a
/// latency histogram sized for sub-second access times, and a flight
/// recorder deep enough to hold the closing window.
pub fn probes() -> ObsConfig {
    ObsConfig::on().with_flight_capacity(512)
}

/// One observed run at the given scale.
pub fn run_observed(n_proxies: usize, shards: usize, total: usize) -> (ClusterReport, ClusterObs) {
    let config = config(n_proxies, total);
    ClusterSim::new(&config).run_observed(SEED, shards, &probes())
}

/// Full-size dashboard (64-proxy mesh).
pub fn render() -> String {
    let (n, shards, total) = FULL;
    render_with(n, shards, total).0
}

/// Reduced CI dashboard.
pub fn render_smoke() -> String {
    let (n, shards, total) = SMOKE;
    render_with(n, shards, total).0
}

/// Runs one observed sweep and renders the dashboard; returns the report
/// text and the artifact section for `OBS_cluster.json`. Wall-clock
/// telemetry goes to stderr (stdout stays byte-stable).
pub fn render_with(n_proxies: usize, shards: usize, total_requests: usize) -> (String, Json) {
    render_impl(n_proxies, shards, total_requests, 0)
}

/// Like [`render_with`], but with span tracing on (the `--top-k` flag):
/// the dashboard gains E19's slowest-traces table. Tracing is a pure
/// observer (`cluster/tests/trace_parity.rs` pins the report
/// bit-identical either way), so every other section is unchanged.
pub fn render_with_top_k(
    n_proxies: usize,
    shards: usize,
    total_requests: usize,
    k: usize,
) -> (String, Json) {
    render_impl(n_proxies, shards, total_requests, k.max(1))
}

fn render_impl(
    n_proxies: usize,
    shards: usize,
    total_requests: usize,
    top_k: usize,
) -> (String, Json) {
    let cfg = config(n_proxies, total_requests);
    let mut probe_set = probes();
    if top_k > 0 {
        probe_set = probe_set.with_trace_every(1);
    }
    let (report, obs) = ClusterSim::new(&cfg).run_observed(SEED, shards, &probe_set);

    let mut out = String::new();
    out.push_str("# E18 — observability: the cluster run as telemetry\n");
    out.push_str(&format!(
        "# {n_proxies}-proxy cooperative mesh, {shards} shard(s) ({} driver), \
         link latency {LATENCY}\n",
        obs.driver
    ));
    out.push_str(&format!(
        "# probe grid {} (the digest epoch); every quantity below is virtual-time\n\
         # deterministic — wall-clock telemetry goes to stderr and OBS_cluster.json\n\n",
        f(obs.grid, 2)
    ));

    // -- time-series probes ------------------------------------------------
    let mut series = Table::new(
        format!("Epoch-grid probes (sparkline over t = 0..{})", f(obs.duration, 1)),
        &["series", "mean", "peak", &format!("{:-^SPARK_W$}", " t ")],
    );
    let spark_row = |table: &mut Table, name: &str, label: &str| {
        if let Some(pts) = obs.registry.series_points(name) {
            let mean = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
            let peak = pts.iter().copied().fold(0.0_f64, f64::max);
            table.row(vec![label.to_string(), f(mean, 3), f(peak, 3), sparkline(pts, SPARK_W)]);
        }
    };
    spark_row(&mut series, "link_util.backbone", "backbone util");
    spark_row(&mut series, &format!("link_util.access[{}]", n_proxies / 2), "median access util");
    spark_row(&mut series, "links.queue_depth", "in-flight jobs");
    spark_row(&mut series, "cache.occupancy_bytes", "cache bytes (all proxies)");
    spark_row(&mut series, "prefetch.outstanding", "outstanding prefetches");
    out.push_str(&series.render());

    // -- latency distribution ----------------------------------------------
    out.push('\n');
    let mut lat_table = Table::new(
        "Request latency (post-warmup accesses, histogram-backed quantiles)",
        &["samples", "mean", "p50", "p90", "p99", "max"],
    );
    if let Some(lat) = obs.latency() {
        let q = |p: f64| obs.latency_quantile(p).map_or("-".into(), |v| f(v, 5));
        lat_table.row(vec![
            lat.moments.count().to_string(),
            f(lat.moments.mean(), 5),
            q(0.50),
            q(0.90),
            q(0.99),
            f(lat.moments.max(), 5),
        ]);
    }
    out.push_str(&lat_table.render());

    // -- pipeline counters --------------------------------------------------
    out.push('\n');
    let mut counters = Table::new(
        "Pipeline counters (merged over shards)",
        &["requests", "pred calls", "predictions", "prefetches", "digest B", "delta ops"],
    );
    let c = |name: &str| obs.registry.counter_value(name).to_string();
    counters.row(vec![
        c("requests.processed"),
        c("predictor.calls"),
        c("predictor.predictions"),
        c("prefetch.issued"),
        c("coop.digest_bytes"),
        c("coop.delta_ops"),
    ]);
    out.push_str(&counters.render());

    // -- per-shard profile (deterministic columns) ---------------------------
    out.push('\n');
    let mut prof = Table::new(
        "Sharded-driver profile (virtual-time-deterministic columns)",
        &[
            "shard",
            "events",
            "windows",
            "refreshes",
            "effects out",
            "mail mean",
            "mail hwm",
            "heap hwm",
        ],
    );
    for p in &obs.profiles {
        prof.row(vec![
            p.shard.to_string(),
            p.events.to_string(),
            p.windows.to_string(),
            p.refreshes.to_string(),
            p.effects_sent.to_string(),
            if p.mail_in.count() > 0 { f(p.mail_in.mean(), 2) } else { "-".into() },
            p.mailbox_hwm.to_string(),
            p.heap_depth_hwm.to_string(),
        ]);
    }
    out.push_str(&prof.render());

    // -- flight recorder ------------------------------------------------------
    if let (Some(first), Some(last)) = (obs.flight.first(), obs.flight.last()) {
        out.push_str(&format!(
            "\nFlight recorder: {} records retained, t = {}..{} (dispatches + \
             cross-shard effects,\nthe diagnostic tail a parity failure would be \
             read from).\n",
            obs.flight.len(),
            f(first.t, 3),
            f(last.t, 3)
        ));
    }

    // -- slowest traces (tracing enabled via --top-k) -------------------------
    if let Some(store) = &obs.traces {
        out.push('\n');
        out.push_str(&crate::experiments::e19_trace::top_k_table(store, top_k).render());
    }

    out.push_str(&format!(
        "\nReading: the probes are pure observers -- `cluster/tests/obs_parity.rs`\n\
         pins the report bit-identical with them on or off, at every shard\n\
         count. Utilization series are busy-time deltas per grid interval, so\n\
         a cell of the backbone sparkline is its rho over that epoch; mailbox\n\
         and heap columns profile the windowed driver itself. Mean access time\n\
         {} matches the report's {}.\n",
        obs.latency().map_or("-".into(), |l| f(l.moments.mean(), 5)),
        f(report.mean_access_time, 5),
    ));

    // Wall-clock telemetry: machine-dependent, so stderr + artifact only.
    eprintln!(
        "e18: {n_proxies} proxies, {shards} shard(s): {:.2}s wall, {:.1} kev/s, {:.1} kpred/s",
        obs.wall_secs,
        obs.events_per_sec() / 1e3,
        obs.preds_per_sec() / 1e3
    );

    let section = obs
        .to_json()
        .set("experiment", Json::str("e18_obs"))
        .set("n_proxies", Json::num(n_proxies as f64))
        .set("mean_access_time", Json::num(report.mean_access_time))
        .set("report", cluster::report_to_json(&report));
    (out, section)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dashboard_contains_all_sections() {
        let (text, section) = {
            let (n, shards, total) = SMOKE;
            render_with(n, shards, total)
        };
        assert!(text.contains("Epoch-grid probes"));
        assert!(text.contains("backbone util"));
        assert!(text.contains("Request latency"));
        assert!(text.contains("Pipeline counters"));
        assert!(text.contains("Sharded-driver profile"));
        assert!(text.contains("Flight recorder"));
        // The artifact section carries the acceptance-criteria payload.
        assert!(section.get("latency").and_then(|l| l.get("p50")).is_some());
        assert!(section.get("link_util").is_some());
        assert!(section.get("profiles").and_then(Json::as_arr).map(<[Json]>::len) == Some(SMOKE.1));
        assert!(section.get("preds_per_sec").is_some());
        assert!(section.get("report").is_some());
    }

    #[test]
    fn top_k_flag_appends_the_slowest_traces() {
        let (n, shards, total) = SMOKE;
        let (text, section) = render_with_top_k(n, shards, total, 3);
        assert!(text.contains("Top-3 slowest traces"));
        // Tracing also lands in the artifact section.
        assert!(section.get("trace").and_then(|t| t.get("traces")).is_some());
    }

    #[test]
    fn smoke_dashboard_is_deterministic() {
        let (n, shards, total) = SMOKE;
        assert_eq!(render_with(n, shards, total).0, render_with(n, shards, total).0);
    }
}
