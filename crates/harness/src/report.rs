//! Plain-text tables and CSV output for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table with a title.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            let mut first = true;
            for (c, w) in cells.iter().zip(width) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let pad = w.saturating_sub(c.chars().count());
                // Right-align numbers-ish, left-align text: keep it simple
                // and right-align everything except the first column.
                out.push_str(&" ".repeat(pad));
                out.push_str(c);
            }
            out.push('\n');
        };
        line(&self.headers, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        out
    }

    /// Renders as CSV (headers + rows, comma-separated, quoted as needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Helper: format an `f64` cell.
pub fn f(v: f64, precision: usize) -> String {
    format!("{v:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1.00".into()]);
        t.row(vec!["longer".into(), "22.50".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows
        assert_eq!(lines.len(), 5);
        // Both value cells end-aligned to the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "has \"quote\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
    }

    #[test]
    fn f_formats() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
