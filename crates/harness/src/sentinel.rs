//! Regression sentinel: structural diff of a run artifact against its
//! committed baseline.
//!
//! The artifacts (`OBS_cluster.json`, `BENCH_cluster.json`) mix two kinds
//! of numbers. Virtual-time quantities — counters, latencies,
//! utilizations, attribution shares — are deterministic: same code, same
//! seed ⇒ same value, so any drift is a behaviour change worth failing CI
//! over. Wall-clock quantities (elapsed seconds, throughput rates) are
//! machine noise and are excluded by *schema*: a field is skipped when
//! any path component contains `"wall"`, ends in `"_per_sec"`, or names a
//! known machine-derived metric ([`EXCLUDED_FIELDS`]).
//!
//! Tolerance bands: integral values (counts, event totals) must match
//! exactly; other floats to relative tolerance [`DEFAULT_REL_TOL`] —
//! loose enough for cross-platform libm differences in transcendentals,
//! tight enough that a real change (±10% on a latency, one extra event)
//! is caught. Structure is exact: a missing, extra, or type-changed field
//! is drift.

use simcore::Json;

/// Relative tolerance on non-integral floats.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Machine-derived fields excluded by exact name (beyond the `"wall"` /
/// `"_per_sec"` patterns): bench wall times and the derived scaling
/// ratio, which moves with host load.
pub const EXCLUDED_FIELDS: [&str; 2] = ["speedup_vs_1shard", "mean_secs"];

/// One detected divergence from the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Dotted path of the field, e.g. `sections.e19_trace.classes.demand.mean_latency`.
    pub path: String,
    /// What the baseline records at that path.
    pub expected: String,
    /// What the current artifact has (or "absent").
    pub got: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(out, "{}: baseline {} vs current {}", self.path, self.expected, self.got)
    }
}

/// Is this path component a wall-clock/machine-dependent field?
fn excluded(component: &str) -> bool {
    component.contains("wall")
        || component.ends_with("_per_sec")
        || EXCLUDED_FIELDS.contains(&component)
}

/// Values that must match exactly: integral-valued numbers inside the
/// range where `f64` holds integers exactly — counters, counts, ids.
fn is_integral(x: f64) -> bool {
    x.fract() == 0.0 && x.abs() < 2f64.powi(53)
}

fn render_short(v: &Json) -> String {
    match v {
        Json::Obj(_) => "{object}".to_string(),
        Json::Arr(a) => format!("[array of {}]", a.len()),
        other => other.render(),
    }
}

/// Compares `current` against `baseline`, collecting every drift. Paths
/// through excluded (wall-clock) fields are skipped entirely.
pub fn compare(baseline: &Json, current: &Json, rel_tol: f64) -> Vec<Drift> {
    let mut drifts = Vec::new();
    walk(baseline, current, &mut String::new(), rel_tol, &mut drifts);
    drifts
}

fn push(drifts: &mut Vec<Drift>, path: &str, expected: &Json, got: Option<&Json>) {
    drifts.push(Drift {
        path: if path.is_empty() { "<root>".to_string() } else { path.to_string() },
        expected: render_short(expected),
        got: got.map_or("absent".to_string(), render_short),
    });
}

fn walk(base: &Json, cur: &Json, path: &mut String, rel_tol: f64, drifts: &mut Vec<Drift>) {
    match (base, cur) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (key, bv) in b {
                if excluded(key) {
                    continue;
                }
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(key);
                match c.iter().find(|(k, _)| k == key) {
                    Some((_, cv)) => walk(bv, cv, path, rel_tol, drifts),
                    None => push(drifts, path, bv, None),
                }
                path.truncate(len);
            }
            for (key, cv) in c {
                if !excluded(key) && !b.iter().any(|(k, _)| k == key) {
                    let p = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                    drifts.push(Drift {
                        path: p,
                        expected: "absent".to_string(),
                        got: render_short(cv),
                    });
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                drifts.push(Drift {
                    path: path.clone(),
                    expected: format!("[array of {}]", b.len()),
                    got: format!("[array of {}]", c.len()),
                });
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                let len = path.len();
                path.push_str(&format!("[{i}]"));
                walk(bv, cv, path, rel_tol, drifts);
                path.truncate(len);
            }
        }
        (Json::Num(b), Json::Num(c)) => {
            let equal = if is_integral(*b) && is_integral(*c) {
                b == c
            } else {
                (b - c).abs() <= rel_tol * b.abs().max(c.abs()).max(1e-300)
            };
            if !equal {
                push(drifts, path, base, Some(cur));
            }
        }
        _ => {
            // Different variants, or scalars compared exactly.
            if base != cur {
                push(drifts, path, base, Some(cur));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(latency: f64, events: f64, wall: f64) -> Json {
        Json::obj().set(
            "sections",
            Json::obj().set(
                "e19_trace",
                Json::obj()
                    .set("mean_latency", Json::num(latency))
                    .set("events", Json::num(events))
                    .set("wall_secs", Json::num(wall))
                    .set("preds_per_sec", Json::num(wall * 7.0))
                    .set("mean_secs", Json::num(wall / 3.0)),
            ),
        )
    }

    #[test]
    fn identical_artifacts_have_no_drift() {
        let a = doc(0.123456789, 5000.0, 1.0);
        assert!(compare(&a, &a, DEFAULT_REL_TOL).is_empty());
    }

    #[test]
    fn wall_clock_fields_are_excluded_by_schema() {
        // Same virtual-time numbers, wildly different machine speed.
        let drifts = compare(&doc(0.5, 10.0, 1.0), &doc(0.5, 10.0, 97.0), DEFAULT_REL_TOL);
        assert!(drifts.is_empty(), "{drifts:?}");
    }

    #[test]
    fn ten_percent_latency_drift_is_detected() {
        let drifts = compare(&doc(0.5, 10.0, 1.0), &doc(0.55, 10.0, 1.0), DEFAULT_REL_TOL);
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert!(drifts[0].path.ends_with("mean_latency"), "{}", drifts[0]);
        let down = compare(&doc(0.5, 10.0, 1.0), &doc(0.45, 10.0, 1.0), DEFAULT_REL_TOL);
        assert_eq!(down.len(), 1, "−10% caught too");
    }

    #[test]
    fn float_noise_within_tolerance_passes_but_counts_are_exact() {
        let base = doc(0.5, 10.0, 1.0);
        // 1e-12 relative wiggle on a float: inside the band.
        assert!(compare(&base, &doc(0.5 + 5e-13, 10.0, 1.0), DEFAULT_REL_TOL).is_empty());
        // One extra event: integral ⇒ exact ⇒ drift.
        let drifts = compare(&base, &doc(0.5, 11.0, 1.0), DEFAULT_REL_TOL);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].path.ends_with("events"));
    }

    #[test]
    fn structural_changes_are_drift() {
        let base = doc(0.5, 10.0, 1.0);
        // Missing field.
        let mut missing = base.clone();
        if let Json::Obj(sections) = missing.get("sections").unwrap().clone() {
            let e19 = Json::Obj(
                sections[0]
                    .1
                    .as_obj()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| k != "events")
                    .cloned()
                    .collect(),
            );
            missing.insert("sections", Json::obj().set("e19_trace", e19));
        }
        let drifts = compare(&base, &missing, DEFAULT_REL_TOL);
        assert!(drifts.iter().any(|d| d.path.ends_with("events") && d.got == "absent"));
        // Extra field.
        let extra = Json::obj()
            .set("sections", base.get("sections").unwrap().clone())
            .set("surprise", Json::num(1.0));
        let drifts = compare(&base, &extra, DEFAULT_REL_TOL);
        assert!(drifts.iter().any(|d| d.path == "surprise" && d.expected == "absent"));
        // Type change.
        let retyped = Json::obj().set("sections", Json::str("gone"));
        assert!(!compare(&base, &retyped, DEFAULT_REL_TOL).is_empty());
    }

    #[test]
    fn array_length_and_element_drift() {
        let base = Json::obj().set("xs", Json::nums([1.0, 2.5, 3.0]));
        let longer = Json::obj().set("xs", Json::nums([1.0, 2.5, 3.0, 4.0]));
        assert_eq!(compare(&base, &longer, DEFAULT_REL_TOL).len(), 1);
        let changed = Json::obj().set("xs", Json::nums([1.0, 2.75, 3.0]));
        let drifts = compare(&base, &changed, DEFAULT_REL_TOL);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].path, "xs[1]");
    }
}
