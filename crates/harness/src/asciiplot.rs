//! Terminal line plots, for regenerating the paper's figures as ASCII
//! charts (each series gets its own marker character, like the paper's
//! gnuplot keys).

/// One chart series: label, marker character, and `(x, y)` points.
type Series = (String, char, Vec<(f64, f64)>);

/// A multi-series scatter/line chart rendered to a character grid.
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    x_range: (f64, f64),
    y_range: (f64, f64),
    series: Vec<Series>,
}

const MARKERS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&', '^', '~'];

impl Chart {
    pub fn new(
        title: impl Into<String>,
        x_range: (f64, f64),
        y_range: (f64, f64),
        width: usize,
        height: usize,
    ) -> Self {
        assert!(x_range.1 > x_range.0 && y_range.1 > y_range.0);
        assert!(width >= 16 && height >= 6);
        Chart { title: title.into(), width, height, x_range, y_range, series: Vec::new() }
    }

    /// Adds a series; points outside the ranges are clipped (exactly how
    /// the paper's fixed axes handle diverging curves).
    pub fn series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        let marker = MARKERS[self.series.len() % MARKERS.len()];
        self.series.push((label.into(), marker, points));
        self
    }

    pub fn render(&self) -> String {
        let mut grid = vec![vec![' '; self.width]; self.height];
        let (x0, x1) = self.x_range;
        let (y0, y1) = self.y_range;
        for (_, marker, pts) in &self.series {
            for &(x, y) in pts {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                if x < x0 || x > x1 || y < y0 || y > y1 {
                    continue;
                }
                let col = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let row = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row;
                grid[row][col] = *marker;
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let ylab_w = 9;
        for (i, row) in grid.iter().enumerate() {
            let yv = y1 - (y1 - y0) * i as f64 / (self.height - 1) as f64;
            let label = if i % 4 == 0 || i == self.height - 1 {
                format!("{yv:>8.3} ")
            } else {
                " ".repeat(ylab_w)
            };
            out.push_str(&label);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(ylab_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&" ".repeat(ylab_w + 1));
        // x labels at edges and middle
        let mid = format!("{:.2}", (x0 + x1) / 2.0);
        let left = format!("{x0:.2}");
        let right = format!("{x1:.2}");
        let mut xaxis = vec![' '; self.width];
        for (pos, s) in [
            (0usize, &left),
            (self.width / 2 - mid.len().min(self.width / 2) / 2, &mid),
            (self.width - right.len(), &right),
        ] {
            for (j, ch) in s.chars().enumerate() {
                if pos + j < self.width {
                    xaxis[pos + j] = ch;
                }
            }
        }
        out.push_str(&xaxis.iter().collect::<String>());
        out.push('\n');
        for (label, marker, _) in &self.series {
            out.push_str(&format!("  {marker} {label}\n"));
        }
        out
    }
}

/// The density ramp a sparkline cell is drawn from (pure ASCII, so the
/// dashboards stay byte-stable across terminals and locales).
const SPARK_RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a time series as a one-line ASCII sparkline of exactly `width`
/// cells. The series is resampled by bucket-averaging (each cell covers a
/// contiguous slice of points), then scaled to `[0, max]` — zero is always
/// the ramp's blank so idle periods read as gaps. Non-finite points are
/// skipped; an empty or all-zero series renders as blanks.
pub fn sparkline(points: &[f64], width: usize) -> String {
    assert!(width > 0);
    let finite: Vec<f64> = points.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(width);
    }
    let cells: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * finite.len() / width;
            let hi = ((c + 1) * finite.len() / width).max(lo + 1).min(finite.len());
            if lo >= finite.len() {
                return f64::NAN;
            }
            finite[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let max = cells.iter().copied().filter(|x| x.is_finite()).fold(0.0_f64, f64::max);
    cells
        .iter()
        .map(|&v| {
            if !v.is_finite() || max <= 0.0 {
                return ' ';
            }
            let idx = (v / max * (SPARK_RAMP.len() - 1) as f64).round() as usize;
            SPARK_RAMP[idx.min(SPARK_RAMP.len() - 1)] as char
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_range() {
        let mut c = Chart::new("t", (0.0, 10.0), (0.0, 1.0), 40, 10);
        c.series("line", vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)]);
        let s = c.render();
        assert!(s.contains("## t"));
        assert!(s.contains('*'));
        assert!(s.contains("* line"));
    }

    #[test]
    fn clips_out_of_range() {
        let mut c = Chart::new("t", (0.0, 1.0), (0.0, 1.0), 20, 6);
        c.series("s", vec![(2.0, 0.5), (0.5, 5.0), (f64::NAN, 0.1)]);
        let s = c.render();
        // No marker should appear in the grid.
        let grid_lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert!(grid_lines.iter().all(|l| !l.contains('*')));
    }

    #[test]
    fn distinct_markers_per_series() {
        let mut c = Chart::new("t", (0.0, 1.0), (0.0, 1.0), 20, 6);
        c.series("a", vec![(0.2, 0.2)]);
        c.series("b", vec![(0.8, 0.8)]);
        let s = c.render();
        assert!(s.contains("* a"));
        assert!(s.contains("+ b"));
    }

    #[test]
    fn monotone_series_renders_monotone() {
        // The highest y must land on an earlier (upper) line than the lowest.
        let mut c = Chart::new("t", (0.0, 1.0), (0.0, 1.0), 30, 10);
        c.series("s", vec![(0.0, 0.05), (1.0, 0.95)]);
        let s = c.render();
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let top = rows.iter().position(|l| l.contains('*')).unwrap();
        let bottom = rows.iter().rposition(|l| l.contains('*')).unwrap();
        assert!(top < bottom);
        // Top row marker is to the right (x=1), bottom to the left (x=0).
        let top_col = rows[top].find('*').unwrap();
        let bottom_col = rows[bottom].find('*').unwrap();
        assert!(top_col > bottom_col);
    }

    #[test]
    fn sparkline_has_fixed_width_and_scale() {
        let s = sparkline(&[0.0, 0.5, 1.0], 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.chars().next(), Some(' '), "zero is blank");
        assert_eq!(s.chars().last(), Some('@'), "max hits the ramp top");
        assert!(s.is_ascii());
    }

    #[test]
    fn sparkline_resamples_long_series() {
        let pts: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&pts, 10);
        assert_eq!(s.len(), 10);
        // Monotone input stays monotone after bucket-averaging.
        let ranks: Vec<usize> =
            s.bytes().map(|b| SPARK_RAMP.iter().position(|&r| r == b).unwrap()).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{s:?}");
    }

    #[test]
    fn sparkline_degenerate_inputs() {
        assert_eq!(sparkline(&[], 4), "    ");
        assert_eq!(sparkline(&[0.0, 0.0], 4), "    ");
        assert_eq!(sparkline(&[f64::NAN, 1.0], 2).len(), 2);
        // Fewer points than cells still fills the width.
        assert_eq!(sparkline(&[1.0], 5).len(), 5);
    }
}
