//! The `OBS_cluster.json` observability artifact.
//!
//! The machine-readable twin of the experiment dashboards, living next to
//! the bench shim's `BENCH_cluster.json`: one JSON document with named
//! sections, each written by the experiment binary that produced it
//! (`--bin obs` → `e18_obs`, `--bin shard` → `e17_strong_scaling`).
//! Sections are merged read-modify-write through `simcore::Json::parse`,
//! so successive binaries extend one artifact instead of clobbering each
//! other — CI archives the result and schema-checks it with
//! `--bin obs -- --check`.

use simcore::Json;
use std::path::Path;

/// Default artifact filename, resolved against the working directory (the
/// repository root under `cargo run`, mirroring `BENCH_cluster.json`).
pub const OBS_ARTIFACT: &str = "OBS_cluster.json";

/// Chrome trace-event export written by `--bin trace` (E19): the full
/// span set of the traced run, loadable in Perfetto / `chrome://tracing`.
/// A standalone file — the viewer wants the document at top level, so it
/// cannot be a section of [`OBS_ARTIFACT`].
pub const TRACE_ARTIFACT: &str = "TRACE_cluster.json";

/// Loads the artifact at `path`, or a fresh shell when it is missing or
/// unparseable (a corrupt artifact is rebuilt, not appended to).
pub fn load(path: &Path) -> Json {
    let parsed = std::fs::read_to_string(path).ok().and_then(|text| Json::parse(&text).ok());
    match parsed {
        Some(doc) if doc.get("sections").is_some() => doc,
        _ => Json::obj().set("artifact", Json::str("OBS_cluster")).set("sections", Json::obj()),
    }
}

/// Read-modify-writes one named section into the artifact at `path`.
pub fn write_section(path: &Path, name: &str, section: Json) -> std::io::Result<()> {
    let mut doc = load(path);
    let mut sections = doc.get("sections").cloned().unwrap_or_else(Json::obj);
    sections.insert(name, section);
    doc.insert("sections", sections);
    std::fs::write(path, doc.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_merge_across_writes() {
        let dir = std::env::temp_dir().join("obs_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(OBS_ARTIFACT);
        let _ = std::fs::remove_file(&path);

        write_section(&path, "a", Json::obj().set("x", Json::num(1.0))).unwrap();
        write_section(&path, "b", Json::obj().set("y", Json::num(2.0))).unwrap();
        write_section(&path, "a", Json::obj().set("x", Json::num(3.0))).unwrap();

        let doc = load(&path);
        assert_eq!(doc.get("artifact").and_then(Json::as_str), Some("OBS_cluster"));
        let sections = doc.get("sections").unwrap();
        assert_eq!(
            sections.get("a").and_then(|s| s.get("x")).and_then(Json::as_f64),
            Some(3.0),
            "rewrite replaces the section"
        );
        assert_eq!(sections.get("b").and_then(|s| s.get("y")).and_then(Json::as_f64), Some(2.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_artifact_is_rebuilt() {
        let dir = std::env::temp_dir().join("obs_artifact_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(OBS_ARTIFACT);
        std::fs::write(&path, "{not json").unwrap();
        write_section(&path, "s", Json::obj()).unwrap();
        assert!(load(&path).get("sections").unwrap().get("s").is_some());
        std::fs::remove_file(&path).unwrap();
    }
}
