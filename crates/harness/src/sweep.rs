//! Parameter-grid sweeps, run in parallel with deterministic seeding.
//!
//! Experiments E7/E9 evaluate the same simulation at many independent
//! parameter points; [`Sweep`] builds the cartesian grid, derives one
//! deterministic seed per point (SplitMix64 over the point index — results
//! do not depend on scheduling), and fans the work out over
//! `simcore::par`.

use simcore::par::par_map_auto;
use simcore::rng::splitmix64;

/// A rectangular sweep over up to three axes.
#[derive(Clone, Debug)]
pub struct Sweep {
    axes: Vec<(String, Vec<f64>)>,
    base_seed: u64,
}

/// One grid point handed to the experiment closure.
#[derive(Clone, Debug)]
pub struct Point {
    /// Axis values in axis order.
    pub values: Vec<f64>,
    /// Deterministic per-point seed.
    pub seed: u64,
    /// Flat index in the grid.
    pub index: usize,
}

impl Point {
    /// Value of the named axis (panics when absent — a sweep bug).
    pub fn get(&self, sweep: &Sweep, name: &str) -> f64 {
        let idx = sweep
            .axes
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown axis {name}"));
        self.values[idx]
    }
}

impl Sweep {
    pub fn new(base_seed: u64) -> Self {
        Sweep { axes: Vec::new(), base_seed }
    }

    /// Adds an axis with explicit values.
    pub fn axis(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "axis needs at least one value");
        assert!(self.axes.len() < 3, "at most three axes");
        self.axes.push((name.into(), values));
        self
    }

    /// Adds a linearly spaced axis with `n ≥ 2` points over `[lo, hi]`.
    pub fn axis_linspace(self, name: impl Into<String>, lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 2 && hi > lo);
        let values = (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect();
        self.axis(name, values)
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the grid points (row-major over axis order).
    pub fn points(&self) -> Vec<Point> {
        let n = self.len();
        (0..n)
            .map(|index| {
                let mut rem = index;
                let mut values = Vec::with_capacity(self.axes.len());
                for (_, axis) in self.axes.iter().rev() {
                    values.push(axis[rem % axis.len()]);
                    rem /= axis.len();
                }
                values.reverse();
                let mut state = self.base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9);
                let seed = splitmix64(&mut state);
                Point { values, seed, index }
            })
            .collect()
    }

    /// Runs `f` at every grid point in parallel; results come back in
    /// grid order regardless of thread scheduling.
    pub fn run<R: Send>(&self, f: impl Fn(&Point) -> R + Sync) -> Vec<(Point, R)> {
        let points = self.points();
        let results = par_map_auto(&points, |_, p| f(p));
        points.into_iter().zip(results).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_grid_enumeration() {
        let sweep = Sweep::new(1).axis("a", vec![1.0, 2.0]).axis("b", vec![10.0, 20.0, 30.0]);
        assert_eq!(sweep.len(), 6);
        let pts = sweep.points();
        assert_eq!(pts[0].values, vec![1.0, 10.0]);
        assert_eq!(pts[1].values, vec![1.0, 20.0]);
        assert_eq!(pts[3].values, vec![2.0, 10.0]);
        assert_eq!(pts[5].values, vec![2.0, 30.0]);
    }

    #[test]
    fn named_axis_lookup() {
        let sweep = Sweep::new(2).axis("p", vec![0.5]).axis("nf", vec![1.0, 2.0]);
        let pts = sweep.points();
        assert_eq!(pts[1].get(&sweep, "p"), 0.5);
        assert_eq!(pts[1].get(&sweep, "nf"), 2.0);
    }

    #[test]
    fn linspace_endpoints() {
        let sweep = Sweep::new(3).axis_linspace("x", 0.0, 10.0, 5);
        let pts = sweep.points();
        assert_eq!(pts[0].values[0], 0.0);
        assert_eq!(pts[4].values[0], 10.0);
        assert_eq!(pts[2].values[0], 5.0);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let s1 = Sweep::new(7).axis("x", vec![1.0, 2.0, 3.0]);
        let s2 = Sweep::new(7).axis("x", vec![1.0, 2.0, 3.0]);
        let seeds1: Vec<u64> = s1.points().iter().map(|p| p.seed).collect();
        let seeds2: Vec<u64> = s2.points().iter().map(|p| p.seed).collect();
        assert_eq!(seeds1, seeds2);
        assert_ne!(seeds1[0], seeds1[1]);
        // Different base seed → different point seeds.
        let s3 = Sweep::new(8).axis("x", vec![1.0, 2.0, 3.0]);
        assert_ne!(seeds1, s3.points().iter().map(|p| p.seed).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_run_preserves_order() {
        let sweep = Sweep::new(4).axis_linspace("x", 1.0, 64.0, 64);
        let results = sweep.run(|p| p.values[0] * 2.0);
        for (i, (point, r)) in results.iter().enumerate() {
            assert_eq!(point.index, i);
            assert_eq!(*r, point.values[0] * 2.0);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_axis_panics() {
        let sweep = Sweep::new(5).axis("x", vec![1.0]);
        let pts = sweep.points();
        pts[0].get(&sweep, "nope");
    }
}
