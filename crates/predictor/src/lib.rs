//! # predictor — access models for speculative prefetching
//!
//! The paper (§1) assumes some access model supplies, after each request,
//! a set of candidate items with access probabilities; its contribution is
//! *what to do with them* (the threshold policy). This crate supplies the
//! access models of the related-work section, so the end-to-end experiments
//! exercise the full pipeline:
//!
//! * [`markov`] — order-k Markov predictors over request history (Vitter &
//!   Krishnan's setting);
//! * [`ppm`] — prediction-by-partial-matching blend of orders with
//!   escape probabilities;
//! * [`depgraph`] — Padmanabhan & Mogul's dependency graph (items accessed
//!   within a lookahead window);
//! * [`lz78`] — the Vitter–Krishnan LZ78 parse-tree predictor;
//! * [`oracle`] — ground-truth probabilities from the generating Markov
//!   chain (isolates policy behaviour from estimation error);
//! * [`eval`] — scoring: hit@k, coverage, calibration.
//!
//! All predictors implement [`Predictor`]: observe the stream one item at a
//! time, emit probability-ranked candidates for the *next* access.

pub mod depgraph;
pub mod ensemble;
pub mod eval;
pub mod lz78;
pub mod markov;
pub mod oracle;
pub mod ppm;

pub use depgraph::DependencyGraph;
pub use ensemble::Ensemble;
pub use eval::{evaluate, EvalReport};
pub use lz78::Lz78Predictor;
pub use markov::MarkovPredictor;
pub use oracle::OraclePredictor;
pub use ppm::PpmPredictor;

use workload::ItemId;

/// A sequential access predictor.
pub trait Predictor {
    /// Feeds the next observed request.
    fn observe(&mut self, item: ItemId);

    /// Probability-ranked candidates for the next request (descending
    /// probability, at most `max` entries). Probabilities are the
    /// predictor's estimates of `P(next = item | history)` and need not sum
    /// to 1 (the tail is truncated).
    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Resets all learned state.
    fn reset(&mut self);
}

/// Sorts candidate lists canonically: descending probability, ascending id
/// for ties (determinism across HashMap iteration orders).
pub(crate) fn sort_candidates(v: &mut Vec<(ItemId, f64)>, max: usize) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(max);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_candidates_is_deterministic() {
        let mut v = vec![(ItemId(3), 0.2), (ItemId(1), 0.5), (ItemId(2), 0.2), (ItemId(0), 0.1)];
        sort_candidates(&mut v, 3);
        assert_eq!(v, vec![(ItemId(1), 0.5), (ItemId(2), 0.2), (ItemId(3), 0.2)]);
    }
}
