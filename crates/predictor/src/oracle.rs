//! Oracle predictor: the generating chain's true probabilities.
//!
//! The paper's analysis assumes the access probabilities `p` are *known*.
//! The oracle realises that assumption in simulation, isolating the
//! threshold policy's behaviour from prediction error; comparing a learned
//! predictor against the oracle quantifies how much of the analytic gain
//! survives estimation noise.

use crate::{sort_candidates, Predictor};
use std::collections::HashMap;
use workload::{ItemId, MarkovChain};

/// Predictor with perfect knowledge of a first-order Markov source.
pub struct OraclePredictor {
    successors: HashMap<ItemId, Vec<(ItemId, f64)>>,
    current: Option<ItemId>,
}

impl OraclePredictor {
    /// Snapshots the chain's transition structure.
    pub fn from_chain(chain: &MarkovChain) -> Self {
        let mut successors = HashMap::with_capacity(chain.len());
        for i in 0..chain.len() as u64 {
            successors.insert(ItemId(i), chain.successors(ItemId(i)));
        }
        OraclePredictor { successors, current: None }
    }

    /// True `P(next = b | current)`.
    pub fn prob(&self, b: ItemId) -> f64 {
        let Some(cur) = self.current else { return 0.0 };
        self.successors
            .get(&cur)
            .and_then(|s| s.iter().find(|(id, _)| *id == b))
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

impl Predictor for OraclePredictor {
    fn observe(&mut self, item: ItemId) {
        self.current = Some(item);
    }

    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)> {
        let Some(cur) = self.current else {
            return Vec::new();
        };
        let mut v = self.successors.get(&cur).cloned().unwrap_or_default();
        sort_candidates(&mut v, max);
        v
    }

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Rng;

    #[test]
    fn reports_exact_chain_probabilities() {
        let mut rng = Rng::new(1);
        let chain = MarkovChain::random(20, 3, 0.5, &mut rng);
        let mut o = OraclePredictor::from_chain(&chain);
        o.observe(ItemId(4));
        for (succ, p) in chain.successors(ItemId(4)) {
            assert!((o.prob(succ) - p).abs() < 1e-12);
        }
        let c = o.candidates(3);
        assert_eq!(c, chain.successors(ItemId(4)));
    }

    #[test]
    fn candidates_empty_before_first_observation() {
        let mut rng = Rng::new(2);
        let chain = MarkovChain::random(5, 2, 0.5, &mut rng);
        let o = OraclePredictor::from_chain(&chain);
        assert!(o.candidates(5).is_empty());
    }

    #[test]
    fn oracle_is_calibrated() {
        // Empirical frequency of the top candidate must equal its stated
        // probability.
        use workload::RequestStream;
        let mut rng = Rng::new(3);
        let mut chain = MarkovChain::random(10, 2, 0.5, &mut rng);
        let mut o = OraclePredictor::from_chain(&chain);
        let mut hits = 0usize;
        let mut preds = 0usize;
        let mut stated = 0.0;
        o.observe(chain.state());
        for _ in 0..100_000 {
            let c = o.candidates(1);
            let (top, p) = c[0];
            let actual = chain.next_item(&mut rng);
            preds += 1;
            stated += p;
            if actual == top {
                hits += 1;
            }
            o.observe(actual);
        }
        let emp = hits as f64 / preds as f64;
        let avg_stated = stated / preds as f64;
        assert!((emp - avg_stated).abs() < 0.01, "empirical {emp} vs stated {avg_stated}");
    }
}
