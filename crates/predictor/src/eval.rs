//! Predictor evaluation: accuracy, coverage, and calibration.
//!
//! The paper's policy consumes *probabilities*, so a predictor is only as
//! useful as its probability estimates are calibrated: if items flagged
//! "p ≈ 0.7" are actually accessed 70% of the time, the threshold rule
//! inherits the analytic guarantees. [`evaluate`] scores hit-rate@k and
//! bucket calibration in one streaming pass.

use crate::Predictor;
use simcore::rng::Rng;
use workload::RequestStream;

/// Evaluation summary of one predictor over one stream.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Predictor name.
    pub name: &'static str,
    /// Requests scored (after warm-up).
    pub scored: usize,
    /// Fraction of requests where the top-1 candidate was correct.
    pub hit_at_1: f64,
    /// Fraction where the next request appeared in the top-k candidates.
    pub hit_at_k: f64,
    /// The `k` used for `hit_at_k`.
    pub k: usize,
    /// Calibration buckets: (predicted-probability midpoint, empirical
    /// frequency, samples). Ten buckets over [0, 1].
    pub calibration: Vec<(f64, f64, usize)>,
    /// Mean absolute calibration error, weighted by bucket population.
    pub calibration_error: f64,
}

/// Runs `predictor` over `n` requests from `stream` (after `warmup`
/// unscored requests) and scores it.
pub fn evaluate<P: Predictor, S: RequestStream>(
    predictor: &mut P,
    stream: &mut S,
    warmup: usize,
    n: usize,
    k: usize,
    rng: &mut Rng,
) -> EvalReport {
    let mut hit1 = 0usize;
    let mut hitk = 0usize;
    let mut scored = 0usize;
    let mut bucket_pred = [0.0f64; 10];
    let mut bucket_hits = [0usize; 10];
    let mut bucket_n = [0usize; 10];

    for i in 0..warmup + n {
        let candidates = if i >= warmup { predictor.candidates(k) } else { Vec::new() };
        let actual = stream.next_item(rng);
        if i >= warmup && !candidates.is_empty() {
            scored += 1;
            if candidates[0].0 == actual {
                hit1 += 1;
            }
            if candidates.iter().any(|(id, _)| *id == actual) {
                hitk += 1;
            }
            for (id, p) in &candidates {
                let b = ((p * 10.0) as usize).min(9);
                bucket_pred[b] += p;
                bucket_n[b] += 1;
                if *id == actual {
                    bucket_hits[b] += 1;
                }
            }
        }
        predictor.observe(actual);
    }

    let mut calibration = Vec::new();
    let mut err_weighted = 0.0;
    let mut total_weight = 0usize;
    for b in 0..10 {
        if bucket_n[b] == 0 {
            continue;
        }
        let mid = bucket_pred[b] / bucket_n[b] as f64;
        let emp = bucket_hits[b] as f64 / bucket_n[b] as f64;
        calibration.push((mid, emp, bucket_n[b]));
        err_weighted += (mid - emp).abs() * bucket_n[b] as f64;
        total_weight += bucket_n[b];
    }

    EvalReport {
        name: predictor.name(),
        scored,
        hit_at_1: hit1 as f64 / scored.max(1) as f64,
        hit_at_k: hitk as f64 / scored.max(1) as f64,
        k,
        calibration,
        calibration_error: if total_weight > 0 {
            err_weighted / total_weight as f64
        } else {
            f64::NAN
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::MarkovPredictor;
    use crate::oracle::OraclePredictor;
    use crate::ppm::PpmPredictor;
    use workload::MarkovChain;

    fn test_chain(rng: &mut Rng) -> MarkovChain {
        MarkovChain::random(50, 3, 0.4, rng)
    }

    #[test]
    fn oracle_is_well_calibrated() {
        let mut rng = Rng::new(1);
        let mut chain = test_chain(&mut rng);
        let mut oracle = OraclePredictor::from_chain(&chain);
        let report = evaluate(&mut oracle, &mut chain, 100, 30_000, 3, &mut rng);
        assert!(report.calibration_error < 0.02, "calib err {}", report.calibration_error);
        assert!(report.hit_at_k > 0.95, "hit@3 {}", report.hit_at_k);
    }

    #[test]
    fn markov_converges_to_oracle_accuracy() {
        let mut rng = Rng::new(2);
        let mut chain = test_chain(&mut rng);
        let mut learned = MarkovPredictor::new(1);
        let lr = evaluate(&mut learned, &mut chain, 20_000, 30_000, 3, &mut rng);

        let mut rng2 = Rng::new(2);
        let mut chain2 = test_chain(&mut rng2);
        let mut oracle = OraclePredictor::from_chain(&chain2);
        let or = evaluate(&mut oracle, &mut chain2, 20_000, 30_000, 3, &mut rng2);

        assert!(
            (lr.hit_at_1 - or.hit_at_1).abs() < 0.03,
            "learned {} vs oracle {}",
            lr.hit_at_1,
            or.hit_at_1
        );
        assert!(lr.calibration_error < 0.05, "calib {}", lr.calibration_error);
    }

    #[test]
    fn ppm_scores_reasonably() {
        let mut rng = Rng::new(3);
        let mut chain = test_chain(&mut rng);
        let mut ppm = PpmPredictor::new(2);
        let report = evaluate(&mut ppm, &mut chain, 20_000, 20_000, 3, &mut rng);
        assert!(report.hit_at_1 > 0.4, "hit@1 {}", report.hit_at_1);
        assert!(report.hit_at_k >= report.hit_at_1);
    }

    #[test]
    fn report_counts_consistent() {
        let mut rng = Rng::new(4);
        let mut chain = test_chain(&mut rng);
        let mut pred = MarkovPredictor::new(1);
        let report = evaluate(&mut pred, &mut chain, 1000, 5000, 3, &mut rng);
        assert!(report.scored <= 5000);
        assert!(report.scored > 4000, "scored {}", report.scored);
        assert!(report.hit_at_1 <= report.hit_at_k);
        let total_bucket_n: usize = report.calibration.iter().map(|(_, _, n)| n).sum();
        assert!(total_bucket_n >= report.scored);
    }
}
