//! Dependency-graph predictor (Padmanabhan & Mogul, 1996).
//!
//! The server-side scheme the paper cites: maintain a graph with an arc
//! `a → b` weighted by how often `b` is requested within a lookahead window
//! of `w` requests after `a`. The predicted probability of `b` following
//! the current item `a` is `count(a→b)/occurrences(a)`.
//!
//! Unlike the Markov predictor, the window captures "b follows a soon, but
//! not necessarily immediately" — the structure of page-with-embedded-
//! resources traffic.

use crate::{sort_candidates, Predictor};
use std::collections::HashMap;
use workload::ItemId;

/// Dependency graph with a fixed lookahead window.
pub struct DependencyGraph {
    window: usize,
    /// Recent requests, oldest first, at most `window` entries.
    recent: Vec<ItemId>,
    /// a → (b → count of b within w after a).
    arcs: HashMap<ItemId, HashMap<ItemId, u64>>,
    /// a → number of occurrences of a.
    occurrences: HashMap<ItemId, u64>,
    current: Option<ItemId>,
}

impl DependencyGraph {
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        DependencyGraph {
            window,
            recent: Vec::new(),
            arcs: HashMap::new(),
            occurrences: HashMap::new(),
            current: None,
        }
    }

    pub fn window(&self) -> usize {
        self.window
    }

    /// Predicted `P(next-window contains b | current = a)`.
    pub fn prob(&self, a: ItemId, b: ItemId) -> f64 {
        let occ = self.occurrences.get(&a).copied().unwrap_or(0);
        if occ == 0 {
            return 0.0;
        }
        let c = self.arcs.get(&a).and_then(|m| m.get(&b)).copied().unwrap_or(0);
        (c as f64 / occ as f64).min(1.0)
    }

    /// Number of nodes with outgoing arcs.
    pub fn nodes(&self) -> usize {
        self.arcs.len()
    }
}

impl Predictor for DependencyGraph {
    fn observe(&mut self, item: ItemId) {
        // The new item is a successor (within window) of each recent item.
        for &a in &self.recent {
            if a != item {
                *self.arcs.entry(a).or_default().entry(item).or_insert(0) += 1;
            }
        }
        *self.occurrences.entry(item).or_insert(0) += 1;
        self.recent.push(item);
        if self.recent.len() > self.window {
            self.recent.remove(0);
        }
        self.current = Some(item);
    }

    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)> {
        let Some(a) = self.current else {
            return Vec::new();
        };
        let occ = self.occurrences.get(&a).copied().unwrap_or(0);
        if occ == 0 {
            return Vec::new();
        }
        let Some(succ) = self.arcs.get(&a) else {
            return Vec::new();
        };
        let mut v: Vec<(ItemId, f64)> =
            succ.iter().map(|(&b, &c)| (b, (c as f64 / occ as f64).min(1.0))).collect();
        sort_candidates(&mut v, max);
        v
    }

    fn name(&self) -> &'static str {
        "depgraph"
    }

    fn reset(&mut self) {
        self.recent.clear();
        self.arcs.clear();
        self.occurrences.clear();
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_within_window_dependencies() {
        let mut g = DependencyGraph::new(2);
        // Pattern: page 1, then resources 2 and 3 (3 is 2 steps later).
        for _ in 0..50 {
            g.observe(ItemId(1));
            g.observe(ItemId(2));
            g.observe(ItemId(3));
        }
        // 2 follows 1 within the window every time.
        assert!((g.prob(ItemId(1), ItemId(2)) - 1.0).abs() < 1e-9);
        // 3 follows 1 within window 2 as well.
        assert!((g.prob(ItemId(1), ItemId(3)) - 1.0).abs() < 0.05);
    }

    #[test]
    fn window_one_reduces_to_immediate_successor() {
        let mut g = DependencyGraph::new(1);
        for _ in 0..50 {
            g.observe(ItemId(1));
            g.observe(ItemId(2));
            g.observe(ItemId(3));
        }
        assert!(g.prob(ItemId(1), ItemId(2)) > 0.95);
        // With window 1, 3 never directly follows 1.
        assert_eq!(g.prob(ItemId(1), ItemId(3)), 0.0);
    }

    #[test]
    fn candidates_from_current_item() {
        let mut g = DependencyGraph::new(1);
        // 0→1 twice, 0→2 once.
        for next in [1u64, 2, 1] {
            g.observe(ItemId(0));
            g.observe(ItemId(next));
        }
        g.observe(ItemId(0));
        let c = g.candidates(5);
        assert_eq!(c[0].0, ItemId(1));
        assert!(c[0].1 > c[1].1);
        assert_eq!(c[1].0, ItemId(2));
    }

    #[test]
    fn self_loops_excluded() {
        let mut g = DependencyGraph::new(3);
        for _ in 0..20 {
            g.observe(ItemId(5));
        }
        assert_eq!(g.prob(ItemId(5), ItemId(5)), 0.0);
        assert!(g.candidates(5).is_empty());
    }

    #[test]
    fn no_prediction_before_observation() {
        let g = DependencyGraph::new(2);
        assert!(g.candidates(5).is_empty());
    }

    #[test]
    fn probabilities_capped_at_one() {
        // An item can appear multiple times within one window; the ratio
        // must still be ≤ 1.
        let mut g = DependencyGraph::new(4);
        for _ in 0..10 {
            g.observe(ItemId(1));
            g.observe(ItemId(2));
            g.observe(ItemId(2));
            g.observe(ItemId(2));
        }
        assert!(g.prob(ItemId(1), ItemId(2)) <= 1.0);
    }
}
