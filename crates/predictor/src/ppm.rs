//! Prediction by partial matching (PPM).
//!
//! Blends Markov orders `k, k−1, …, 1, 0` with PPM-C escape probabilities:
//! the predictor starts at the longest matched context and "escapes" to
//! shorter ones with probability `d/(n+d)` (d = distinct successors, n =
//! total observations in the context). The order-0 model is the global item
//! frequency. This is the data-compression lineage the paper cites through
//! Vitter & Krishnan.

use crate::{sort_candidates, Predictor};
use std::collections::HashMap;
use workload::ItemId;

struct ContextStats {
    counts: HashMap<ItemId, u64>,
    total: u64,
}

impl ContextStats {
    fn new() -> Self {
        ContextStats { counts: HashMap::new(), total: 0 }
    }
    fn add(&mut self, item: ItemId) {
        *self.counts.entry(item).or_insert(0) += 1;
        self.total += 1;
    }
    /// PPM-C escape probability.
    fn escape(&self) -> f64 {
        let d = self.counts.len() as f64;
        let n = self.total as f64;
        if n + d == 0.0 {
            1.0
        } else {
            d / (n + d)
        }
    }
}

/// PPM predictor of maximum order `k`.
pub struct PpmPredictor {
    max_order: usize,
    history: Vec<ItemId>,
    /// Per order (1..=k): context → stats. Order 0 lives in `order0`.
    tables: Vec<HashMap<Vec<ItemId>, ContextStats>>,
    order0: ContextStats,
}

impl PpmPredictor {
    pub fn new(max_order: usize) -> Self {
        assert!(max_order >= 1);
        PpmPredictor {
            max_order,
            history: Vec::new(),
            tables: (0..max_order).map(|_| HashMap::new()).collect(),
            order0: ContextStats::new(),
        }
    }

    /// Blended probability distribution over next items.
    fn blended(&self) -> HashMap<ItemId, f64> {
        let mut out: HashMap<ItemId, f64> = HashMap::new();
        let mut carry = 1.0; // probability mass not yet assigned

        // From longest matched context down to order 1.
        for order in (1..=self.max_order.min(self.history.len())).rev() {
            let ctx = &self.history[self.history.len() - order..];
            if let Some(stats) = self.tables[order - 1].get(ctx) {
                if stats.total > 0 {
                    let esc = stats.escape();
                    for (&id, &c) in &stats.counts {
                        *out.entry(id).or_insert(0.0) +=
                            carry * (1.0 - esc) * c as f64 / stats.total as f64;
                    }
                    carry *= esc;
                }
            }
        }
        // Order 0: global frequencies absorb the remaining mass.
        if self.order0.total > 0 {
            for (&id, &c) in &self.order0.counts {
                *out.entry(id).or_insert(0.0) += carry * c as f64 / self.order0.total as f64;
            }
        }
        out
    }
}

impl Predictor for PpmPredictor {
    fn observe(&mut self, item: ItemId) {
        // Update every order's table with the current context suffix.
        for order in 1..=self.max_order.min(self.history.len()) {
            let ctx = self.history[self.history.len() - order..].to_vec();
            self.tables[order - 1].entry(ctx).or_insert_with(ContextStats::new).add(item);
        }
        self.order0.add(item);
        self.history.push(item);
        if self.history.len() > self.max_order {
            self.history.remove(0);
        }
    }

    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)> {
        let mut v: Vec<(ItemId, f64)> = self.blended().into_iter().collect();
        sort_candidates(&mut v, max);
        v
    }

    fn name(&self) -> &'static str {
        "ppm"
    }

    fn reset(&mut self) {
        self.history.clear();
        for t in &mut self.tables {
            t.clear();
        }
        self.order0 = ContextStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blended_probabilities_sum_to_at_most_one() {
        let mut p = PpmPredictor::new(2);
        for i in 0..200u64 {
            p.observe(ItemId(i % 7));
        }
        let total: f64 = p.blended().values().sum();
        assert!(total <= 1.0 + 1e-9, "total {total}");
        assert!(total > 0.9, "total {total}");
    }

    #[test]
    fn deterministic_pattern_yields_confident_prediction() {
        let mut p = PpmPredictor::new(2);
        for _ in 0..200 {
            for x in [1u64, 2, 3] {
                p.observe(ItemId(x));
            }
        }
        // History ends …2,3 → next is 1 with high blended probability.
        let c = p.candidates(3);
        assert_eq!(c[0].0, ItemId(1));
        assert!(c[0].1 > 0.9, "p = {}", c[0].1);
    }

    #[test]
    fn falls_back_to_frequency_for_unseen_context() {
        let mut p = PpmPredictor::new(2);
        // Learn frequencies: item 5 dominates.
        for _ in 0..50 {
            p.observe(ItemId(5));
        }
        p.observe(ItemId(9)); // rare
        p.observe(ItemId(10)); // unseen context (9,10)
        let c = p.candidates(3);
        assert!(!c.is_empty());
        assert_eq!(c[0].0, ItemId(5), "order-0 fallback should dominate: {c:?}");
    }

    #[test]
    fn escape_probability_sane() {
        let mut s = ContextStats::new();
        assert_eq!(s.escape(), 1.0);
        s.add(ItemId(1));
        // 1 distinct, 1 total → escape 1/2.
        assert!((s.escape() - 0.5).abs() < 1e-12);
        for _ in 0..98 {
            s.add(ItemId(1));
        }
        // 1 distinct, 99 total → escape 0.01.
        assert!((s.escape() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn higher_order_context_dominates_when_confident() {
        let mut p = PpmPredictor::new(2);
        // Global: 7 appears a lot. But after (1,2) the next is always 3.
        for _ in 0..100 {
            p.observe(ItemId(7));
        }
        for _ in 0..50 {
            for x in [1u64, 2, 3] {
                p.observe(ItemId(x));
            }
        }
        // Put history at (1,2).
        p.observe(ItemId(1));
        p.observe(ItemId(2));
        let c = p.candidates(2);
        assert_eq!(c[0].0, ItemId(3), "context should beat frequency: {c:?}");
    }

    #[test]
    fn reset_clears_all_orders() {
        let mut p = PpmPredictor::new(3);
        for i in 0..50u64 {
            p.observe(ItemId(i % 5));
        }
        p.reset();
        assert!(p.candidates(5).is_empty());
    }
}
