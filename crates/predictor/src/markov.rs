//! Order-k Markov predictor with transition counts.
//!
//! Maintains counts of `context → next` where the context is the last `k`
//! items; predicted probability is the empirical conditional frequency.
//! Order 1 is the textbook case the paper's related work builds on.

use crate::{sort_candidates, Predictor};
use std::collections::HashMap;
use workload::ItemId;

/// Order-k Markov predictor.
///
/// ```
/// use predictor::{MarkovPredictor, Predictor};
/// use workload::ItemId;
///
/// let mut p = MarkovPredictor::new(1);
/// for _ in 0..10 {
///     p.observe(ItemId(1));
///     p.observe(ItemId(2));
/// }
/// // After a 1, the next item has always been 2.
/// p.observe(ItemId(1));
/// let c = p.candidates(3);
/// assert_eq!(c[0].0, ItemId(2));
/// assert!(c[0].1 > 0.9);
/// ```
pub struct MarkovPredictor {
    order: usize,
    /// Rolling context of the last `order` items.
    context: Vec<ItemId>,
    /// context-key → (next → count, total).
    table: HashMap<Vec<ItemId>, (HashMap<ItemId, u64>, u64)>,
}

impl MarkovPredictor {
    pub fn new(order: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        MarkovPredictor { order, context: Vec::new(), table: HashMap::new() }
    }

    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of distinct contexts learned.
    pub fn contexts(&self) -> usize {
        self.table.len()
    }

    /// Estimated `P(next | current context)` for one item.
    pub fn prob(&self, next: ItemId) -> f64 {
        if self.context.len() < self.order {
            return 0.0;
        }
        match self.table.get(&self.context) {
            Some((counts, total)) if *total > 0 => {
                counts.get(&next).copied().unwrap_or(0) as f64 / *total as f64
            }
            _ => 0.0,
        }
    }
}

impl Predictor for MarkovPredictor {
    fn observe(&mut self, item: ItemId) {
        if self.context.len() == self.order {
            let entry =
                self.table.entry(self.context.clone()).or_insert_with(|| (HashMap::new(), 0));
            *entry.0.entry(item).or_insert(0) += 1;
            entry.1 += 1;
        }
        self.context.push(item);
        if self.context.len() > self.order {
            self.context.remove(0);
        }
    }

    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)> {
        if self.context.len() < self.order {
            return Vec::new();
        }
        let Some((counts, total)) = self.table.get(&self.context) else {
            return Vec::new();
        };
        if *total == 0 {
            return Vec::new();
        }
        let mut v: Vec<(ItemId, f64)> =
            counts.iter().map(|(&id, &c)| (id, c as f64 / *total as f64)).collect();
        sort_candidates(&mut v, max);
        v
    }

    fn name(&self) -> &'static str {
        "markov"
    }

    fn reset(&mut self) {
        self.context.clear();
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Rng;
    use workload::{MarkovChain, RequestStream};

    #[test]
    fn learns_deterministic_sequence() {
        let mut p = MarkovPredictor::new(1);
        // a b a b a b …
        for i in 0..20 {
            p.observe(ItemId(i % 2));
        }
        // Context is now [1] (last item); next must be 0.
        let c = p.candidates(5);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0, ItemId(0));
        assert!((c[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_before_context_fills() {
        let p = MarkovPredictor::new(2);
        assert!(p.candidates(5).is_empty());
        let mut p = MarkovPredictor::new(2);
        p.observe(ItemId(1));
        assert!(p.candidates(5).is_empty(), "context shorter than order");
    }

    #[test]
    fn probabilities_converge_to_chain() {
        let mut rng = Rng::new(1);
        let mut chain = MarkovChain::random(20, 3, 0.5, &mut rng);
        let mut pred = MarkovPredictor::new(1);
        pred.observe(chain.state());
        for _ in 0..200_000 {
            let item = chain.next_item(&mut rng);
            pred.observe(item);
        }
        // Compare learned vs true successor probabilities for the current
        // state.
        let state = chain.state();
        for (succ, truth) in chain.successors(state) {
            let learned = pred.prob(succ);
            assert!(
                (learned - truth).abs() < 0.02,
                "P({succ:?} | {state:?}): learned {learned} vs true {truth}"
            );
        }
    }

    #[test]
    fn order2_beats_order1_on_order2_structure() {
        // Sequence where pairs disambiguate: (0,1)→2, (3,1)→4.
        let mut p1 = MarkovPredictor::new(1);
        let mut p2 = MarkovPredictor::new(2);
        let pattern = [0u64, 1, 2, 3, 1, 4];
        for _ in 0..100 {
            for &x in &pattern {
                p1.observe(ItemId(x));
                p2.observe(ItemId(x));
            }
        }
        // After …3,1 the next is always 4.
        // p2's context is [1,4]? — drive both to a known context:
        p1.observe(ItemId(3));
        p2.observe(ItemId(3));
        p1.observe(ItemId(1));
        p2.observe(ItemId(1));
        let c2 = p2.candidates(1);
        assert_eq!(c2[0].0, ItemId(4));
        assert!(c2[0].1 > 0.99, "order-2 certain: {}", c2[0].1);
        // Order-1 sees context [1] which is ambiguous (→2 or →4 equally).
        let c1 = p1.candidates(2);
        assert!(c1[0].1 < 0.7, "order-1 must be uncertain: {:?}", c1);
    }

    #[test]
    fn candidates_sorted_and_truncated() {
        let mut p = MarkovPredictor::new(1);
        // From 0: go to 1 (x3), 2 (x2), 3 (x1).
        for &n in &[1u64, 2, 1, 3, 1, 2] {
            p.observe(ItemId(0));
            p.observe(ItemId(n));
        }
        p.observe(ItemId(0));
        let c = p.candidates(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].0, ItemId(1));
        assert!((c[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(c[1].0, ItemId(2));
    }

    #[test]
    fn reset_forgets() {
        let mut p = MarkovPredictor::new(1);
        p.observe(ItemId(1));
        p.observe(ItemId(2));
        p.reset();
        assert_eq!(p.contexts(), 0);
        assert!(p.candidates(5).is_empty());
    }
}
