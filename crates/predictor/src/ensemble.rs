//! Ensemble predictor: accuracy-weighted blending of base predictors.
//!
//! Different access models shine on different structure (Markov on tight
//! navigation, dependency graphs on within-window co-access, LZ78 on long
//! repeated phrases). The ensemble runs them side by side, scores each
//! one's top-1 accuracy online (EWMA), and blends candidate probabilities
//! with those weights. Because the paper's policy consumes probabilities,
//! a *calibrated* blend plugs straight into the threshold rule.

use crate::{sort_candidates, Predictor};
use std::collections::HashMap;
use workload::ItemId;

struct Member {
    predictor: Box<dyn Predictor>,
    /// EWMA of top-1 correctness.
    score: f64,
    /// Pending top-1 prediction to score against the next observation.
    pending_top: Option<ItemId>,
}

/// Accuracy-weighted predictor ensemble.
pub struct Ensemble {
    members: Vec<Member>,
    alpha: f64,
}

impl Ensemble {
    /// `alpha` is the EWMA weight for online accuracy scoring.
    pub fn new(members: Vec<Box<dyn Predictor>>, alpha: f64) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ensemble {
            members: members
                .into_iter()
                .map(|predictor| Member { predictor, score: 0.5, pending_top: None })
                .collect(),
            alpha,
        }
    }

    /// Current accuracy score of each member, in construction order.
    pub fn scores(&self) -> Vec<f64> {
        self.members.iter().map(|m| m.score).collect()
    }

    fn weights(&self) -> Vec<f64> {
        let total: f64 = self.members.iter().map(|m| m.score).sum();
        if total <= 0.0 {
            let n = self.members.len() as f64;
            return vec![1.0 / n; self.members.len()];
        }
        self.members.iter().map(|m| m.score / total).collect()
    }
}

impl Predictor for Ensemble {
    fn observe(&mut self, item: ItemId) {
        for m in &mut self.members {
            // Score the prediction made before this observation.
            if let Some(top) = m.pending_top.take() {
                let correct = if top == item { 1.0 } else { 0.0 };
                m.score = (1.0 - self.alpha) * m.score + self.alpha * correct;
            }
            m.predictor.observe(item);
            m.pending_top = m.predictor.candidates(1).first().map(|&(id, _)| id);
        }
    }

    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)> {
        let weights = self.weights();
        let mut blended: HashMap<ItemId, f64> = HashMap::new();
        for (m, w) in self.members.iter().zip(weights) {
            for (id, p) in m.predictor.candidates(max * 2) {
                *blended.entry(id).or_insert(0.0) += w * p;
            }
        }
        let mut v: Vec<(ItemId, f64)> = blended.into_iter().collect();
        sort_candidates(&mut v, max);
        v
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.predictor.reset();
            m.score = 0.5;
            m.pending_top = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::MarkovPredictor;
    use crate::Lz78Predictor;
    use simcore::rng::Rng;
    use workload::{MarkovChain, RequestStream};

    fn make() -> Ensemble {
        Ensemble::new(vec![Box::new(MarkovPredictor::new(1)), Box::new(Lz78Predictor::new())], 0.02)
    }

    #[test]
    fn blended_probabilities_bounded() {
        let mut e = make();
        let mut rng = Rng::new(1);
        let mut chain = MarkovChain::random(30, 3, 0.5, &mut rng);
        for _ in 0..20_000 {
            e.observe(chain.next_item(&mut rng));
        }
        let c = e.candidates(5);
        assert!(!c.is_empty());
        let total: f64 = c.iter().map(|(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9, "blend mass {total}");
        for w in c.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn scores_converge_to_member_accuracy() {
        // On a first-order Markov source the order-1 Markov member should
        // score at least as well as LZ78.
        let mut e = make();
        let mut rng = Rng::new(2);
        let mut chain = MarkovChain::random(30, 2, 0.2, &mut rng); // highly skewed
        for _ in 0..60_000 {
            e.observe(chain.next_item(&mut rng));
        }
        let scores = e.scores();
        assert!(scores[0] > 0.6, "markov score {scores:?}");
        assert!(scores[0] >= scores[1] - 0.05, "scores {scores:?}");
    }

    #[test]
    fn ensemble_tracks_best_member_accuracy() {
        // Top-1 accuracy of the ensemble should be close to the better
        // member's.
        let mut rng = Rng::new(3);
        let mut chain = MarkovChain::random(40, 3, 0.3, &mut rng);
        let mut ensemble = make();
        let mut solo = MarkovPredictor::new(1);
        let (mut hits_e, mut hits_s, mut total) = (0, 0, 0);
        let n = 60_000;
        for i in 0..n {
            let next = chain.next_item(&mut rng);
            if i > n / 2 {
                if let Some(&(top, _)) = ensemble.candidates(1).first() {
                    total += 1;
                    if top == next {
                        hits_e += 1;
                    }
                }
                if let Some(&(top, _)) = solo.candidates(1).first() {
                    if top == next {
                        hits_s += 1;
                    }
                }
            }
            ensemble.observe(next);
            solo.observe(next);
        }
        let acc_e = hits_e as f64 / total as f64;
        let acc_s = hits_s as f64 / total as f64;
        assert!(acc_e > acc_s - 0.05, "ensemble {acc_e} vs solo {acc_s}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut e = make();
        for i in 0..100u64 {
            e.observe(ItemId(i % 7));
        }
        e.reset();
        assert!(e.candidates(3).is_empty());
        assert_eq!(e.scores(), vec![0.5, 0.5]);
    }
}
