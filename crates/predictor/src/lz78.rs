//! LZ78 parse-tree predictor (Vitter & Krishnan, FOCS 1991).
//!
//! The stream is parsed into LZ78 phrases; each phrase extends a parse-tree
//! path by one symbol. Prediction walks the tree alongside the stream: at
//! the current node, the children's visit counts give the conditional
//! distribution of the next symbol. Vitter & Krishnan showed this predictor
//! is asymptotically optimal when the source is a finite-state Markov
//! process — the theoretical anchor of the paper's "access models" lineage.

use crate::{sort_candidates, Predictor};
use std::collections::HashMap;
use workload::ItemId;

/// Node index in the parse tree.
type NodeId = usize;

/// LZ78 incremental parse-tree predictor.
pub struct Lz78Predictor {
    /// Edges: (node, symbol) → child node.
    edges: HashMap<(NodeId, ItemId), NodeId>,
    /// children[node] = (symbol → visit count of that edge).
    children: Vec<HashMap<ItemId, u64>>,
    /// Total edge traversals out of each node.
    totals: Vec<u64>,
    /// Current position in the tree (prediction context).
    cursor: NodeId,
}

impl Default for Lz78Predictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Lz78Predictor {
    pub fn new() -> Self {
        Lz78Predictor {
            edges: HashMap::new(),
            children: vec![HashMap::new()],
            totals: vec![0],
            cursor: 0,
        }
    }

    /// Number of nodes in the parse tree.
    pub fn nodes(&self) -> usize {
        self.children.len()
    }
}

impl Predictor for Lz78Predictor {
    fn observe(&mut self, item: ItemId) {
        // Count the traversal at the current node.
        *self.children[self.cursor].entry(item).or_insert(0) += 1;
        self.totals[self.cursor] += 1;
        match self.edges.get(&(self.cursor, item)) {
            Some(&child) => {
                // Known phrase extension: walk down.
                self.cursor = child;
            }
            None => {
                // New phrase: grow the tree, restart at the root (classic
                // LZ78 parse boundary).
                let node = self.children.len();
                self.children.push(HashMap::new());
                self.totals.push(0);
                self.edges.insert((self.cursor, item), node);
                self.cursor = 0;
            }
        }
    }

    fn candidates(&self, max: usize) -> Vec<(ItemId, f64)> {
        let total = self.totals[self.cursor];
        if total == 0 {
            return Vec::new();
        }
        let mut v: Vec<(ItemId, f64)> = self.children[self.cursor]
            .iter()
            .map(|(&id, &c)| (id, c as f64 / total as f64))
            .collect();
        sort_candidates(&mut v, max);
        v
    }

    fn name(&self) -> &'static str {
        "lz78"
    }

    fn reset(&mut self) {
        self.edges.clear();
        self.children = vec![HashMap::new()];
        self.totals = vec![0];
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Rng;
    use workload::{MarkovChain, RequestStream};

    #[test]
    fn tree_grows_with_new_phrases() {
        let mut p = Lz78Predictor::new();
        assert_eq!(p.nodes(), 1);
        p.observe(ItemId(1)); // new phrase "1"
        assert_eq!(p.nodes(), 2);
        p.observe(ItemId(1)); // known "1" → walk down
        p.observe(ItemId(2)); // new phrase "1 2"
        assert_eq!(p.nodes(), 3);
    }

    #[test]
    fn periodic_sequence_becomes_predictable() {
        let mut p = Lz78Predictor::new();
        let period = [1u64, 2, 3, 4];
        let mut correct = 0;
        let mut total = 0;
        for rep in 0..500 {
            for &x in &period {
                if rep > 100 {
                    if let Some(&(top, _)) = p.candidates(1).first() {
                        total += 1;
                        if top == ItemId(x) {
                            correct += 1;
                        }
                    }
                }
                p.observe(ItemId(x));
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "accuracy {acc} on a deterministic cycle");
    }

    #[test]
    fn approaches_markov_source_accuracy() {
        // On a skewed Markov source, LZ78 top-1 accuracy should approach the
        // accuracy of always guessing the most likely successor (which is
        // what an oracle achieves on top-1).
        let mut rng = Rng::new(3);
        let mut chain = MarkovChain::random(10, 2, 0.25, &mut rng); // top succ p = 0.8
        let mut p = Lz78Predictor::new();
        let mut correct = 0;
        let mut total = 0;
        let n = 120_000;
        p.observe(chain.state());
        for step in 0..n {
            let next = chain.next_item(&mut rng);
            if step > n / 2 {
                if let Some(&(top, _)) = p.candidates(1).first() {
                    total += 1;
                    if top == next {
                        correct += 1;
                    }
                }
            }
            p.observe(next);
        }
        let acc = correct as f64 / total.max(1) as f64;
        // Oracle top-1 accuracy is 0.8; LZ78 should get most of the way.
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn no_prediction_from_cold_root() {
        let p = Lz78Predictor::new();
        assert!(p.candidates(3).is_empty());
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut p = Lz78Predictor::new();
        for i in 0..100u64 {
            p.observe(ItemId(i % 3));
        }
        p.reset();
        assert_eq!(p.nodes(), 1);
        assert!(p.candidates(3).is_empty());
    }

    #[test]
    fn probabilities_normalised_per_node() {
        let mut p = Lz78Predictor::new();
        for i in 0..1000u64 {
            p.observe(ItemId(i % 5));
        }
        let c = p.candidates(10);
        let total: f64 = c.iter().map(|(_, pr)| pr).sum();
        assert!(total <= 1.0 + 1e-9);
    }
}
