//! Closed-form queueing results.
//!
//! All formulas assume Poisson arrivals at rate `lambda` and a single server
//! of capacity `capacity` work-units per second, so a job of `work` units has
//! service time `x = work / capacity`. Utilisation is
//! `ρ = lambda · E[work] / capacity`; results are `None` when `ρ ≥ 1`
//! (unstable system — no steady state exists).

/// Server utilisation `ρ = λ·E[work]/capacity`.
#[inline]
pub fn utilisation(lambda: f64, mean_work: f64, capacity: f64) -> f64 {
    lambda * mean_work / capacity
}

/// Whether a utilisation value admits a steady state.
#[inline]
pub fn is_stable(rho: f64) -> bool {
    (0.0..1.0).contains(&rho)
}

/// M/G/1 **processor sharing**.
///
/// PS is insensitive to the service-time distribution beyond its mean: the
/// conditional mean response time of a job with service requirement `x` is
/// exactly `x/(1−ρ)` (Kleinrock Vol. 2) — the paper's equation (2).
#[derive(Clone, Copy, Debug)]
pub struct MG1Ps {
    pub lambda: f64,
    pub mean_work: f64,
    pub capacity: f64,
}

impl MG1Ps {
    pub fn new(lambda: f64, mean_work: f64, capacity: f64) -> Self {
        assert!(lambda >= 0.0 && mean_work > 0.0 && capacity > 0.0);
        MG1Ps { lambda, mean_work, capacity }
    }

    pub fn rho(&self) -> f64 {
        utilisation(self.lambda, self.mean_work, self.capacity)
    }

    pub fn is_stable(&self) -> bool {
        is_stable(self.rho())
    }

    /// Mean service time `x̄ = E[work]/capacity`.
    pub fn mean_service(&self) -> f64 {
        self.mean_work / self.capacity
    }

    /// Mean response time of a job with service requirement `x` seconds:
    /// `x/(1−ρ)`.
    pub fn response_for_service(&self, x: f64) -> Option<f64> {
        self.is_stable().then(|| x / (1.0 - self.rho()))
    }

    /// Overall mean response time `x̄/(1−ρ)` — the paper's `r̄`.
    pub fn mean_response(&self) -> Option<f64> {
        self.response_for_service(self.mean_service())
    }

    /// Mean number in system, by Little's law: `λ·E[T] = ρ/(1−ρ)`.
    pub fn mean_in_system(&self) -> Option<f64> {
        self.is_stable().then(|| {
            let rho = self.rho();
            rho / (1.0 - rho)
        })
    }

    /// The *slowdown* factor `1/(1−ρ)` every job experiences.
    pub fn stretch(&self) -> Option<f64> {
        self.is_stable().then(|| 1.0 / (1.0 - self.rho()))
    }
}

/// M/M/1 (FIFO or PS — identical means for exponential service).
#[derive(Clone, Copy, Debug)]
pub struct MM1 {
    pub lambda: f64,
    pub mu: f64,
}

impl MM1 {
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda >= 0.0 && mu > 0.0);
        MM1 { lambda, mu }
    }

    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    pub fn is_stable(&self) -> bool {
        is_stable(self.rho())
    }

    /// Mean response time `1/(μ−λ)`.
    pub fn mean_response(&self) -> Option<f64> {
        self.is_stable().then(|| 1.0 / (self.mu - self.lambda))
    }

    /// Mean number in system `ρ/(1−ρ)`.
    pub fn mean_in_system(&self) -> Option<f64> {
        self.is_stable().then(|| {
            let rho = self.rho();
            rho / (1.0 - rho)
        })
    }

    /// Steady-state probability of `n` jobs in the system.
    pub fn prob_n(&self, n: u32) -> Option<f64> {
        self.is_stable().then(|| {
            let rho = self.rho();
            (1.0 - rho) * rho.powi(n as i32)
        })
    }
}

/// M/G/1 **FIFO** via the Pollaczek–Khinchine formula.
///
/// Unlike PS, the mean *waiting* time depends on the second moment of
/// service: `E[W] = λ·E[S²] / (2(1−ρ))`.
#[derive(Clone, Copy, Debug)]
pub struct MG1Fifo {
    pub lambda: f64,
    /// Mean service time E[S] (seconds).
    pub es: f64,
    /// Second moment of service time E[S²] (seconds²).
    pub es2: f64,
}

impl MG1Fifo {
    pub fn new(lambda: f64, es: f64, es2: f64) -> Self {
        // The eps absorbs floating-point noise when es2 is computed as
        // (var + mean²)/cap² with var = 0 (deterministic service).
        assert!(lambda >= 0.0 && es > 0.0 && es2 >= es * es * (1.0 - 1e-12));
        MG1Fifo { lambda, es, es2 }
    }

    /// From a work distribution's mean/variance and a server capacity.
    pub fn from_work(lambda: f64, mean_work: f64, var_work: f64, capacity: f64) -> Self {
        let es = mean_work / capacity;
        let es2 = (var_work + mean_work * mean_work) / (capacity * capacity);
        MG1Fifo::new(lambda, es, es2)
    }

    pub fn rho(&self) -> f64 {
        self.lambda * self.es
    }

    pub fn is_stable(&self) -> bool {
        is_stable(self.rho())
    }

    /// Mean waiting time in queue (excluding service).
    pub fn mean_wait(&self) -> Option<f64> {
        self.is_stable().then(|| self.lambda * self.es2 / (2.0 * (1.0 - self.rho())))
    }

    /// Mean response time (waiting + service).
    pub fn mean_response(&self) -> Option<f64> {
        self.mean_wait().map(|w| w + self.es)
    }

    /// Squared coefficient of variation of service time.
    pub fn cv2(&self) -> f64 {
        (self.es2 - self.es * self.es) / (self.es * self.es)
    }
}

/// M/M/c: `c` parallel exponential servers, shared FIFO queue.
#[derive(Clone, Copy, Debug)]
pub struct MMc {
    pub lambda: f64,
    pub mu: f64,
    pub c: u32,
}

impl MMc {
    pub fn new(lambda: f64, mu: f64, c: u32) -> Self {
        assert!(lambda >= 0.0 && mu > 0.0 && c >= 1);
        MMc { lambda, mu, c }
    }

    /// Offered load in Erlangs `a = λ/μ`.
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilisation `a/c`.
    pub fn rho(&self) -> f64 {
        self.offered_load() / self.c as f64
    }

    pub fn is_stable(&self) -> bool {
        is_stable(self.rho())
    }

    /// Erlang-C probability that an arriving job must wait.
    pub fn erlang_c(&self) -> Option<f64> {
        if !self.is_stable() {
            return None;
        }
        let a = self.offered_load();
        let c = self.c as f64;
        // Sum a^k/k! computed iteratively to avoid overflow.
        let mut term = 1.0; // a^0/0!
        let mut sum = 1.0;
        for k in 1..self.c {
            term *= a / k as f64;
            sum += term;
        }
        let term_c = term * a / c; // a^c/c!
        let pc = term_c / (1.0 - self.rho());
        Some(pc / (sum + pc))
    }

    /// Mean waiting time in queue.
    pub fn mean_wait(&self) -> Option<f64> {
        let pw = self.erlang_c()?;
        Some(pw / (self.c as f64 * self.mu - self.lambda))
    }

    /// Mean response time.
    pub fn mean_response(&self) -> Option<f64> {
        Some(self.mean_wait()? + 1.0 / self.mu)
    }
}

/// Little's law: `N = λ·T`.
#[inline]
pub fn littles_law_n(lambda: f64, mean_response: f64) -> f64 {
    lambda * mean_response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_basic() {
        assert!((utilisation(30.0, 1.0, 50.0) - 0.6).abs() < 1e-12);
        assert!(is_stable(0.6));
        assert!(!is_stable(1.0));
        assert!(!is_stable(1.5));
        assert!(!is_stable(-0.1));
    }

    #[test]
    fn ps_mean_response_paper_eq2() {
        // Paper Figure 2 parameters without prefetch: s̄=1, λ=30, b=50, h′=0.
        let q = MG1Ps::new(30.0, 1.0, 50.0);
        assert!((q.rho() - 0.6).abs() < 1e-12);
        // x = 1/50 = 0.02; r̄ = 0.02/0.4 = 0.05.
        assert!((q.mean_response().unwrap() - 0.05).abs() < 1e-12);
        assert!((q.stretch().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ps_unstable_is_none() {
        let q = MG1Ps::new(60.0, 1.0, 50.0);
        assert!(!q.is_stable());
        assert!(q.mean_response().is_none());
        assert!(q.mean_in_system().is_none());
    }

    #[test]
    fn ps_conditional_response_linear_in_x() {
        let q = MG1Ps::new(5.0, 1.0, 10.0); // rho = 0.5
        let t1 = q.response_for_service(1.0).unwrap();
        let t2 = q.response_for_service(2.0).unwrap();
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ps_littles_law_consistency() {
        let q = MG1Ps::new(3.0, 2.0, 10.0);
        let n = q.mean_in_system().unwrap();
        let t = q.mean_response().unwrap();
        assert!((n - littles_law_n(q.lambda, t)).abs() < 1e-12);
    }

    #[test]
    fn mm1_matches_ps_for_exponential() {
        // M/M/1 FIFO and M/M/1-PS have the same mean response time.
        let mm1 = MM1::new(3.0, 5.0);
        let ps = MG1Ps::new(3.0, 1.0, 5.0); // mean work 1, capacity 5 => mu = 5
        assert!((mm1.mean_response().unwrap() - ps.mean_response().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn mm1_state_probabilities_sum() {
        let q = MM1::new(2.0, 5.0);
        let total: f64 = (0..200).map(|n| q.prob_n(n).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-10);
        // Geometric decay.
        assert!(q.prob_n(0).unwrap() > q.prob_n(1).unwrap());
    }

    #[test]
    fn pk_formula_md1_vs_mm1() {
        // M/D/1 waiting is exactly half of M/M/1 waiting at equal rho.
        let lambda = 4.0;
        let es = 0.2; // rho = 0.8
        let md1 = MG1Fifo::new(lambda, es, es * es); // deterministic: E[S²] = E[S]²
        let mm1 = MG1Fifo::new(lambda, es, 2.0 * es * es); // exponential: E[S²] = 2E[S]²
        let w_det = md1.mean_wait().unwrap();
        let w_exp = mm1.mean_wait().unwrap();
        assert!((w_det / w_exp - 0.5).abs() < 1e-12);
        assert!((md1.cv2() - 0.0).abs() < 1e-12);
        assert!((mm1.cv2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pk_from_work_roundtrip() {
        let q = MG1Fifo::from_work(2.0, 5.0, 25.0, 10.0);
        assert!((q.es - 0.5).abs() < 1e-12);
        assert!((q.es2 - 0.5).abs() < 1e-12);
        assert!((q.cv2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_mean_exceeds_ps_for_high_variance() {
        // With CV² > 1, FIFO is worse than PS; with CV² < 1, better.
        let lambda = 4.0;
        let mean_work = 1.0;
        let cap = 10.0;
        let ps = MG1Ps::new(lambda, mean_work, cap).mean_response().unwrap();
        let hi = MG1Fifo::from_work(lambda, mean_work, 9.0, cap).mean_response().unwrap();
        let lo = MG1Fifo::from_work(lambda, mean_work, 0.0, cap).mean_response().unwrap();
        assert!(hi > ps, "hi-var FIFO {hi} vs PS {ps}");
        assert!(lo < ps, "det FIFO {lo} vs PS {ps}");
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        let mmc = MMc::new(2.0, 5.0, 1);
        let mm1 = MM1::new(2.0, 5.0);
        assert!((mmc.mean_response().unwrap() - mm1.mean_response().unwrap()).abs() < 1e-10);
        // Erlang-C with one server = probability of waiting = rho.
        assert!((mmc.erlang_c().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn mmc_more_servers_less_waiting() {
        let w2 = MMc::new(8.0, 5.0, 2).mean_wait().unwrap();
        let w4 = MMc::new(8.0, 5.0, 4).mean_wait().unwrap();
        assert!(w4 < w2);
    }

    #[test]
    fn mmc_unstable() {
        assert!(MMc::new(12.0, 5.0, 2).erlang_c().is_none());
    }
}
