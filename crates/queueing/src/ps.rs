//! Event-driven processor-sharing server.
//!
//! Implements egalitarian PS with the classic **virtual-time** algorithm.
//! The virtual time `V(t)` advances at rate `capacity / k(t)` where `k(t)`
//! is the number of jobs present: it measures the cumulative work received
//! by any one job. A job arriving at real time `t` with `w` units of work
//! finishes when `V` reaches `V(t) + w`. Because all jobs drain at the same
//! rate, departure order is arrival-`V` plus work — a min-heap on the finish
//! virtual time gives O(log n) arrivals and departures, independent of how
//! many service-rate changes occur in between (a naive implementation is
//! O(n) per event).

use crate::{Completion, Server};
use simcore::stats::TimeWeighted;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct PsEntry {
    finish_v: f64,
    seq: u64,
    slot: usize,
}

impl PartialEq for PsEntry {
    fn eq(&self, other: &Self) -> bool {
        self.finish_v == other.finish_v && self.seq == other.seq
    }
}
impl Eq for PsEntry {}
impl PartialOrd for PsEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PsEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour inside BinaryHeap.
        other.finish_v.total_cmp(&self.finish_v).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An M/G/1-PS-capable server: jobs share `capacity` equally.
///
/// ```
/// use queueing::{PsServer, Server};
///
/// let mut server = PsServer::new(2.0); // 2 work-units per second
/// server.arrive(0.0, 4.0, "a");        // alone: rate 2 → would finish at t=2
/// server.arrive(1.0, 1.0, "b");        // now sharing: rate 1 each
/// // "b" needs 1 unit at rate 1 → done at t=2; "a" then finishes at t=2.5.
/// let t = server.next_event().unwrap();
/// assert!((t - 2.0).abs() < 1e-9);
/// assert_eq!(server.on_event(t)[0].tag, "b");
/// let t = server.next_event().unwrap();
/// assert!((t - 2.5).abs() < 1e-9);
/// assert_eq!(server.on_event(t)[0].tag, "a");
/// ```
pub struct PsServer<T> {
    capacity: f64,
    tnow: f64,
    vnow: f64,
    heap: BinaryHeap<PsEntry>,
    tags: Vec<Option<T>>,
    free_slots: Vec<usize>,
    next_seq: u64,
    busy: f64,
    work_done: f64,
    in_system: TimeWeighted,
    revision: u64,
}

impl<T> PsServer<T> {
    /// A PS server processing `capacity` work-units per second in total.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        PsServer {
            capacity,
            tnow: 0.0,
            vnow: 0.0,
            heap: BinaryHeap::new(),
            tags: Vec::new(),
            free_slots: Vec::new(),
            next_seq: 0,
            busy: 0.0,
            work_done: 0.0,
            in_system: TimeWeighted::new(),
            revision: 0,
        }
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Changes the service capacity at time `t` — a time-varying link
    /// (e.g. a wireless channel alternating between good and bad states).
    ///
    /// The contract extends the [`Server`] one: the owner must process any
    /// departure scheduled before `t` first (capacity changes invalidate
    /// previously computed `next_event` times, so re-query afterwards).
    pub fn set_capacity(&mut self, t: f64, capacity: f64) {
        assert!(capacity > 0.0, "capacity must stay positive");
        self.advance_clock(t);
        self.capacity = capacity;
        self.revision += 1;
    }

    /// Cumulative work completed (units).
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Time-average number of jobs in the system over `[0, t_end]`.
    pub fn mean_in_system(&self, t_end: f64) -> f64 {
        self.in_system.time_average(t_end)
    }

    /// Measured utilisation (busy fraction) over `[0, t_end]`.
    pub fn utilisation(&self, t_end: f64) -> f64 {
        if t_end <= 0.0 {
            0.0
        } else {
            // Busy time through tnow; the server state is unchanged after.
            let extra = if !self.heap.is_empty() { t_end - self.tnow } else { 0.0 };
            (self.busy + extra.max(0.0)) / t_end
        }
    }

    /// Advances the internal clock to `t`, accruing virtual time. Must not
    /// skip over a pending departure (the `Server` contract).
    fn advance_clock(&mut self, t: f64) {
        debug_assert!(t >= self.tnow - 1e-9, "time went backwards: {t} < {}", self.tnow);
        let dt = (t - self.tnow).max(0.0);
        let k = self.heap.len();
        if k > 0 && dt > 0.0 {
            let dv = self.capacity * dt / k as f64;
            debug_assert!(
                self.heap.peek().map(|e| self.vnow + dv <= e.finish_v + 1e-6).unwrap_or(true),
                "advanced past a departure"
            );
            self.vnow += dv;
            self.busy += dt;
            self.work_done += self.capacity * dt;
        }
        self.tnow = t;
    }

    fn alloc_slot(&mut self, tag: T) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            self.tags[slot] = Some(tag);
            slot
        } else {
            self.tags.push(Some(tag));
            self.tags.len() - 1
        }
    }
}

impl<T> Server<T> for PsServer<T> {
    fn arrive(&mut self, t: f64, work: f64, tag: T) {
        assert!(work > 0.0, "job work must be positive");
        self.advance_clock(t);
        let slot = self.alloc_slot(tag);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(PsEntry { finish_v: self.vnow + work, seq, slot });
        self.in_system.set(t, self.heap.len() as f64);
        // Every arrival changes the sharing rate, so every departure moves.
        self.revision += 1;
    }

    fn next_event(&self) -> Option<f64> {
        self.heap.peek().map(|e| {
            let remaining_v = (e.finish_v - self.vnow).max(0.0);
            self.tnow + remaining_v * self.heap.len() as f64 / self.capacity
        })
    }

    fn on_event(&mut self, t: f64) -> Vec<Completion<T>> {
        self.advance_clock(t);
        let mut out = Vec::new();
        // Pop every job whose finish virtual time has been reached
        // (simultaneous departures share the same finish_v up to fp noise).
        while let Some(top) = self.heap.peek() {
            if top.finish_v <= self.vnow + 1e-9 {
                let e = self.heap.pop().expect("peeked entry");
                // Snap virtual time to the departure point to stop drift.
                if e.finish_v > self.vnow {
                    self.vnow = e.finish_v;
                }
                let tag = self.tags[e.slot].take().expect("job tag present");
                self.free_slots.push(e.slot);
                out.push(Completion { time: t, tag });
            } else {
                break;
            }
        }
        self.in_system.set(t, self.heap.len() as f64);
        self.revision += 1;
        out
    }

    fn in_system(&self) -> usize {
        self.heap.len()
    }

    fn busy_time(&self) -> f64 {
        self.busy
    }

    fn revision(&self) -> u64 {
        self.revision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the server on a fixed arrival list, returning (tag, departure).
    fn run_to_completion(cap: f64, arrivals: &[(f64, f64)]) -> Vec<(usize, f64)> {
        let mut server = PsServer::new(cap);
        let mut out = Vec::new();
        let mut i = 0;
        loop {
            let next_arrival = arrivals.get(i).map(|a| a.0);
            match (server.next_event(), next_arrival) {
                (Some(te), Some(ta)) if te <= ta => {
                    for c in server.on_event(te) {
                        out.push((c.tag, c.time));
                    }
                }
                (_, Some(ta)) => {
                    server.arrive(ta, arrivals[i].1, i);
                    i += 1;
                }
                (Some(te), None) => {
                    for c in server.on_event(te) {
                        out.push((c.tag, c.time));
                    }
                }
                (None, None) => break,
            }
        }
        out
    }

    #[test]
    fn single_job_full_rate() {
        // One job of 10 units at capacity 5 → departs at t = 2.
        let out = run_to_completion(5.0, &[(0.0, 10.0)]);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_jobs_share_equally() {
        // Two jobs of 10 units arrive together at capacity 10:
        // each gets rate 5, both finish at t = 2.
        let out = run_to_completion(10.0, &[(0.0, 10.0), (0.0, 10.0)]);
        assert_eq!(out.len(), 2);
        for &(_, t) in &out {
            assert!((t - 2.0).abs() < 1e-9, "departure {t}");
        }
    }

    #[test]
    fn hand_computed_staggered_arrivals() {
        // Capacity 1. Job A (work 3) at t=0; job B (work 1) at t=1.
        // [0,1): A alone, A gets 1 unit (2 left).
        // [1,?): both share rate 1/2. B needs 1 unit → 2 seconds → B departs t=3
        //        (A also has 2 left, same finish v; both depart at t=3... check:
        //        at t=1, V=1. A finish_v = 3, B finish_v = 1+1 = 2.
        //        dV/dt = 1/2. B departs when V=2 → t=3. A remaining v=1, alone
        //        → dV/dt=1 → A departs t=4.
        let out = run_to_completion(1.0, &[(0.0, 3.0), (1.0, 1.0)]);
        let mut m = std::collections::HashMap::new();
        for (tag, t) in out {
            m.insert(tag, t);
        }
        assert!((m[&1] - 3.0).abs() < 1e-9, "B departs {}", m[&1]);
        assert!((m[&0] - 4.0).abs() < 1e-9, "A departs {}", m[&0]);
    }

    #[test]
    fn short_job_overtakes_long_job() {
        // PS lets short jobs pass long ones (no head-of-line blocking).
        let out = run_to_completion(1.0, &[(0.0, 100.0), (1.0, 1.0)]);
        let b = out.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        let a = out.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        assert!(b < a, "short {b} should beat long {a}");
        assert!((b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation() {
        let arrivals: Vec<(f64, f64)> =
            (0..50).map(|i| (i as f64 * 0.3, 1.0 + (i % 5) as f64)).collect();
        let total_work: f64 = arrivals.iter().map(|a| a.1).sum();
        let mut server = PsServer::new(2.0);
        let mut i = 0;
        let mut last_t = 0.0;
        loop {
            let next_arrival = arrivals.get(i).map(|a| a.0);
            match (server.next_event(), next_arrival) {
                (Some(te), Some(ta)) if te <= ta => {
                    last_t = te;
                    server.on_event(te);
                }
                (_, Some(ta)) => {
                    server.arrive(ta, arrivals[i].1, i);
                    i += 1;
                }
                (Some(te), None) => {
                    last_t = te;
                    server.on_event(te);
                }
                (None, None) => break,
            }
        }
        assert!((server.work_done() - total_work).abs() < 1e-6);
        assert_eq!(server.in_system(), 0);
        // Busy time = work/capacity only if never idle; here it may idle, so ≥.
        assert!(server.busy_time() * 2.0 >= total_work - 1e-6);
        assert!(last_t >= total_work / 2.0 - 1e-6);
    }

    #[test]
    fn simultaneous_departures() {
        // Three identical jobs arriving together depart together.
        let out = run_to_completion(3.0, &[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(out.len(), 3);
        for &(_, t) in &out {
            assert!((t - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn utilisation_measurement() {
        // One job of work 5 at capacity 1, observed over 10 seconds → 50% busy.
        let mut server = PsServer::new(1.0);
        server.arrive(0.0, 5.0, 0usize);
        let t = server.next_event().unwrap();
        assert!((t - 5.0).abs() < 1e-9);
        server.on_event(t);
        assert!((server.utilisation(10.0) - 0.5).abs() < 1e-9);
        assert!((server.mean_in_system(10.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_mid_job() {
        // Work 10 at capacity 10: would finish at t = 1. Halve the
        // capacity at t = 0.5 (5 units done): the remaining 5 units take
        // 1 more second → departs at 1.5.
        let mut server = PsServer::new(10.0);
        server.arrive(0.0, 10.0, 0usize);
        server.set_capacity(0.5, 5.0);
        let t = server.next_event().unwrap();
        assert!((t - 1.5).abs() < 1e-9, "departure {t}");
        let done = server.on_event(t);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn capacity_change_with_multiple_jobs() {
        // Two equal jobs of 10 units at capacity 10 (rate 5 each). At t=1
        // each has 5 left; capacity drops to 2 (rate 1 each): 5 more
        // seconds → both depart at t = 6.
        let mut server = PsServer::new(10.0);
        server.arrive(0.0, 10.0, 0usize);
        server.arrive(0.0, 10.0, 1usize);
        server.set_capacity(1.0, 2.0);
        let t = server.next_event().unwrap();
        assert!((t - 6.0).abs() < 1e-9, "departure {t}");
        let done = server.on_event(t);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn capacity_raise_speeds_completion() {
        let mut server = PsServer::new(1.0);
        server.arrive(0.0, 10.0, 0usize);
        server.set_capacity(1.0, 9.0); // 9 units left? no: 1 done, 9 left at rate 9
        let t = server.next_event().unwrap();
        assert!((t - 2.0).abs() < 1e-9, "departure {t}");
    }

    #[test]
    fn every_arrival_moves_the_revision() {
        // PS resharing shifts every departure on each arrival, so the
        // revision must move every time.
        let mut server = PsServer::new(1.0);
        let r0 = server.revision();
        server.arrive(0.0, 2.0, 0usize);
        let r1 = server.revision();
        assert!(r1 > r0);
        server.arrive(0.5, 1.0, 1usize);
        let r2 = server.revision();
        assert!(r2 > r1, "a second arrival reshuffles departures");
        let t = server.next_event().unwrap();
        server.on_event(t);
        assert!(server.revision() > r2);
    }

    #[test]
    fn slot_reuse_does_not_corrupt_tags() {
        let mut server = PsServer::new(1.0);
        server.arrive(0.0, 1.0, "a");
        let t1 = server.next_event().unwrap();
        let c = server.on_event(t1);
        assert_eq!(c[0].tag, "a");
        server.arrive(2.0, 1.0, "b");
        server.arrive(2.0, 2.0, "c");
        let t2 = server.next_event().unwrap();
        let c = server.on_event(t2);
        assert_eq!(c[0].tag, "b");
        let t3 = server.next_event().unwrap();
        let c = server.on_event(t3);
        assert_eq!(c[0].tag, "c");
    }
}
