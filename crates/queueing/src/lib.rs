//! # queueing — the paper's server-access substrate
//!
//! Tuah, Kumar & Venkatesh model "the entire network accessed through the
//! proxy as a server that provides a processor-sharing service for an M/G/1
//! round-robin queueing system" (paper §2.1). The single load-bearing fact
//! borrowed from Kleinrock is equation (2):
//!
//! ```text
//! r̄ = x / (1 − ρ)
//! ```
//!
//! the mean time to finish a job requiring service time `x` when the system
//! utilisation is `ρ`. This crate provides that substrate twice over:
//!
//! * [`theory`] — closed forms: M/G/1-PS, M/M/1, M/G/1-FIFO
//!   (Pollaczek–Khinchine), M/M/c (Erlang C), Little's-law helpers.
//! * [`ps`] — an event-driven **processor-sharing server** (virtual-time
//!   algorithm, O(log n) per event) so every formula can be checked against
//!   a running system.
//! * [`rr`] — an explicit **round-robin quantum server** (the discipline the
//!   paper names); converges to PS as the quantum shrinks.
//! * [`fifo`] — an M/G/1-FIFO server used as the ablation baseline: FIFO is
//!   *not* insensitive to the service distribution, PS is — exactly why the
//!   paper's analysis needs PS.
//! * [`driver`] — a harness that feeds an arrival trace through any
//!   [`Server`] and records per-job response times.

pub mod driver;
pub mod fifo;
pub mod ps;
pub mod rr;
pub mod theory;

pub use driver::{drive, Departure};
pub use fifo::FifoServer;
pub use ps::PsServer;
pub use rr::RrServer;

/// A completed job: when it finished and the caller's tag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion<T> {
    pub time: f64,
    pub tag: T,
}

/// A work-conserving single-server queue processing `work` units at a fixed
/// capacity, under some scheduling discipline.
///
/// The server is a *passive* state machine: the owner (a discrete-event
/// engine or the [`driver`]) tells it when jobs arrive and asks when it next
/// needs attention. The contract:
///
/// 1. `arrive` and `on_event` must be called with non-decreasing times;
/// 2. the owner must call `on_event(t)` at exactly `t = next_event()` before
///    advancing past it (arrivals in between are allowed and invalidate the
///    previous `next_event`).
pub trait Server<T> {
    /// A job of `work` units arrives at time `t`.
    fn arrive(&mut self, t: f64, work: f64, tag: T);

    /// The next time the server needs attention (a departure or an internal
    /// reschedule), or `None` when idle.
    fn next_event(&self) -> Option<f64>;

    /// Handles the event at `t` (must equal `next_event()`); returns any jobs
    /// that completed at `t`.
    fn on_event(&mut self, t: f64) -> Vec<Completion<T>>;

    /// Number of jobs currently in the system.
    fn in_system(&self) -> usize;

    /// Total busy time (at least one job present) up to the last update.
    fn busy_time(&self) -> f64;

    /// Monotone generation counter that moves every time the answer of
    /// [`Server::next_event`] may have changed (an arrival that reshuffles
    /// departure times, a processed event, a capacity change). Owners that
    /// mirror the server into an indexed scheduler (`simcore::sched`)
    /// re-arm its timer only when the revision moved, so arrivals that
    /// leave the next departure untouched (e.g. joining a busy FIFO queue)
    /// cost no heap churn.
    fn revision(&self) -> u64;
}
