//! Round-robin quantum server.
//!
//! The paper's §2.1 calls the shared network "an M/G/1 round-robin queueing
//! system" and then uses the processor-sharing limit. This module implements
//! the *actual* Kleinrock round-robin discipline: the server serves the job
//! at the head of a cyclic queue for up to one quantum `q` of service time,
//! then rotates it to the tail. As `q → 0`, response times converge to PS —
//! experiment E10 demonstrates the convergence rate.

use crate::{Completion, Server};
use std::collections::VecDeque;

struct RrJob<T> {
    remaining: f64, // work units
    tag: T,
}

/// Work-conserving round-robin server with a fixed service quantum.
pub struct RrServer<T> {
    capacity: f64,
    /// Quantum in *seconds of service*.
    quantum: f64,
    tnow: f64,
    queue: VecDeque<RrJob<T>>,
    /// End of the current slice, if a job is in service.
    slice_end: Option<f64>,
    /// Work that the current slice will deliver.
    slice_work: f64,
    busy: f64,
    revision: u64,
}

impl<T> RrServer<T> {
    pub fn new(capacity: f64, quantum: f64) -> Self {
        assert!(capacity > 0.0 && quantum > 0.0);
        RrServer {
            capacity,
            quantum,
            tnow: 0.0,
            queue: VecDeque::new(),
            slice_end: None,
            slice_work: 0.0,
            busy: 0.0,
            revision: 0,
        }
    }

    fn start_slice(&mut self) {
        if let Some(head) = self.queue.front() {
            let slice_work = head.remaining.min(self.quantum * self.capacity);
            self.slice_work = slice_work;
            self.slice_end = Some(self.tnow + slice_work / self.capacity);
        } else {
            self.slice_end = None;
            self.slice_work = 0.0;
        }
        self.revision += 1;
    }
}

impl<T> Server<T> for RrServer<T> {
    fn arrive(&mut self, t: f64, work: f64, tag: T) {
        assert!(work > 0.0);
        debug_assert!(t >= self.tnow - 1e-9);
        self.tnow = t;
        self.queue.push_back(RrJob { remaining: work, tag });
        if self.slice_end.is_none() {
            self.start_slice();
        }
    }

    fn next_event(&self) -> Option<f64> {
        self.slice_end
    }

    fn on_event(&mut self, t: f64) -> Vec<Completion<T>> {
        debug_assert!(self.slice_end.is_some(), "on_event with no slice running");
        debug_assert!((t - self.slice_end.unwrap()).abs() < 1e-6);
        self.busy += t - self.tnow;
        self.tnow = t;
        let mut out = Vec::new();
        let mut head = self.queue.pop_front().expect("slice implies a head job");
        head.remaining -= self.slice_work;
        if head.remaining <= 1e-9 {
            out.push(Completion { time: t, tag: head.tag });
        } else {
            self.queue.push_back(head);
        }
        self.start_slice();
        out
    }

    fn in_system(&self) -> usize {
        self.queue.len()
    }

    fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Moves whenever a slice starts or the server drains — an arrival
    /// behind a running slice does not disturb the next event.
    fn revision(&self) -> u64 {
        self.revision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cap: f64, quantum: f64, arrivals: &[(f64, f64)]) -> Vec<(usize, f64)> {
        let mut server = RrServer::new(cap, quantum);
        let mut out = Vec::new();
        let mut i = 0;
        loop {
            let next_arrival = arrivals.get(i).map(|a| a.0);
            match (server.next_event(), next_arrival) {
                (Some(te), Some(ta)) if te <= ta => {
                    for c in server.on_event(te) {
                        out.push((c.tag, c.time));
                    }
                }
                (_, Some(ta)) => {
                    server.arrive(ta, arrivals[i].1, i);
                    i += 1;
                }
                (Some(te), None) => {
                    for c in server.on_event(te) {
                        out.push((c.tag, c.time));
                    }
                }
                (None, None) => break,
            }
        }
        out
    }

    #[test]
    fn single_job_unaffected_by_quantum() {
        for q in [10.0, 1.0, 0.1] {
            let out = run(2.0, q, &[(0.0, 10.0)]);
            assert_eq!(out.len(), 1);
            assert!((out[0].1 - 5.0).abs() < 1e-9, "quantum {q}");
        }
    }

    #[test]
    fn alternation_with_two_jobs() {
        // Capacity 1, quantum 1s. Jobs A(2) and B(2) at t=0.
        // Slices: A[0,1) B[1,2) A[2,3)→done B[3,4)→done.
        let out = run(1.0, 1.0, &[(0.0, 2.0), (0.0, 2.0)]);
        let a = out.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let b = out.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((a - 3.0).abs() < 1e-9, "A departs {a}");
        assert!((b - 4.0).abs() < 1e-9, "B departs {b}");
    }

    #[test]
    fn short_job_not_stuck_behind_long() {
        // Unlike FIFO, RR lets the short job finish early.
        let out = run(1.0, 0.5, &[(0.0, 100.0), (0.0, 1.0)]);
        let long = out.iter().find(|(tag, _)| *tag == 0).unwrap().1;
        let short = out.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!(short < 3.0, "short departs {short}");
        assert!(long > 100.0, "long departs {long}");
    }

    #[test]
    fn large_quantum_degenerates_to_fifo() {
        // Quantum larger than any job: pure FIFO order.
        let out = run(1.0, 1000.0, &[(0.0, 3.0), (0.0, 1.0), (0.0, 2.0)]);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_eq!(out[2].0, 2);
        assert!((out[0].1 - 3.0).abs() < 1e-9);
        assert!((out[1].1 - 4.0).abs() < 1e-9);
        assert!((out[2].1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn work_is_conserved() {
        let arrivals: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 0.1, 1.0)).collect();
        let out = run(2.0, 0.25, &arrivals);
        assert_eq!(out.len(), 20);
        let last = out.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        // 20 units of work at capacity 2 with no idling after t=0: ends at ≥ 10.
        assert!(last >= 10.0 - 1e-9, "last departure {last}");
    }
}
