//! Trace driver: feeds an arrival sequence through any [`Server`] and
//! records per-job response times. This is how the queueing-theory formulas
//! are validated against the running servers (experiments E7/E10).

use crate::{Completion, Server};
use simcore::dist::Sample;
use simcore::rng::Rng;
use simcore::stats::Welford;

/// One completed job with its full timeline.
#[derive(Clone, Copy, Debug)]
pub struct Departure {
    pub arrived: f64,
    pub departed: f64,
    pub work: f64,
}

impl Departure {
    /// Response (sojourn) time.
    pub fn response(&self) -> f64 {
        self.departed - self.arrived
    }
}

/// Runs `server` over a pre-built arrival list `(time, work)`, sorted by
/// time. Returns one [`Departure`] per job, in departure order.
pub fn drive<S: Server<usize>>(server: &mut S, arrivals: &[(f64, f64)]) -> Vec<Departure> {
    debug_assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0), "arrivals must be sorted");
    let mut out: Vec<Departure> = Vec::with_capacity(arrivals.len());
    let mut push = |c: Completion<usize>, arrivals: &[(f64, f64)]| {
        let (arrived, work) = arrivals[c.tag];
        out.push(Departure { arrived, departed: c.time, work });
    };
    let mut i = 0;
    loop {
        let next_arrival = arrivals.get(i).map(|a| a.0);
        match (server.next_event(), next_arrival) {
            (Some(te), Some(ta)) if te <= ta => {
                for c in server.on_event(te) {
                    push(c, arrivals);
                }
            }
            (_, Some(ta)) => {
                server.arrive(ta, arrivals[i].1, i);
                i += 1;
            }
            (Some(te), None) => {
                for c in server.on_event(te) {
                    push(c, arrivals);
                }
            }
            (None, None) => break,
        }
    }
    out
}

/// Builds a Poisson(`lambda`) arrival list of `n` jobs with IID work drawn
/// from `work_dist`.
pub fn poisson_arrivals(
    lambda: f64,
    work_dist: &dyn Sample,
    n: usize,
    rng: &mut Rng,
) -> Vec<(f64, f64)> {
    assert!(lambda > 0.0);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.exp(lambda);
            (t, work_dist.sample(rng))
        })
        .collect()
}

/// Summary of a queueing simulation run.
#[derive(Clone, Debug)]
pub struct QueueRunStats {
    /// Response-time moments over the measured (post-warm-up) jobs.
    pub response: Welford,
    /// Mean measured response time.
    pub mean_response: f64,
    /// 95% CI half width on the mean response.
    pub ci95: f64,
    /// Number of measured jobs.
    pub jobs: u64,
}

/// Runs an M/G/1-`server` experiment end to end: generates `n` Poisson
/// arrivals, drives the server, discards the first `warmup` jobs, and
/// summarises response times.
pub fn measure_mg1<S: Server<usize>>(
    server: &mut S,
    lambda: f64,
    work_dist: &dyn Sample,
    n: usize,
    warmup: usize,
    rng: &mut Rng,
) -> QueueRunStats {
    let arrivals = poisson_arrivals(lambda, work_dist, n, rng);
    let mut deps = drive(server, &arrivals);
    // Measure in arrival order so "first warmup jobs" is well defined.
    deps.sort_by(|a, b| a.arrived.total_cmp(&b.arrived));
    let mut response = Welford::new();
    for d in deps.iter().skip(warmup) {
        response.push(d.response());
    }
    QueueRunStats {
        mean_response: response.mean(),
        ci95: response.ci95_half_width(),
        jobs: response.count(),
        response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoServer;
    use crate::ps::PsServer;
    use crate::rr::RrServer;
    use crate::theory::{MG1Fifo, MG1Ps};
    use simcore::dist::{Deterministic, Exponential, Pareto};

    const N: usize = 60_000;
    const WARMUP: usize = 5_000;

    #[test]
    fn ps_matches_mm1_mean_response() {
        // M/M/1-PS: lambda=0.6, mean work 1, capacity 1 → rho=0.6, E[T]=2.5.
        let mut rng = Rng::new(101);
        let mut server = PsServer::new(1.0);
        let stats =
            measure_mg1(&mut server, 0.6, &Exponential::with_mean(1.0), N, WARMUP, &mut rng);
        let theory = MG1Ps::new(0.6, 1.0, 1.0).mean_response().unwrap();
        assert!(
            (stats.mean_response - theory).abs() < 0.1 + 3.0 * stats.ci95,
            "measured {} vs theory {theory}",
            stats.mean_response
        );
    }

    #[test]
    fn ps_insensitivity_pareto_vs_exponential() {
        // PS mean response depends only on the mean work: Pareto(2.5) with
        // mean 1 must give the same mean response as Exp(mean 1).
        let lambda = 0.6;
        let theory = MG1Ps::new(lambda, 1.0, 1.0).mean_response().unwrap();
        let mut rng = Rng::new(102);
        let mut s1 = PsServer::new(1.0);
        let exp = measure_mg1(&mut s1, lambda, &Exponential::with_mean(1.0), N, WARMUP, &mut rng);
        let mut s2 = PsServer::new(1.0);
        let par = measure_mg1(&mut s2, lambda, &Pareto::with_mean(1.0, 2.5), N, WARMUP, &mut rng);
        assert!((exp.mean_response - theory).abs() / theory < 0.08, "exp {}", exp.mean_response);
        assert!((par.mean_response - theory).abs() / theory < 0.12, "pareto {}", par.mean_response);
    }

    #[test]
    fn ps_conditional_response_is_linear_in_work() {
        // E[T | work = w] = (w/cap)/(1-rho): check the ratio for small vs
        // large jobs.
        let mut rng = Rng::new(103);
        let arrivals = poisson_arrivals(0.5, &Exponential::with_mean(1.0), N, &mut rng);
        let mut server = PsServer::new(1.0);
        let deps = drive(&mut server, &arrivals);
        let mut small = Welford::new();
        let mut large = Welford::new();
        for d in deps.iter().skip(WARMUP) {
            // Normalise response by work: should be ≈ 1/(1-rho) = 2 for all sizes.
            if d.work < 0.5 {
                small.push(d.response() / d.work);
            } else if d.work > 2.0 {
                large.push(d.response() / d.work);
            }
        }
        let slowdown = 1.0 / (1.0 - 0.5);
        // Small jobs' slowdown is noisier (tiny denominators) but the means
        // must both straddle 1/(1-rho).
        assert!((large.mean() - slowdown).abs() / slowdown < 0.1, "large {}", large.mean());
        assert!((small.mean() - slowdown).abs() / slowdown < 0.35, "small {}", small.mean());
    }

    #[test]
    fn fifo_matches_pollaczek_khinchine_md1() {
        // M/D/1: deterministic service 1 at capacity 1, lambda 0.5.
        let lambda = 0.5;
        let mut rng = Rng::new(104);
        let mut server = FifoServer::new(1.0);
        let stats = measure_mg1(&mut server, lambda, &Deterministic(1.0), N, WARMUP, &mut rng);
        let theory = MG1Fifo::new(lambda, 1.0, 1.0).mean_response().unwrap();
        assert!(
            (stats.mean_response - theory).abs() / theory < 0.05,
            "measured {} vs theory {theory}",
            stats.mean_response
        );
    }

    #[test]
    fn fifo_is_sensitive_to_variance_ps_is_not() {
        let lambda = 0.5;
        let mut rng = Rng::new(105);
        // High-variance work: Pareto shape 2.2, mean 1 (CV² ≈ 2.27 analytic).
        let heavy = Pareto::with_mean(1.0, 2.2);
        let mut fifo = FifoServer::new(1.0);
        let f = measure_mg1(&mut fifo, lambda, &heavy, N, WARMUP, &mut rng);
        let mut ps = PsServer::new(1.0);
        let p = measure_mg1(&mut ps, lambda, &heavy, N, WARMUP, &mut rng);
        let ps_theory = MG1Ps::new(lambda, 1.0, 1.0).mean_response().unwrap();
        assert!(
            f.mean_response > p.mean_response,
            "fifo {} ps {}",
            f.mean_response,
            p.mean_response
        );
        assert!((p.mean_response - ps_theory).abs() / ps_theory < 0.15);
    }

    #[test]
    fn rr_converges_to_ps_as_quantum_shrinks() {
        // Use deterministic service: for exponential work M/M/1-FIFO already
        // equals PS in mean, so there would be nothing to converge *from*.
        // With deterministic work, a huge quantum behaves like M/D/1-FIFO
        // (mean 1.75 at rho=0.6) while q→0 approaches PS (mean 2.5).
        let lambda = 0.6;
        let theory = MG1Ps::new(lambda, 1.0, 1.0).mean_response().unwrap();
        let mut errors = Vec::new();
        for quantum in [10.0, 0.25, 0.02] {
            let mut rng = Rng::new(106); // same seed → same arrivals
            let mut server = RrServer::new(1.0, quantum);
            let stats =
                measure_mg1(&mut server, lambda, &Deterministic(1.0), 30_000, 3_000, &mut rng);
            errors.push((stats.mean_response - theory).abs() / theory);
        }
        // Error shrinks monotonically toward the PS limit, and the smallest
        // quantum lands close.
        assert!(errors[0] > 0.15, "large quantum should look like FIFO: {errors:?}");
        assert!(errors[1] < errors[0], "errors {errors:?}");
        assert!(errors[2] < errors[1], "errors {errors:?}");
        assert!(errors[2] < 0.05, "errors {errors:?}");
    }

    #[test]
    fn poisson_arrival_rate_is_correct() {
        let mut rng = Rng::new(107);
        let arrivals = poisson_arrivals(4.0, &Deterministic(1.0), 40_000, &mut rng);
        let span = arrivals.last().unwrap().0 - arrivals[0].0;
        let rate = (arrivals.len() - 1) as f64 / span;
        assert!((rate - 4.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn departure_count_matches_arrivals() {
        let mut rng = Rng::new(108);
        let arrivals = poisson_arrivals(0.9, &Exponential::with_mean(1.0), 5_000, &mut rng);
        let mut server = PsServer::new(1.0);
        let deps = drive(&mut server, &arrivals);
        assert_eq!(deps.len(), arrivals.len());
        for d in &deps {
            assert!(d.departed >= d.arrived);
        }
    }
}
