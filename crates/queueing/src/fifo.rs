//! First-in-first-out server (M/G/1-FIFO when fed Poisson arrivals).
//!
//! The ablation baseline for experiment E10: FIFO response times depend on
//! the service-time *second moment* (Pollaczek–Khinchine), so heavy-tailed
//! sizes behave qualitatively differently than under processor sharing.

use crate::{Completion, Server};
use std::collections::VecDeque;

struct FifoJob<T> {
    work: f64,
    tag: T,
}

/// Non-preemptive FIFO single server.
pub struct FifoServer<T> {
    capacity: f64,
    tnow: f64,
    queue: VecDeque<FifoJob<T>>,
    /// Completion time of the job in service (the queue head).
    head_done: Option<f64>,
    busy: f64,
    revision: u64,
}

impl<T> FifoServer<T> {
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0);
        FifoServer {
            capacity,
            tnow: 0.0,
            queue: VecDeque::new(),
            head_done: None,
            busy: 0.0,
            revision: 0,
        }
    }

    fn start_head(&mut self) {
        self.head_done = self.queue.front().map(|job| self.tnow + job.work / self.capacity);
        self.revision += 1;
    }
}

impl<T> Server<T> for FifoServer<T> {
    fn arrive(&mut self, t: f64, work: f64, tag: T) {
        assert!(work > 0.0);
        debug_assert!(t >= self.tnow - 1e-9);
        self.tnow = t;
        self.queue.push_back(FifoJob { work, tag });
        if self.head_done.is_none() {
            self.start_head();
        }
    }

    fn next_event(&self) -> Option<f64> {
        self.head_done
    }

    fn on_event(&mut self, t: f64) -> Vec<Completion<T>> {
        debug_assert!(self.head_done.is_some());
        debug_assert!((t - self.head_done.unwrap()).abs() < 1e-6);
        self.busy += t - self.tnow;
        self.tnow = t;
        let job = self.queue.pop_front().expect("job in service");
        self.start_head();
        vec![Completion { time: t, tag: job.tag }]
    }

    fn in_system(&self) -> usize {
        self.queue.len()
    }

    fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Only moves when the head (and therefore `next_event`) changes: an
    /// arrival that joins a busy queue leaves the revision alone.
    fn revision(&self) -> u64 {
        self.revision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cap: f64, arrivals: &[(f64, f64)]) -> Vec<(usize, f64)> {
        let mut server = FifoServer::new(cap);
        let mut out = Vec::new();
        let mut i = 0;
        loop {
            let next_arrival = arrivals.get(i).map(|a| a.0);
            match (server.next_event(), next_arrival) {
                (Some(te), Some(ta)) if te <= ta => {
                    for c in server.on_event(te) {
                        out.push((c.tag, c.time));
                    }
                }
                (_, Some(ta)) => {
                    server.arrive(ta, arrivals[i].1, i);
                    i += 1;
                }
                (Some(te), None) => {
                    for c in server.on_event(te) {
                        out.push((c.tag, c.time));
                    }
                }
                (None, None) => break,
            }
        }
        out
    }

    #[test]
    fn serves_in_arrival_order() {
        let out = run(1.0, &[(0.0, 2.0), (0.5, 1.0), (0.6, 1.0)]);
        assert_eq!(out.iter().map(|&(tag, _)| tag).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!((out[0].1 - 2.0).abs() < 1e-9);
        assert!((out[1].1 - 3.0).abs() < 1e-9);
        assert!((out[2].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn head_of_line_blocking() {
        // Short job waits for the long one — opposite of PS/RR.
        let out = run(1.0, &[(0.0, 100.0), (1.0, 1.0)]);
        let short = out.iter().find(|(tag, _)| *tag == 1).unwrap().1;
        assert!((short - 101.0).abs() < 1e-9);
    }

    #[test]
    fn idle_period_between_jobs() {
        let out = run(1.0, &[(0.0, 1.0), (10.0, 1.0)]);
        assert!((out[0].1 - 1.0).abs() < 1e-9);
        assert!((out[1].1 - 11.0).abs() < 1e-9);
    }

    #[test]
    fn revision_only_moves_when_next_event_changes() {
        let mut server = FifoServer::new(1.0);
        let r0 = server.revision();
        server.arrive(0.0, 2.0, 0usize);
        let r1 = server.revision();
        assert!(r1 > r0, "first arrival starts the head");
        server.arrive(0.5, 1.0, 1usize);
        assert_eq!(server.revision(), r1, "joining a busy queue leaves next_event alone");
        let t = server.next_event().unwrap();
        server.on_event(t);
        assert!(server.revision() > r1, "a departure starts the next head");
    }

    #[test]
    fn busy_time_accounts_idle_gaps() {
        let mut server = FifoServer::new(1.0);
        server.arrive(0.0, 1.0, 0usize);
        let t = server.next_event().unwrap();
        server.on_event(t);
        server.arrive(5.0, 2.0, 1usize);
        let t = server.next_event().unwrap();
        server.on_event(t);
        assert!((server.busy_time() - 3.0).abs() < 1e-9);
    }
}
