//! Property tests for the span extractor and the end-to-end tracing
//! pipeline (satellite 3).
//!
//! Two layers:
//!
//! * **Extractor algebra** — random-but-causal synthetic job lifecycles
//!   (jittered issue, 1–4 hops with arbitrary propagation/queue/service
//!   gaps, an optional mid-path false-hit redirect) must extract to an
//!   exactly-tiled segment list whose per-kind totals reproduce the gaps
//!   the generator injected. This pins the cursor invariant on inputs no
//!   hand-written case would think of.
//! * **Whole-simulation invariants** — small cooperative cluster runs at
//!   a random seed/shard count: every extracted trace is well-formed,
//!   conserves latency, and the store is bit-identical to the
//!   single-shard run's.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload, ProxyPolicy,
    Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use proptest::collection::vec;
use proptest::prelude::*;
use simcore::trace::{
    SegKind, SpanEvent, SpanKind, TraceStore, TF_FALSE_HIT, TF_MEASURED, TF_PREFETCH,
};
use simcore::ObsConfig;
use workload::synth_web::SynthWebConfig;

/// Builds one synthetic job lifecycle: issue (optionally after a pending
/// stall), `retries` timed-out attempts each `(timeout, backoff)` long,
/// `hops` link traversals each `(prop, queue, service)` apart, an
/// optional redirect after hop `redirect_after`, then delivery one more
/// propagation gap later. Returns the raw events plus the exact per-kind
/// totals the extractor must reproduce.
#[allow(clippy::type_complexity)]
fn synth_lifecycle(
    stall: f64,
    retries: &[(f64, f64)],
    hops: &[(f64, f64, f64)],
    redirect_after: Option<usize>,
    tail_prop: f64,
    prefetch: bool,
) -> (Vec<SpanEvent>, [f64; 7], f64) {
    let mut events = Vec::new();
    let ev = |seq: u32, t: f64, kind: SpanKind, entity: u64, aux: f64, flags: u8| SpanEvent {
        trace: 0xfeed,
        seq,
        t,
        kind,
        entity,
        aux,
        item: 3,
        flags,
    };
    let decided = 10.0;
    let issued = decided + stall;
    let flags = TF_MEASURED | if prefetch { TF_PREFETCH } else { 0 };
    let mut seq = 0u32;
    events.push(ev(seq, issued, SpanKind::Issue, 1, decided, flags));
    // totals indexed like SegKind::ALL: pending, queue, service, prop,
    // wait, timeout, backoff
    let mut totals = [0.0f64; 7];
    totals[0] = stall;
    let mut t = issued;
    let mut wasted = 0.0;
    // Doomed attempts resolve before the surviving launch: each waits out
    // its timeout, then backs off before the next attempt.
    for &(timeout, backoff) in retries {
        seq += 1;
        let expiry = t + timeout;
        t = expiry + backoff;
        totals[5] += timeout;
        totals[6] += backoff;
        events.push(ev(seq, t, SpanKind::Retry, 1, expiry, 0));
    }
    for (h, &(prop, queue, service)) in hops.iter().enumerate() {
        seq += 1;
        t += prop;
        totals[3] += prop;
        events.push(ev(seq, t, SpanKind::Enqueue, 100 + h as u64, 0.0, 0));
        seq += 1;
        t += queue + service;
        totals[1] += queue;
        totals[2] += service;
        events.push(ev(seq, t, SpanKind::Dequeue, 100 + h as u64, service, 0));
        if redirect_after == Some(h) {
            seq += 1;
            events.push(ev(seq, t, SpanKind::Check, 2, 0.0, TF_FALSE_HIT));
            seq += 1;
            events.push(ev(seq, t, SpanKind::Redirect, 1, 0.0, TF_FALSE_HIT));
            // Everything accumulated on this leg (all queue/service/prop
            // plus any retry timeouts/backoffs so far — the pending stall
            // is outside the leg) is wasted.
            wasted = totals[1] + totals[2] + totals[3] + totals[5] + totals[6];
        }
    }
    seq += 1;
    t += tail_prop;
    totals[3] += tail_prop;
    events.push(ev(seq, t, SpanKind::Deliver, 1, 0.0, 0));
    (events, totals, wasted)
}

fn tiny_coop_config(latency_on: bool) -> ClusterConfig<'static> {
    let topology = if latency_on {
        Topology::mesh_with_latency(4, 50.0, 150.0, 45.0, 0.05)
    } else {
        Topology::mesh(4, 50.0, 150.0, 45.0)
    };
    ClusterConfig {
        topology,
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..4)
                    .map(|_| SynthWebConfig {
                        lambda: 10.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 32,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(7),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                refresh: RefreshStrategy::Deltas,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 300,
        warmup_per_proxy: 60,
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The extractor reproduces exactly the time the generator injected,
    /// kind by kind, on arbitrary causal lifecycles.
    #[test]
    fn extractor_attributes_every_injected_gap(
        stall_q in 0u32..3,
        retries in vec((0.1f64..2.0, 0.0f64..1.0), 0..4),
        hops in vec((0.0f64..0.5, 0.0f64..2.0, 0.01f64..1.0), 1..5),
        redirect_sel in 0usize..8,
        tail_prop in 0.0f64..0.5,
        prefetch in any::<bool>(),
    ) {
        // A pending stall only exists for jittered prefetches; demand
        // fetches issue at decision time.
        let stall = if prefetch { stall_q as f64 * 0.21 } else { 0.0 };
        // Prefetches get exactly one attempt: no retry legs.
        let retries = if prefetch { &[][..] } else { &retries[..] };
        // Redirect after one of the non-final hops, or never.
        let redirect_after =
            if redirect_sel + 1 < hops.len() { Some(redirect_sel) } else { None };
        let (events, totals, wasted) =
            synth_lifecycle(stall, retries, &hops, redirect_after, tail_prop, prefetch);
        let store = TraceStore::from_events(events, 1);
        prop_assert_eq!(store.traces.len(), 1);
        let tr = &store.traces[0];
        prop_assert!(tr.check().is_ok(), "{:?}", tr.check());
        prop_assert!(close(tr.segment_sum(), tr.latency()),
            "segments {} vs latency {}", tr.segment_sum(), tr.latency());
        for (ki, &kind) in SegKind::ALL.iter().enumerate() {
            let got: f64 = tr
                .segments
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.end - s.start)
                .sum();
            prop_assert!(close(got, totals[ki]),
                "{}: extracted {} vs injected {}", kind.name(), got, totals[ki]);
        }
        let got_wasted: f64 =
            tr.segments.iter().filter(|s| s.wasted).map(|s| s.end - s.start).sum();
        prop_assert!(close(got_wasted, wasted),
            "wasted {} vs injected {}", got_wasted, wasted);
        // The wasted leg never includes the pending stall.
        prop_assert!(tr
            .segments
            .iter()
            .all(|s| !(s.wasted && s.kind == SegKind::PendingWait)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole small runs at random seeds: every trace well-formed and
    /// conservative, and the store independent of the shard count.
    #[test]
    fn random_runs_trace_well_formed_and_shard_independent(
        seed in 0u64..10_000,
        shards_sel in 0usize..2,
        latency_on in any::<bool>(),
    ) {
        let config = tiny_coop_config(latency_on);
        let probes = ObsConfig::on().with_sample_every(1.0).with_trace_every(1);
        let (report, base) = ClusterSim::new(&config).run_observed(seed, 1, &probes);
        let base = base.traces.expect("tracing ran");
        prop_assert!(!base.traces.is_empty());
        for tr in &base.traces {
            prop_assert!(tr.check().is_ok(), "{:?}", tr.check());
            prop_assert!(close(tr.segment_sum(), tr.latency()),
                "trace {:#x}: {} vs {}", tr.id, tr.segment_sum(), tr.latency());
            prop_assert!(tr.start <= tr.end && tr.end <= report.duration);
        }
        let shards = [2, 4][shards_sel];
        let (_, obs) = ClusterSim::new(&config).run_observed(seed, shards, &probes);
        prop_assert_eq!(obs.traces.as_ref(), Some(&base),
            "store differs at {} shards", shards);
    }
}
