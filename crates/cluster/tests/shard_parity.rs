//! Sharded-driver determinism: `ClusterSim::run_sharded` must produce
//! **bit-identical** reports for every shard count, equal to the
//! single-threaded oracle (`ClusterSim::run`) — on the zero-latency
//! E13/E14/E16-shaped configurations (where the conservative lookahead is
//! zero and the shards run merged on one thread) *and* on latency-bearing
//! meshes (where the shards run real conservative windows on their own
//! threads).
//!
//! Bit-identity is asserted through `ClusterReport`'s derived
//! `PartialEq` — every float compared exactly, not to a tolerance: the
//! sharding must not even perturb floating-point accumulation order.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload, ProxyPolicy,
    ShardPlan, StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use simcore::dist::Exponential;
use workload::synth_web::SynthWebConfig;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_shard_counts_agree(config: &ClusterConfig<'_>, seed: u64, label: &str) {
    let oracle = ClusterSim::new(config).run(seed);
    for shards in SHARD_COUNTS {
        let sharded = ClusterSim::new(config).run_sharded(seed, shards);
        assert_eq!(
            sharded, oracle,
            "{label}: report at {shards} shards differs from the single-threaded oracle"
        );
    }
}

/// The E13-shaped adaptive deployment: heterogeneous local load over a
/// sharded origin, oracle candidates, jittered prefetch pacing.
fn e13_adaptive_config() -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::sharded_origin(6, 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: [8.0, 18.0, 30.0, 11.0, 22.0, 14.0]
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 3_000,
        warmup_per_proxy: 600,
    }
}

/// The E14-shaped cooperative deployment: peer mesh, identical item
/// universes, short digest epoch, load-aware placement.
fn e14_coop_config(latency: f64, refresh: RefreshStrategy) -> ClusterConfig<'static> {
    let topology = if latency > 0.0 {
        Topology::mesh_with_latency(6, 50.0, 150.0, 45.0, latency)
    } else {
        Topology::mesh(6, 50.0, 150.0, 45.0)
    };
    ClusterConfig {
        topology,
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..6)
                    .map(|_| SynthWebConfig {
                        lambda: 14.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                refresh,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 2_500,
        warmup_per_proxy: 500,
    }
}

/// The E16-shaped deployment: byte-addressed caches under a heavy Pareto
/// size tail, delta digest exchange.
fn e16_bytes_config() -> ClusterConfig<'static> {
    let mut config = e14_coop_config(0.0, RefreshStrategy::Deltas);
    let Workload::Cooperative(w) = &mut config.workload else { unreachable!() };
    for p in &mut w.base.proxies {
        p.size_shape = 1.6;
    }
    w.base.cache_capacity = 192;
    w.base.cache_bytes = Some(160.0);
    w.coop.digest.epoch = 1.0;
    config
}

#[test]
fn adaptive_sharding_is_invisible() {
    assert_shard_counts_agree(&e13_adaptive_config(), 13, "e13 adaptive");
}

#[test]
fn cooperative_sharding_is_invisible() {
    assert_shard_counts_agree(&e14_coop_config(0.0, RefreshStrategy::Deltas), 14, "e14 coop");
}

#[test]
fn byte_cache_sharding_is_invisible() {
    assert_shard_counts_agree(&e16_bytes_config(), 16, "e16 bytes");
}

#[test]
fn static_sharding_is_invisible() {
    let size = Exponential::with_mean(1.0);
    let config = ClusterConfig {
        topology: Topology::sharded_origin(5, 2, 25.0, 30.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 10.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 5],
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 8_000,
        warmup_per_proxy: 1_600,
    };
    assert_shard_counts_agree(&config, 29, "static");
}

/// The windowed multi-threaded path: a latency mesh gives the partition a
/// positive lookahead, so shard counts > 1 actually run concurrent
/// conservative windows — and must still match the sequential oracle
/// bit-for-bit, across refresh strategies (the boundary is the one global
/// synchronisation point).
#[test]
fn windowed_execution_matches_the_oracle() {
    for refresh in [RefreshStrategy::Deltas, RefreshStrategy::Auto] {
        let config = e14_coop_config(0.05, refresh);
        let plan = ShardPlan::partition(&config.topology, 4);
        assert!(
            plan.lookahead() > 0.0,
            "latency mesh must admit a positive lookahead, got {}",
            plan.lookahead()
        );
        assert_shard_counts_agree(&config, 21, &format!("latency mesh {refresh:?}"));
    }
}

/// Same windowed run, repeated: thread scheduling must not leak into the
/// report at all.
#[test]
fn windowed_execution_is_stable_across_repeats() {
    let config = e14_coop_config(0.05, RefreshStrategy::Deltas);
    let first = ClusterSim::new(&config).run_sharded(7, 8);
    for _ in 0..2 {
        assert_eq!(ClusterSim::new(&config).run_sharded(7, 8), first);
    }
}

/// The partitioner itself: balanced contiguous blocks, every entity
/// owned, lookahead reflects the topology's latency floor.
#[test]
fn shard_plan_covers_the_topology() {
    let topology = Topology::mesh_with_latency(10, 50.0, 200.0, 45.0, 0.02);
    let plan = ShardPlan::partition(&topology, 4);
    assert_eq!(plan.n_shards(), 4);
    let mut per_shard = [0usize; 4];
    for p in 0..10 {
        per_shard[plan.proxy_shard(p)] += 1;
    }
    assert_eq!(per_shard.iter().sum::<usize>(), 10);
    assert!(per_shard.iter().all(|&c| c == 2 || c == 3), "balanced blocks: {per_shard:?}");
    // Private access links live with their proxy.
    for p in 0..10 {
        let access = topology.route(p, 0)[0];
        assert_eq!(plan.link_shard(access), plan.proxy_shard(p), "access[{p}] follows its proxy");
    }
    // Uniform latency 0.02 ⇒ every crossing handoff costs ≥ 0.02.
    assert_eq!(plan.lookahead(), 0.02);
    assert!(plan.edge_cut(&topology) > 0, "a 4-way mesh cut crosses peer links");

    // Zero-latency meshes admit no window at all.
    let flat = Topology::mesh(10, 50.0, 200.0, 45.0);
    assert_eq!(ShardPlan::partition(&flat, 4).lookahead(), 0.0);
    // One shard crosses nothing.
    assert_eq!(ShardPlan::partition(&flat, 1).lookahead(), f64::INFINITY);
}
