//! Observability must be a pure *observer*: attaching the full probe set
//! (`ObsConfig::on()` with series sampling and flight recording) must not
//! perturb the simulation at all. The [`cluster::ClusterReport`] produced
//! with probes on is asserted **bit-identical** (derived `PartialEq`,
//! every float exact) to the plain run, at every shard count — obs draws
//! no RNG, schedules no events, and feeds nothing back.
//!
//! The second half sanity-checks the telemetry itself: the metrics that
//! E18's dashboard and `OBS_cluster.json` rely on actually accumulate,
//! series from different shards line up on one grid, and the JSON
//! artifact round-trips through `simcore::Json::parse`.

use cluster::{
    report_to_json, AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim,
    CooperativeWorkload, ProxyPolicy, StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use simcore::dist::Exponential;
use simcore::{Json, ObsConfig};
use workload::synth_web::SynthWebConfig;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn coop_config(latency: f64) -> ClusterConfig<'static> {
    let topology = if latency > 0.0 {
        Topology::mesh_with_latency(4, 50.0, 150.0, 45.0, latency)
    } else {
        Topology::mesh(4, 50.0, 150.0, 45.0)
    };
    ClusterConfig {
        topology,
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..4)
                    .map(|_| SynthWebConfig {
                        lambda: 14.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                refresh: RefreshStrategy::Deltas,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 1_500,
        warmup_per_proxy: 300,
    }
}

fn adaptive_config() -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: [8.0, 18.0, 30.0, 11.0]
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 1_500,
        warmup_per_proxy: 300,
    }
}

fn static_config(size: &(dyn simcore::dist::Sample + Sync)) -> ClusterConfig<'_> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 25.0, 30.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 10.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 4],
            size_dist: size,
            catalog_items: None,
        }),
        requests_per_proxy: 4_000,
        warmup_per_proxy: 800,
    }
}

fn probes() -> ObsConfig {
    ObsConfig::on().with_sample_every(1.0).with_flight_capacity(256)
}

fn assert_obs_is_invisible(config: &ClusterConfig<'_>, seed: u64, label: &str) {
    let oracle = ClusterSim::new(config).run(seed);
    for shards in SHARD_COUNTS {
        let plain = ClusterSim::new(config).run_sharded(seed, shards);
        assert_eq!(plain, oracle, "{label}: obs-off report at {shards} shards vs oracle");
        let (observed, obs) = ClusterSim::new(config).run_observed(seed, shards, &probes());
        assert_eq!(observed, oracle, "{label}: obs-on report at {shards} shards vs oracle");
        assert_eq!(obs.shards, shards, "{label}: obs shard count");
    }
}

#[test]
fn observation_is_invisible_adaptive() {
    assert_obs_is_invisible(&adaptive_config(), 13, "adaptive");
}

#[test]
fn observation_is_invisible_cooperative() {
    assert_obs_is_invisible(&coop_config(0.0), 14, "coop merged");
}

#[test]
fn observation_is_invisible_on_the_windowed_driver() {
    assert_obs_is_invisible(&coop_config(0.05), 21, "coop windowed");
}

#[test]
fn observation_is_invisible_static() {
    let size = Exponential::with_mean(1.0);
    assert_obs_is_invisible(&static_config(&size), 29, "static");
}

/// Telemetry itself is deterministic across shard counts: counters are
/// exactly equal; float aggregates (series points, latency moments) agree
/// to last-ulp tolerance — per-shard partial sums merge in a different
/// addition order than the one-shard sequential sum, so bit-identity is
/// the contract of the *report*, and near-identity the contract of the
/// telemetry.
#[test]
fn telemetry_is_deterministic_across_shardings() {
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }
    let config = coop_config(0.05);
    let (_, base) = ClusterSim::new(&config).run_observed(7, 1, &probes());
    for shards in [2, 4] {
        let (_, obs) = ClusterSim::new(&config).run_observed(7, shards, &probes());
        let counters: Vec<_> = obs.registry.counters().collect();
        assert_eq!(counters, base.registry.counters().collect::<Vec<_>>(), "{shards} shards");
        for (name, pts) in base.registry.all_series() {
            let got = obs.registry.series_points(name).expect(name);
            assert_eq!(got.len(), pts.len(), "series {name} length, {shards} shards");
            for (i, (&x, &y)) in got.iter().zip(pts).enumerate() {
                assert!(close(x, y), "series {name}[{i}] at {shards} shards: {x} vs {y}");
            }
        }
        let (a, b) = (obs.latency().unwrap(), base.latency().unwrap());
        assert_eq!(a.moments.count(), b.moments.count());
        assert!(close(a.moments.mean(), b.moments.mean()));
        assert_eq!(obs.duration, base.duration);
    }
}

#[test]
fn telemetry_content_is_populated() {
    let config = coop_config(0.05);
    let (report, obs) = ClusterSim::new(&config).run_observed(7, 4, &probes());

    // Latency distribution saw every post-warmup access.
    let lat = obs.latency().expect("latency dist");
    assert!(lat.moments.count() > 0, "latency samples");
    assert!(obs.latency_quantile(0.5).is_some(), "histogram-backed p50");
    assert!(lat.moments.mean() > 0.0);

    // Counters the dashboard prints.
    assert!(obs.registry.counter_value("requests.processed") > 0);
    assert!(obs.registry.counter_value("predictor.predictions") > 0, "adaptive ⇒ preds flow");
    assert!(obs.registry.counter_value("prefetch.issued") > 0);
    assert_eq!(obs.registry.counter_value("coop.digest_bytes"), report.digest_bytes());

    // Time-series probes share one epoch grid: equal lengths, grid > 0.
    assert!(obs.grid > 0.0);
    let series: Vec<(&str, usize)> = obs.registry.all_series().map(|(n, p)| (n, p.len())).collect();
    assert!(!series.is_empty(), "series probes present");
    let len = series[0].1;
    assert!(len > 0, "series non-empty");
    assert!(series.iter().all(|&(_, l)| l == len), "aligned series: {series:?}");
    assert!(obs.registry.series_points("cache.occupancy_bytes").is_some());
    let backbone = obs.mean_link_util("backbone").expect("backbone utilization series");
    assert!(backbone > 0.0 && backbone <= 1.0 + 1e-9, "backbone mean util: {backbone}");
    assert!(obs.mean_link_util("no-such-link").is_none());

    // Profiler rows: one per shard, events counted, windows driven.
    assert_eq!(obs.profiles.len(), 4);
    assert!(obs.profiles.iter().all(|p| p.events > 0), "every shard dispatched");
    assert!(obs.profiles.iter().map(|p| p.windows).sum::<u64>() > 0, "windowed driver ran");
    assert_eq!(obs.driver, "windowed");

    // Flight recorder kept the most recent records, time-ordered.
    assert!(!obs.flight.is_empty());
    assert!(obs.flight.windows(2).all(|w| w[0].t <= w[1].t), "flight time-ordered");

    // Wall-clock derived rates exist (wall time is the one nondeterministic
    // field, so only sign is asserted).
    assert!(obs.wall_secs > 0.0);
    assert!(obs.events_per_sec() > 0.0);
    assert!(obs.preds_per_sec() > 0.0);
}

/// The disabled config is an inert shell: same report, empty telemetry.
#[test]
fn disabled_obs_is_an_empty_shell() {
    let config = adaptive_config();
    let (report, obs) = ClusterSim::new(&config).run_observed(13, 2, &ObsConfig::off());
    assert_eq!(report, ClusterSim::new(&config).run_sharded(13, 2));
    assert!(obs.latency().is_none());
    assert_eq!(obs.registry.counter_value("requests.processed"), 0);
    assert!(obs.profiles.is_empty() && obs.flight.is_empty());
    assert!(obs.to_json().render().contains("\"driver\""));
}

/// Both JSON artifacts parse back through the hand-rolled codec.
#[test]
fn artifacts_roundtrip_through_the_parser() {
    let config = coop_config(0.0);
    let (report, obs) = ClusterSim::new(&config).run_observed(14, 2, &probes());

    let obs_text = obs.to_json().render();
    let parsed = Json::parse(&obs_text).expect("obs json parses");
    assert_eq!(parsed.get("shards").and_then(Json::as_f64), Some(2.0));
    assert!(parsed.get("latency").is_some());
    assert!(parsed.get("profiles").is_some());

    let rep_text = report_to_json(&report).render();
    let parsed = Json::parse(&rep_text).expect("report json parses");
    let nodes = parsed.get("nodes").and_then(Json::as_arr).expect("nodes array");
    assert_eq!(nodes.len(), 4);
    assert_eq!(
        parsed.get("mean_access_time").and_then(Json::as_f64),
        Some(report.mean_access_time)
    );
    let coop = parsed.get("coop").expect("coop section");
    assert_eq!(
        coop.get("router").and_then(|r| r.get("digest_bytes")).and_then(Json::as_f64),
        Some(report.digest_bytes() as f64)
    );
}
