//! Delta-refresh vs full-rebuild parity at cluster scope.
//!
//! The two digest refresh protocols ([`RefreshStrategy::Deltas`] and
//! [`RefreshStrategy::FullRebuild`]) regenerate identical advertised
//! state, so entire simulation runs must be observationally identical:
//! full [`ClusterReport`] equality to 1e-12 on E13-shaped adaptive,
//! E14-shaped cooperative, and E16-shaped byte-addressed configurations —
//! everything except the digest-exchange volume, which differs *by
//! design* (that is the point of the protocol) and is asserted strictly
//! smaller on the delta side.
//!
//! Also pinned here: the byte-accounting invariants end-to-end — cache
//! occupancy never exceeds the configured byte budget, and prefetch
//! goodput/badput conserve the prefetched **byte** volume under
//! heterogeneous object sizes. (The open-loop static engine has no cache
//! and therefore no digest stream; its byte counters flow straight from
//! the size distribution and are covered by the engine-parity suite.)

use cluster::parity::{assert_reports_match, assert_reports_match_modulo_digest_traffic};
use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use workload::synth_web::SynthWebConfig;

/// The E13-shaped adaptive deployment (no cooperative layer: both
/// strategies are trivially inert, which the suite still pins — attaching
/// a refresh strategy must not perturb a digest-less run).
fn e13_adaptive_config() -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::sharded_origin(3, 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: [8.0, 18.0, 30.0]
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 8_000,
        warmup_per_proxy: 1_600,
    }
}

/// The E14-shaped cooperative deployment: 3-proxy peer mesh, identical
/// item universes, short digest epoch, load-aware placement.
fn e14_coop_config(strategy: RefreshStrategy, epoch: f64) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh(3, 50.0, 70.0, 45.0),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..3)
                    .map(|_| SynthWebConfig {
                        lambda: 14.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch, bits_per_entry: 10, hashes: 4 },
                refresh: strategy,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 8_000,
        warmup_per_proxy: 1_600,
    }
}

/// Per-proxy cache byte budget of the E16-shaped deployment.
const E16_CACHE_BYTES: f64 = 160.0;

/// The E16-shaped deployment: a wider peer mesh with **byte-addressed**
/// caches and markedly heterogeneous object sizes (heavy Pareto tail), so
/// byte-driven multi-evictions feed the delta streams. Caches are sized
/// in the regime delta exchange is built for — per-epoch churn well below
/// capacity — which is where real summary caches live (a proxy does not
/// turn its whole cache over between refreshes).
fn e16_byte_config(strategy: RefreshStrategy) -> ClusterConfig<'static> {
    let n = 8;
    ClusterConfig {
        topology: Topology::mesh(n, 50.0, 25.0 * n as f64, 45.0),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n)
                    .map(|_| SynthWebConfig {
                        lambda: 14.0,
                        link_skew: 0.3,
                        size_shape: 1.6,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 192,
                cache_bytes: Some(E16_CACHE_BYTES),
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 1.0, bits_per_entry: 10, hashes: 4 },
                refresh: strategy,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 3_000,
        warmup_per_proxy: 600,
    }
}

/// Runs a cooperative config under both strategies and pins report
/// parity. Digest-exchange volume legitimately differs between the
/// protocols (deltas cost O(churn), snapshots O(capacity)); the byte win
/// itself is asserted only on the E16-shaped config, whose caches sit in
/// the regime the delta protocol targets.
fn assert_delta_full_parity(
    delta_config: &ClusterConfig<'_>,
    full_config: &ClusterConfig<'_>,
    seed: u64,
    label: &str,
) -> (ClusterReport, ClusterReport) {
    let by_delta = ClusterSim::new(delta_config).run(seed);
    let by_full = ClusterSim::new(full_config).run(seed);
    assert_reports_match_modulo_digest_traffic(&by_delta, &by_full, label);
    (by_delta, by_full)
}

#[test]
fn e13_adaptive_is_strategy_invariant() {
    // No router → no digests: the runs must be *fully* identical,
    // digest-traffic counters (all zero) included.
    for seed in [13u64, 71] {
        let a = ClusterSim::new(&e13_adaptive_config()).run(seed);
        let b = ClusterSim::new(&e13_adaptive_config()).run(seed);
        assert_reports_match(&a, &b, &format!("e13 seed {seed}"));
        assert_eq!(a.digest_bytes(), 0);
    }
}

#[test]
fn e14_coop_delta_matches_full_rebuild() {
    for (seed, epoch) in [(14u64, 2.0), (77, 0.5), (5, 8.0)] {
        assert_delta_full_parity(
            &e14_coop_config(RefreshStrategy::Deltas, epoch),
            &e14_coop_config(RefreshStrategy::FullRebuild, epoch),
            seed,
            &format!("e14 seed {seed} epoch {epoch}"),
        );
    }
}

#[test]
fn e16_byte_addressed_delta_matches_full_rebuild() {
    for seed in [16u64, 99] {
        let (by_delta, by_full) = assert_delta_full_parity(
            &e16_byte_config(RefreshStrategy::Deltas),
            &e16_byte_config(RefreshStrategy::FullRebuild),
            seed,
            &format!("e16 seed {seed}"),
        );
        // Delta mode actually shipped ops (the byte-driven churn exists)…
        assert!(by_delta.coop.expect("coop counters").router.delta_ops > 0);
        // …and, with per-epoch churn below cache capacity (the regime the
        // protocol targets), strictly fewer exchange bytes than shipping
        // full snapshots every boundary.
        let (d, f) = (by_delta.digest_bytes(), by_full.digest_bytes());
        assert!(d < f, "seed {seed}: delta traffic {d} B not below full-rebuild {f} B");
    }
}

/// Byte-accounting invariants end-to-end: occupancy respects the byte
/// budget at every proxy, and goodput + badput — both byte-denominated —
/// stay non-negative and sum to the prefetched volume (the engine
/// debug-asserts exact conservation per proxy on every run).
#[test]
fn byte_budget_and_conservation_hold_under_heterogeneous_sizes() {
    let report = ClusterSim::new(&e16_byte_config(RefreshStrategy::Deltas)).run(7);
    let mut prefetched_any = false;
    for node in &report.nodes {
        let used = node.cache_used_bytes.expect("closed loop reports cache occupancy");
        assert!(
            used <= E16_CACHE_BYTES + 1e-9,
            "proxy {}: occupancy {used} B exceeds budget {E16_CACHE_BYTES} B",
            node.proxy
        );
        let good = node.goodput_bytes.expect("adaptive mode reports goodput");
        let bad = node.badput_bytes.expect("adaptive mode reports badput");
        assert!(good >= 0.0 && bad >= 0.0);
        if node.prefetches_per_request > 0.0 {
            prefetched_any = true;
            assert!(good + bad > 0.0, "proxy {}: prefetched but no byte volume", node.proxy);
        }
    }
    assert!(prefetched_any, "the E16 config never prefetched");
}

/// The engine-parity oracle still holds with the delta strategy in force:
/// the legacy scan driver and the indexed scheduler produce identical
/// reports when both run delta refreshes.
#[test]
fn legacy_driver_parity_holds_under_delta_refresh() {
    let config = e16_byte_config(RefreshStrategy::Deltas);
    let new = ClusterSim::new(&config).run(21);
    let old = cluster::legacy::run(&config, 21);
    assert_reports_match(&new, &old, "legacy vs scheduler, delta mode");
}
