//! MSHR-mode determinism and delayed-hits behaviour.
//!
//! Every delayed-hits configuration — coalescing on/off, bounded entry
//! budgets, aggregate-delay ranking, size-aware thresholds, the static
//! catalog mode — must leave the sharded driver **bit-identical** to the
//! single-threaded oracle at every shard count, exactly like the default
//! engines (`shard_parity.rs`). On top of parity, this suite pins the
//! delayed-hits physics the refactor exists for:
//!
//! * at backbone latencies the fetch window spans later requests, so the
//!   coalescing table settles some of them as **delayed hits** and makes
//!   **strictly fewer origin fetches** than the independent-miss baseline
//!   at equal offered load;
//! * aggregate-delay **ranking** (evict the key that has cost the least
//!   accumulated waiting) beats plain recency on mean access time in a
//!   pinned high-latency cell.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim, DelayedHitsConfig,
    ProxyPolicy, RankingMode, StaticProxy, StaticWorkload, Topology, Workload,
};
use simcore::dist::Exponential;
use workload::synth_web::SynthWebConfig;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn assert_shard_counts_agree(config: &ClusterConfig<'_>, seed: u64, label: &str) -> ClusterReport {
    let oracle = ClusterSim::new(config).run(seed);
    for shards in SHARD_COUNTS {
        let sharded = ClusterSim::new(config).run_sharded(seed, shards);
        assert_eq!(
            sharded, oracle,
            "{label}: report at {shards} shards differs from the single-threaded oracle"
        );
    }
    oracle
}

/// A latency-bearing deployment where fetch windows span many requests:
/// high load and a slow, high-latency backbone. This is the regime where
/// delayed hits exist at all.
fn delayed_config(delayed: DelayedHitsConfig) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh_with_latency(4, 60.0, 25.0, 45.0, 0.08),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: (0..4)
                .map(|i| SynthWebConfig {
                    lambda: 24.0 + 4.0 * i as f64,
                    n_items: 160,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 24,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed,
        }),
        requests_per_proxy: 3_000,
        warmup_per_proxy: 600,
    }
}

#[test]
fn coalescing_sharding_is_invisible() {
    let report = assert_shard_counts_agree(
        &delayed_config(DelayedHitsConfig::default()),
        20,
        "mshr coalescing",
    );
    assert!(
        report.delayed_hits() > 0,
        "the high-latency cell must settle some delayed hits, got none"
    );
}

#[test]
fn independent_sharding_is_invisible() {
    let report = assert_shard_counts_agree(
        &delayed_config(DelayedHitsConfig { coalesce: false, ..Default::default() }),
        20,
        "mshr independent",
    );
    assert_eq!(report.delayed_hits(), 0, "independent mode must never coalesce");
}

#[test]
fn budgeted_sharding_is_invisible() {
    let report = assert_shard_counts_agree(
        &delayed_config(DelayedHitsConfig { mshr_entries: Some(4), ..Default::default() }),
        20,
        "mshr budgeted",
    );
    let rejections: u64 = report.nodes.iter().filter_map(|n| n.mshr_rejections).sum();
    assert!(rejections > 0, "a 4-entry budget at this load must refuse some allocations");
}

#[test]
fn ranked_sharding_is_invisible() {
    assert_shard_counts_agree(
        &delayed_config(DelayedHitsConfig {
            ranking: RankingMode::AggregateDelay,
            ..Default::default()
        }),
        20,
        "mshr ranked",
    );
}

#[test]
fn size_aware_sharding_is_invisible() {
    assert_shard_counts_agree(
        &delayed_config(DelayedHitsConfig { size_aware: true, ..Default::default() }),
        20,
        "mshr size-aware",
    );
}

#[test]
fn static_catalog_sharding_is_invisible() {
    let size = Exponential::with_mean(1.0);
    let config = ClusterConfig {
        topology: Topology::sharded_origin(5, 2, 25.0, 12.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 14.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 5],
            size_dist: &size,
            catalog_items: Some(40),
        }),
        requests_per_proxy: 6_000,
        warmup_per_proxy: 1_200,
    };
    let report = assert_shard_counts_agree(&config, 31, "static catalog");
    assert!(
        report.delayed_hits() > 0,
        "a 40-item catalog over a slow origin must settle some delayed hits"
    );
    assert!(
        report.coalesced_requests() > 0 && report.origin_fetches() > 0,
        "catalog mode must populate the MSHR aggregates"
    );
}

/// The coalescing win: at equal offered load over the same slow backbone,
/// the coalescing table launches strictly fewer origin fetches than the
/// independent-miss baseline — each waiter join is a transfer avoided —
/// and the counters reconcile exactly.
#[test]
fn coalescing_launches_strictly_fewer_origin_fetches() {
    let coalescing = ClusterSim::new(&delayed_config(DelayedHitsConfig::default())).run(22);
    let independent = ClusterSim::new(&delayed_config(DelayedHitsConfig {
        coalesce: false,
        ..Default::default()
    }))
    .run(22);
    assert!(
        coalescing.coalesced_requests() > 0,
        "no coalescing happened — the cell no longer exercises delayed hits"
    );
    assert!(
        coalescing.origin_fetches() < independent.origin_fetches(),
        "coalescing must launch strictly fewer origin fetches: {} vs {}",
        coalescing.origin_fetches(),
        independent.origin_fetches()
    );
    assert_eq!(independent.delayed_hits(), 0, "the baseline must not settle delayed hits");
}

/// The ranking win: in the pinned high-latency cell, evicting by
/// aggregate delay (keep the keys whose absence costs the most waiting)
/// yields a lower mean access time than plain recency.
#[test]
fn aggregate_delay_ranking_beats_recency() {
    let recency = ClusterSim::new(&delayed_config(DelayedHitsConfig::default())).run(23);
    let ranked = ClusterSim::new(&delayed_config(DelayedHitsConfig {
        ranking: RankingMode::AggregateDelay,
        ..Default::default()
    }))
    .run(23);
    assert!(
        ranked.mean_access_time < recency.mean_access_time,
        "aggregate-delay ranking must beat recency on mean access time: {} vs {}",
        ranked.mean_access_time,
        recency.mean_access_time
    );
}
