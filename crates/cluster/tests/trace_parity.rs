//! Causal tracing must follow the observability contract: attaching span
//! probes cannot perturb the simulation ([`cluster::ClusterReport`]
//! bit-identical with tracing on vs the untraced sequential oracle, at
//! every shard count, on all three engines), and the traces themselves
//! must be **bit-identical across shard counts** — span buffers merge on
//! the `(trace, seq)` total key, so sharding can't reorder anything.
//!
//! The second half cross-checks the extracted traces against the report's
//! own statistics (the satellite-2 requirement): with `trace_every = 1`
//! the per-proxy class counts reproduce `measured_requests`/`hit_ratio`
//! exactly, and the mean of measured demand-trace latencies agrees with
//! `mean_retrieval_time` to 1e-9 — two independent measurement paths over
//! the same events.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload,
    DelayedHitsConfig, ProxyPolicy, StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use simcore::dist::Exponential;
use simcore::trace::{SegKind, TraceClass};
use simcore::{Json, ObsConfig};
use workload::synth_web::SynthWebConfig;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn coop_config(n: usize, latency: f64, requests: usize) -> ClusterConfig<'static> {
    let topology = if latency > 0.0 {
        Topology::mesh_with_latency(n, 50.0, 150.0, 45.0, latency)
    } else {
        Topology::mesh(n, 50.0, 150.0, 45.0)
    };
    ClusterConfig {
        topology,
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n)
                    .map(|_| SynthWebConfig {
                        lambda: 12.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                refresh: RefreshStrategy::Deltas,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

fn adaptive_config(cache_bytes: Option<f64>) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: [8.0, 18.0, 30.0, 11.0]
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 1_200,
        warmup_per_proxy: 240,
    }
}

fn static_config(size: &(dyn simcore::dist::Sample + Sync)) -> ClusterConfig<'_> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 25.0, 30.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 10.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 4],
            size_dist: size,
            catalog_items: None,
        }),
        requests_per_proxy: 3_000,
        warmup_per_proxy: 600,
    }
}

fn traced(every: u64) -> ObsConfig {
    ObsConfig::on().with_sample_every(1.0).with_flight_capacity(128).with_trace_every(every)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Tracing on must yield the exact report the untraced sequential oracle
/// produces, at every shard count — spans read state, never touch it.
fn assert_tracing_is_invisible(config: &ClusterConfig<'_>, seed: u64, every: u64, label: &str) {
    let oracle = ClusterSim::new(config).run(seed);
    for shards in SHARD_COUNTS {
        let (report, obs) = ClusterSim::new(config).run_observed(seed, shards, &traced(every));
        assert_eq!(report, oracle, "{label}: traced report at {shards} shards vs oracle");
        let store = obs.traces.as_ref().expect("tracing ran");
        assert!(!store.traces.is_empty(), "{label}: {shards} shards sampled nothing");
        assert_eq!(store.every, every.max(1), "{label}: sampling modulus");
    }
}

#[test]
fn tracing_is_invisible_adaptive() {
    assert_tracing_is_invisible(&adaptive_config(None), 13, 4, "adaptive");
}

#[test]
fn tracing_is_invisible_cooperative() {
    assert_tracing_is_invisible(&coop_config(4, 0.0, 1_000), 14, 1, "coop merged");
}

#[test]
fn tracing_is_invisible_on_the_windowed_driver() {
    assert_tracing_is_invisible(&coop_config(4, 0.05, 1_000), 21, 2, "coop windowed");
}

#[test]
fn tracing_is_invisible_static() {
    let size = Exponential::with_mean(1.0);
    assert_tracing_is_invisible(&static_config(&size), 29, 1, "static");
}

/// The merged [`TraceStore`] is bit-identical (derived `PartialEq`, every
/// float exact) at shard counts 1, 2, 4 and 8: per-job sequence numbers
/// make `(trace, seq)` a total order no sharding can disturb.
#[test]
fn traces_are_bit_identical_across_shard_counts() {
    let config = coop_config(8, 0.05, 600);
    let (_, base) = ClusterSim::new(&config).run_observed(35, 1, &traced(2));
    let base = base.traces.expect("tracing ran");
    assert!(base.traces.len() > 10, "base sampled {} traces", base.traces.len());
    for shards in [2, 4, 8] {
        let (_, obs) = ClusterSim::new(&config).run_observed(35, shards, &traced(2));
        let store = obs.traces.expect("tracing ran");
        assert_eq!(store, base, "trace store at {shards} shards vs 1 shard");
    }
}

/// Every extracted trace is structurally sound: segments tile the
/// end-to-end interval exactly (shared boundaries, nothing backwards), so
/// exclusive segment durations sum to the measured latency — latency
/// attribution conserves time by construction, not by luck.
#[test]
fn segments_conserve_end_to_end_latency() {
    let config = coop_config(4, 0.05, 1_200);
    let (report, obs) = ClusterSim::new(&config).run_observed(41, 4, &traced(1));
    let store = obs.traces.expect("tracing ran");
    let mut wasted_legs = 0u64;
    let mut by_class = [0u64; 4];
    for tr in &store.traces {
        tr.check().unwrap_or_else(|e| panic!("ill-formed trace: {e}"));
        assert!(
            close(tr.segment_sum(), tr.latency()),
            "trace {:#x}: segments sum to {} but latency is {}",
            tr.id,
            tr.segment_sum(),
            tr.latency()
        );
        assert!(tr.start <= tr.end, "trace {:#x} runs backwards", tr.id);
        assert!(tr.end <= report.duration, "trace {:#x} outlives the run", tr.id);
        match tr.class {
            TraceClass::Hit => assert_eq!(tr.latency(), 0.0, "hit with nonzero latency"),
            TraceClass::DelayedHit => {
                assert_eq!(tr.segments.len(), 1, "waiter trace has one segment");
                assert_eq!(tr.segments[0].kind, SegKind::Wait);
            }
            TraceClass::Demand => {
                assert!(
                    tr.segments.iter().all(|s| s.kind != SegKind::PendingWait),
                    "demand fetch with a pending-prefetch stall"
                );
            }
            TraceClass::Prefetch => {}
            TraceClass::Failed => panic!("failed trace without a fault plan"),
        }
        if tr.segments.iter().any(|s| s.wasted) {
            wasted_legs += 1;
        }
        by_class[TraceClass::ALL.iter().position(|&c| c == tr.class).unwrap()] += 1;
    }
    // The config exercises every lifecycle.
    for (&c, &n) in TraceClass::ALL.iter().zip(&by_class) {
        assert!(n > 0, "no {} traces sampled", c.name());
    }
    // With every trace sampled, digest false hits (the report counts some
    // in this config) must show up as wasted peer legs.
    let false_hits = report.coop.expect("cooperative run").peer_false_hits;
    assert!(false_hits > 0, "config no longer produces digest false hits");
    assert!(wasted_legs > 0, "{false_hits} false hits but no wasted-leg traces");
}

/// Satellite 2: with `trace_every = 1` the traces are a complete parallel
/// measurement path. Per proxy: class counts reproduce the report's
/// measured-request and hit counters exactly, and the measured demand
/// traces' mean latency equals `mean_retrieval_time` (the report's `r̄`,
/// a Welford mean over the same `deliver − issue` samples) to 1e-9.
fn assert_trace_stats_match_report(config: &ClusterConfig<'_>, seed: u64, label: &str) {
    let (report, obs) = ClusterSim::new(config).run_observed(seed, 2, &traced(1));
    let store = obs.traces.expect("tracing ran");
    let n = report.nodes.len();
    let mut hits = vec![0u64; n];
    let mut delayed = vec![0u64; n];
    let mut demand = vec![0u64; n];
    let mut demand_lat = vec![0.0f64; n];
    for tr in &store.traces {
        if !tr.measured {
            continue;
        }
        let g = tr.proxy as usize;
        match tr.class {
            TraceClass::Hit => hits[g] += 1,
            TraceClass::DelayedHit => delayed[g] += 1,
            TraceClass::Demand => {
                demand[g] += 1;
                demand_lat[g] += tr.latency();
            }
            TraceClass::Prefetch => {}
            TraceClass::Failed => panic!("failed trace without a fault plan"),
        }
    }
    for node in &report.nodes {
        let g = node.proxy;
        let l = format!("{label}: proxy {g}");
        let report_hits = (node.hit_ratio * node.measured_requests.max(1) as f64).round() as u64;
        assert_eq!(hits[g], report_hits, "{l}: hit traces vs hit_ratio");
        assert_eq!(
            hits[g] + delayed[g] + demand[g],
            node.measured_requests,
            "{l}: measured traces vs measured_requests"
        );
        if demand[g] > 0 {
            let mean = demand_lat[g] / demand[g] as f64;
            assert!(
                close(mean, node.mean_retrieval_time),
                "{l}: demand-trace mean {mean} vs r̄ {}",
                node.mean_retrieval_time
            );
        } else {
            assert_eq!(node.mean_retrieval_time, 0.0, "{l}: r̄ without demand fetches");
        }
    }
}

#[test]
fn trace_stats_match_the_report_adaptive() {
    assert_trace_stats_match_report(&adaptive_config(None), 47, "adaptive");
}

#[test]
fn trace_stats_match_the_report_cooperative() {
    assert_trace_stats_match_report(&coop_config(4, 0.05, 1_200), 53, "coop windowed");
}

#[test]
fn trace_stats_match_the_report_byte_budget() {
    assert_trace_stats_match_report(&adaptive_config(Some(24.0)), 59, "byte budget");
}

#[test]
fn trace_stats_match_the_report_static() {
    let size = Exponential::with_mean(1.0);
    assert_trace_stats_match_report(&static_config(&size), 61, "static");
}

/// A latency-bearing adaptive deployment whose fetch windows span later
/// requests — the regime where the MSHR table settles delayed hits.
fn delayed_adaptive_config() -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh_with_latency(4, 60.0, 25.0, 45.0, 0.08),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: (0..4)
                .map(|i| SynthWebConfig {
                    lambda: 24.0 + 4.0 * i as f64,
                    n_items: 160,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 24,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: DelayedHitsConfig::default(),
        }),
        requests_per_proxy: 1_500,
        warmup_per_proxy: 300,
    }
}

fn delayed_static_config(size: &(dyn simcore::dist::Sample + Sync)) -> ClusterConfig<'_> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 25.0, 12.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 14.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 4],
            size_dist: size,
            catalog_items: Some(40),
        }),
        requests_per_proxy: 3_000,
        warmup_per_proxy: 600,
    }
}

/// Satellite 2, delayed-hits half: the trace layer and the MSHR report
/// aggregates are two independent measurement paths over the same waiter
/// settlements. With `trace_every = 1`, per proxy and cluster-wide:
///
/// * measured `DelayedHit` traces equal `delayed_hits` **exactly**;
/// * the mean of their end-to-end latencies (each a single `Wait`
///   segment: join → fetch landing) equals `mean_residual_wait` to 1e-9.
fn assert_delayed_aggregates_match(config: &ClusterConfig<'_>, seed: u64, label: &str) {
    let (report, obs) = ClusterSim::new(config).run_observed(seed, 2, &traced(1));
    let store = obs.traces.expect("tracing ran");
    let n = report.nodes.len();
    let mut delayed = vec![0u64; n];
    let mut residual = vec![0.0f64; n];
    for tr in &store.traces {
        if !tr.measured || tr.class != TraceClass::DelayedHit {
            continue;
        }
        assert_eq!(tr.segments.len(), 1, "{label}: waiter trace has one segment");
        assert_eq!(tr.segments[0].kind, SegKind::Wait);
        delayed[tr.proxy as usize] += 1;
        residual[tr.proxy as usize] += tr.latency();
    }
    for node in &report.nodes {
        let g = node.proxy;
        let l = format!("{label}: proxy {g}");
        let report_delayed = node.delayed_hits.expect("MSHR mode reports delayed_hits");
        assert_eq!(delayed[g], report_delayed, "{l}: DelayedHit traces vs delayed_hits");
        match node.mean_residual_wait {
            Some(mean) => {
                assert!(delayed[g] > 0, "{l}: residual mean without delayed hits");
                let trace_mean = residual[g] / delayed[g] as f64;
                assert!(
                    close(trace_mean, mean),
                    "{l}: Wait-segment mean {trace_mean} vs mean_residual_wait {mean}"
                );
            }
            None => assert_eq!(delayed[g], 0, "{l}: delayed hits without a residual mean"),
        }
    }
    // Cluster-level rollups agree with the same sums.
    let total: u64 = delayed.iter().sum();
    assert!(total > 0, "{label}: config no longer settles delayed hits");
    assert_eq!(report.delayed_hits(), total, "{label}: cluster delayed_hits rollup");
    let mean = residual.iter().sum::<f64>() / total as f64;
    let rollup = report.mean_residual_wait().expect("delayed hits imply a residual mean");
    assert!(close(mean, rollup), "{label}: cluster residual mean {mean} vs rollup {rollup}");
}

#[test]
fn delayed_hit_aggregates_match_the_traces_adaptive() {
    assert_delayed_aggregates_match(&delayed_adaptive_config(), 73, "delayed adaptive");
}

#[test]
fn delayed_hit_aggregates_match_the_traces_static() {
    let size = Exponential::with_mean(1.0);
    assert_delayed_aggregates_match(&delayed_static_config(&size), 79, "delayed static");
}

/// The trace-derived registry aggregates and both JSON artifacts agree
/// with the store they were computed from.
#[test]
fn attribution_aggregates_and_artifacts_are_consistent() {
    let config = coop_config(4, 0.05, 1_000);
    let (_, obs) = ClusterSim::new(&config).run_observed(67, 2, &traced(2));
    let store = obs.traces.as_ref().expect("tracing ran");

    // Registry counters mirror the per-class attribution.
    for a in obs.attribution() {
        let name = format!("trace.count.{}", a.class.name());
        assert_eq!(obs.registry.counter_value(&name), a.traces, "{name}");
    }
    let lat = obs.registry.dist_stats("trace.latency").expect("trace.latency dist");
    assert_eq!(lat.moments.count(), store.traces.len() as u64);
    let segs: u64 = store.traces.iter().map(|t| t.segments.len() as u64).sum();
    let seg_count: u64 = simcore::trace::BUCKETS
        .iter()
        .filter_map(|b| obs.registry.dist_stats(&format!("trace.seg.{b}")))
        .map(|d| d.moments.count())
        .sum();
    assert_eq!(seg_count, segs, "per-bucket segment dists cover every segment");

    // Chrome export: one summary slice per trace plus one per segment,
    // all complete ("X") events; parses back through the codec.
    let chrome = store.chrome_json();
    let events = chrome.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert_eq!(events.len() as u64, store.traces.len() as u64 + segs);
    assert!(events.iter().all(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
    assert!(Json::parse(&chrome.render()).is_ok());

    // The obs artifact carries the summary section.
    let parsed = Json::parse(&obs.to_json().render()).expect("obs json parses");
    let trace = parsed.get("trace").expect("trace section");
    assert_eq!(trace.get("traces").and_then(Json::as_f64), Some(store.traces.len() as f64));
    assert_eq!(trace.get("sample_every").and_then(Json::as_f64), Some(2.0));

    // Top-K is sorted slowest-first.
    let top = store.top_k_slowest(10);
    assert!(top.windows(2).all(|w| w[0].latency() >= w[1].latency()));
}

/// Leaving `trace_every` at 0 (the default, even under `ObsConfig::on()`)
/// keeps the store absent and the aggregates unregistered.
#[test]
fn tracing_off_leaves_no_store() {
    let config = adaptive_config(None);
    let (_, obs) =
        ClusterSim::new(&config).run_observed(13, 2, &ObsConfig::on().with_sample_every(1.0));
    assert!(obs.traces.is_none());
    assert!(obs.attribution().is_empty());
    assert_eq!(obs.registry.counter_value("trace.count.demand"), 0);
    assert!(obs.registry.dist_stats("trace.latency").is_none());
}

/// Head sampling is a per-trace-id filter: the `every = 4` store is the
/// restriction of the `every = 1` store to the sampled ids, trace for
/// trace (same extraction, same floats).
#[test]
fn sampled_store_is_a_restriction_of_the_full_store() {
    let config = coop_config(4, 0.05, 800);
    let (_, full) = ClusterSim::new(&config).run_observed(71, 2, &traced(1));
    let (_, thin) = ClusterSim::new(&config).run_observed(71, 2, &traced(4));
    let full = full.traces.expect("tracing ran");
    let thin = thin.traces.expect("tracing ran");
    assert!(thin.traces.len() < full.traces.len(), "sampling thinned nothing");
    for tr in &thin.traces {
        assert_eq!(tr.id % 4, 0, "unsampled id {:#x} admitted", tr.id);
        let twin = full
            .traces
            .iter()
            .find(|t| t.id == tr.id)
            .unwrap_or_else(|| panic!("trace {:#x} missing from the full store", tr.id));
        assert_eq!(tr, twin, "trace {:#x} differs under sampling", tr.id);
    }
    let expect = full.traces.iter().filter(|t| t.id % 4 == 0).count();
    assert_eq!(thin.traces.len(), expect, "restriction is exact");
}
