//! Old-vs-new engine parity, and the timing/accounting regressions the
//! scheduler rewrite fixed.
//!
//! The indexed-scheduler drivers (`closed_loop::run`, `static_mode::run`)
//! and the retired scan drivers (`cluster::legacy`) share one handler
//! core; the only thing that changed is event *selection*. These tests pin
//! that the selection rewrite is observationally invisible: full
//! [`ClusterReport`] equality to 1e-12 on E13-shaped adaptive and
//! E14-shaped cooperative configurations (and the open-loop mode), across
//! seeds.

use cluster::parity::assert_reports_match;
use cluster::{
    legacy, AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload,
    ProxyPolicy, StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy};
use simcore::dist::Exponential;
use workload::synth_web::SynthWebConfig;

/// The E13-shaped adaptive deployment: 3 proxies over 2 origin shards,
/// heterogeneous local load, oracle candidates, jittered prefetch pacing.
fn e13_adaptive_config(policy: ProxyPolicy) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::sharded_origin(3, 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: [8.0, 18.0, 30.0]
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 12_000,
        warmup_per_proxy: 2_400,
    }
}

/// The E14-shaped cooperative deployment: 3-proxy peer mesh, identical
/// item universes, short digest epoch, load-aware placement.
fn e14_coop_config(epoch: f64) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh(3, 50.0, 70.0, 45.0),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..3)
                    .map(|_| SynthWebConfig {
                        lambda: 14.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 10_000,
        warmup_per_proxy: 2_000,
    }
}

#[test]
fn adaptive_engine_parity_old_vs_new() {
    for seed in [13u64, 71] {
        let config = e13_adaptive_config(ProxyPolicy::Adaptive);
        let new = ClusterSim::new(&config).run(seed);
        let old = legacy::run(&config, seed);
        assert_reports_match(&new, &old, &format!("adaptive seed {seed}"));
    }
    // The no-prefetch baseline exercises the request path alone.
    let config = e13_adaptive_config(ProxyPolicy::NoPrefetch);
    let new = ClusterSim::new(&config).run(13);
    let old = legacy::run(&config, 13);
    assert_reports_match(&new, &old, "no-prefetch");
}

#[test]
fn cooperative_engine_parity_old_vs_new() {
    for (seed, epoch) in [(14u64, 2.0), (77, 0.5)] {
        let config = e14_coop_config(epoch);
        let new = ClusterSim::new(&config).run(seed);
        let old = legacy::run(&config, seed);
        assert_reports_match(&new, &old, &format!("coop seed {seed} epoch {epoch}"));
    }
}

#[test]
fn static_engine_parity_old_vs_new() {
    let size = Exponential::with_mean(1.0);
    let config = ClusterConfig {
        topology: Topology::sharded_origin(3, 2, 25.0, 30.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 10.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 3],
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 20_000,
        warmup_per_proxy: 4_000,
    };
    for seed in [13u64, 29] {
        let new = ClusterSim::new(&config).run(seed);
        let old = legacy::run(&config, seed);
        assert_reports_match(&new, &old, &format!("static seed {seed}"));
    }
}

/// Digest refresh is a first-class event on the epoch grid: the number of
/// epochs is exactly `floor(duration / epoch)`, not whatever the drift of
/// rescheduling from straddling events produced.
#[test]
fn digest_epochs_match_the_grid_exactly() {
    for epoch in [0.5, 2.0, 8.0] {
        let config = e14_coop_config(epoch);
        let report = ClusterSim::new(&config).run(21);
        let epochs = report.coop.expect("coop counters").router.digest_epochs;
        let expected = (report.duration / epoch).floor() as u64;
        assert_eq!(
            epochs, expected,
            "epoch {epoch}: {epochs} refreshes over duration {} (expected {expected})",
            report.duration
        );
    }
}

/// The already-cached branch of the pending-prefetch event is unreachable
/// (the in-flight marker reserves the item from decision time to
/// completion), so no waiter can ever be dropped there. The engine
/// debug-asserts the branch is never taken; this test drives the jittered
/// prefetch path hard — long pacing delays maximise the window between a
/// prefetch decision and its issue — and must complete without tripping
/// the assertion.
#[test]
fn pending_prefetch_never_finds_item_cached() {
    let config = ClusterConfig {
        topology: Topology::two_tier(2, 40.0, 60.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: vec![
                SynthWebConfig { lambda: 25.0, link_skew: 0.3, ..SynthWebConfig::default() },
                SynthWebConfig { lambda: 12.0, link_skew: 0.3, ..SynthWebConfig::default() },
            ],
            cache_capacity: 16,
            cache_bytes: None,
            max_candidates: 4,
            // Pacing delay ~12x the mean inter-request gap of the busy
            // proxy: many demands race each pending prefetch.
            prefetch_jitter: 0.5,
            policy: ProxyPolicy::FixedThreshold(0.05),
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 15_000,
        warmup_per_proxy: 3_000,
    };
    for seed in 0..4u64 {
        let report = ClusterSim::new(&config).run(seed);
        assert!(report.mean_access_time.is_finite());
    }
}

/// Goodput accounting is per distinct prefetched entry, so the old
/// `min(used, prefetched)` clamp is gone: goodput + badput reconstructs
/// the prefetched volume exactly, and goodput never exceeds it.
#[test]
fn goodput_plus_badput_conserves_prefetched_bytes() {
    let config = e13_adaptive_config(ProxyPolicy::Adaptive);
    let report = ClusterSim::new(&config).run(5);
    let mut prefetched_any = false;
    for node in &report.nodes {
        let good = node.goodput_bytes.expect("adaptive mode reports goodput");
        let bad = node.badput_bytes.expect("adaptive mode reports badput");
        assert!(good >= 0.0 && bad >= 0.0);
        let total = good + bad;
        if node.prefetches_per_request > 0.0 {
            prefetched_any = true;
            assert!(total > 0.0, "proxy {}: prefetched but no volume", node.proxy);
            assert!(
                good <= total * (1.0 + 1e-9),
                "proxy {}: goodput {good} exceeds prefetched volume {total}",
                node.proxy
            );
        } else {
            assert_eq!(total, 0.0);
        }
    }
    assert!(prefetched_any, "adaptive policy never prefetched");

    // Cooperative runs pay false-hit fallbacks on prefetch transfers too;
    // the conservation identity must survive the double-path costs.
    let coop = ClusterSim::new(&e14_coop_config(2.0)).run(3);
    for node in &coop.nodes {
        let good = node.goodput_bytes.unwrap();
        let bad = node.badput_bytes.unwrap();
        assert!(good >= 0.0 && bad >= 0.0);
    }
}
