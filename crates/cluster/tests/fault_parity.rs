//! Determinism contracts of the fault-injection layer (the E22 tentpole).
//!
//! Two pinned properties, both structural `assert_eq!` on the derived
//! `PartialEq` — every float bit-exact, no tolerance:
//!
//! * **Empty plan ⇒ zero perturbation.** `run_faulted` with
//!   `FaultConfig::default()` is bit-identical to the unfaulted run on
//!   every engine and every shard count: the fault machinery adds no RNG
//!   draws, float operations, or event reorderings until a fault fires.
//! * **Sharding-independence under faults.** A non-trivial plan — link
//!   flaps, degradation loss, proxy crashes, digest losses, origin
//!   brownouts and blackouts, retries and failovers — produces the same
//!   report (and the same traces) at shard counts 1, 2, 4, and 8.
//!
//! Plus the satellite invariants: the MSHR conservation law
//! `origin_fetches + coalesced + failed == demand_misses` holds under
//! every fault mix; retries degrade gracefully where no-retries collapse;
//! crash recovery forces a snapshot refresh; and the capped-exponential
//! backoff schedule is deterministic, monotone, and jitter-bounded
//! (property-tested).

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload, ProxyPolicy,
    StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy, RefreshStrategy};
use proptest::prelude::*;
use simcore::dist::Exponential;
use simcore::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
use simcore::trace::TraceClass;
use simcore::ObsConfig;
use workload::synth_web::SynthWebConfig;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn coop_config(n: usize, latency: f64, requests: usize) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh_with_latency(n, 50.0, 150.0, 45.0, latency),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n)
                    .map(|_| SynthWebConfig {
                        lambda: 12.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                refresh: RefreshStrategy::Deltas,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: requests / 5,
    }
}

fn adaptive_config() -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 45.0, 80.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: [8.0, 18.0, 30.0, 11.0]
                .iter()
                .map(|&lambda| SynthWebConfig {
                    lambda,
                    link_skew: 0.3,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 1_200,
        warmup_per_proxy: 240,
    }
}

fn static_config(size: &(dyn simcore::dist::Sample + Sync)) -> ClusterConfig<'_> {
    ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 25.0, 12.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 14.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 4],
            size_dist: size,
            catalog_items: Some(40),
        }),
        requests_per_proxy: 3_000,
        warmup_per_proxy: 600,
    }
}

/// A plan exercising every fault kind: flapping links, a degraded lossy
/// link, a proxy crash, a digest loss, and an origin brownout followed by
/// a short blackout.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            t: 4.0,
            kind: FaultKind::LinkDegrade { link: 0, loss: 0.4, latency_factor: 2.0 },
        },
        FaultEvent { t: 8.0, kind: FaultKind::LinkDown { link: 1 } },
        FaultEvent { t: 12.0, kind: FaultKind::LinkUp { link: 1 } },
        FaultEvent { t: 14.0, kind: FaultKind::OriginBrownout { delay: 0.3 } },
        FaultEvent { t: 18.0, kind: FaultKind::ProxyCrash { proxy: 1 } },
        FaultEvent { t: 22.0, kind: FaultKind::DigestLoss { proxy: 2 } },
        FaultEvent { t: 26.0, kind: FaultKind::OriginBlackout },
        FaultEvent { t: 29.0, kind: FaultKind::OriginRestore },
        FaultEvent { t: 32.0, kind: FaultKind::LinkUp { link: 0 } },
    ])
}

fn chaos_config() -> FaultConfig {
    FaultConfig { plan: chaos_plan(), retry: RetryPolicy::default() }
}

/// Empty plan, every engine, every shard count: bit-identical to the
/// unfaulted run — `assert_eq!` on the full report, no tolerance.
#[test]
fn empty_plan_is_bit_identical_to_the_unfaulted_run() {
    let size = Exponential::with_mean(1.0);
    let configs: [(&str, ClusterConfig<'_>); 3] = [
        ("coop", coop_config(4, 0.05, 800)),
        ("adaptive", adaptive_config()),
        ("static", static_config(&size)),
    ];
    let empty = FaultConfig::default();
    for (label, config) in &configs {
        let sim = ClusterSim::new(config);
        for shards in SHARD_COUNTS {
            let oracle = sim.run_sharded(17, shards);
            let faulted = sim.run_faulted(17, shards, &empty);
            assert_eq!(faulted, oracle, "{label}: empty plan at {shards} shards");
        }
    }
}

/// A non-trivial plan is bit-identical across shard counts on the
/// cooperative mesh (both drivers: the windowed one engages at > 1 shard
/// with positive lookahead).
#[test]
fn fault_runs_are_bit_identical_across_shard_counts() {
    let config = coop_config(8, 0.05, 700);
    let fc = chaos_config();
    let sim = ClusterSim::new(&config);
    let base = sim.run_faulted(23, 1, &fc);
    // The plan actually bites: failures, retries, and a crash all fire.
    assert!(base.failed_fetches() > 0, "plan produced no failures");
    assert!(base.retries() > 0, "plan produced no retries");
    assert!(base.nodes[1].lost_entries > 0, "crash wiped nothing");
    for shards in [2, 4, 8] {
        let report = sim.run_faulted(23, shards, &fc);
        assert_eq!(report, base, "chaos plan at {shards} shards vs 1 shard");
    }
}

/// The same contract on the other two engines (origin-only routes).
#[test]
fn fault_runs_are_shard_independent_on_every_engine() {
    let size = Exponential::with_mean(1.0);
    let fc = chaos_config();
    for (label, config) in [("adaptive", adaptive_config()), ("static", static_config(&size))] {
        let sim = ClusterSim::new(&config);
        let base = sim.run_faulted(31, 1, &fc);
        assert!(base.failed_fetches() > 0, "{label}: plan produced no failures");
        for shards in [2, 4, 8] {
            assert_eq!(sim.run_faulted(31, shards, &fc), base, "{label} at {shards} shards");
        }
    }
}

/// Traces under faults: bit-identical stores across shard counts, every
/// trace still tiles its latency exactly (now with `Timeout`/`Backoff`
/// segments), and failed fetches surface as `TraceClass::Failed`.
#[test]
fn fault_traces_are_bit_identical_and_conservative() {
    let config = coop_config(4, 0.05, 700);
    let fc = chaos_config();
    let probes = ObsConfig::on().with_sample_every(1.0).with_trace_every(1);
    let sim = ClusterSim::new(&config);
    let (report, base) = sim.run_faulted_observed(37, 1, &fc, &probes);
    let base = base.traces.expect("tracing ran");
    let mut failed = 0u64;
    for tr in &base.traces {
        tr.check().unwrap_or_else(|e| panic!("ill-formed trace: {e}"));
        let close = (tr.segment_sum() - tr.latency()).abs() <= 1e-9 * tr.latency().abs().max(1.0);
        assert!(
            close,
            "trace {:#x}: segments {} vs latency {}",
            tr.id,
            tr.segment_sum(),
            tr.latency()
        );
        if tr.class == TraceClass::Failed {
            failed += 1;
        }
    }
    assert!(failed > 0, "no failed traces despite {} failed fetches", report.failed_fetches());
    for shards in [2, 4] {
        let (_, obs) = sim.run_faulted_observed(37, shards, &fc, &probes);
        assert_eq!(obs.traces.expect("tracing ran"), base, "trace store at {shards} shards");
    }
}

/// The MSHR conservation law survives every fault mix, on both engines
/// with a table — checked from the report in release builds (the engines
/// also debug-assert it at report time).
#[test]
fn mshr_conservation_holds_under_faults() {
    let fc = chaos_config();
    let coop = coop_config(4, 0.05, 800);
    let report = ClusterSim::new(&coop).run_faulted(41, 2, &fc);
    assert!(report.failed_fetches() > 0, "coop: plan produced no failures");
    assert!(report.mshr_conservation_ok(), "coop: conservation law violated");

    let size = Exponential::with_mean(1.0);
    let catalog = static_config(&size);
    let report = ClusterSim::new(&catalog).run_faulted(43, 2, &fc);
    assert!(report.failed_fetches() > 0, "static: plan produced no failures");
    assert!(report.mshr_conservation_ok(), "static: conservation law violated");
}

/// Retries buy graceful degradation: on a lossy mesh, the retry policy
/// keeps unavailability strictly below the no-retries collapse, at the
/// cost of a visible retry count.
#[test]
fn retries_degrade_gracefully_where_no_retries_collapse() {
    let config = coop_config(4, 0.05, 800);
    // Every link lossy for the whole run.
    let n_links = config.topology.links().len();
    let plan = FaultPlan::new(
        (0..n_links)
            .map(|l| FaultEvent {
                t: 0.0,
                kind: FaultKind::LinkDegrade { link: l, loss: 0.25, latency_factor: 1.0 },
            })
            .collect(),
    );
    let with_retries = FaultConfig { plan: plan.clone(), retry: RetryPolicy::default() };
    let without = FaultConfig { plan, retry: RetryPolicy::no_retries(1.0) };
    let sim = ClusterSim::new(&config);
    let graceful = sim.run_faulted(47, 2, &with_retries);
    let collapsed = sim.run_faulted(47, 2, &without);
    assert!(graceful.retries() > 0, "lossy links provoked no retries");
    // The gap is material, not marginal: the retry budget claws back a
    // decent fraction of the loss. It does not vanish entirely, because
    // demand requests that coalesce onto an in-flight *prefetch* inherit
    // its single-attempt fate — speculative fetches are never worth a
    // retry budget, so aggressive prefetching widens the failure surface
    // (the interaction E22 sweeps).
    assert!(
        graceful.unavailability() < 0.85 * collapsed.unavailability(),
        "retries ({}) did not materially improve on no-retries ({})",
        graceful.unavailability(),
        collapsed.unavailability()
    );
    assert!(collapsed.unavailability() > 0.10, "no-retries run did not collapse");
}

/// A crash forces the victim's next digest refresh to ship a full
/// snapshot (the delta stream died with the node) even under the
/// pure-deltas strategy, and the wiped entries are reported.
#[test]
fn crash_recovery_forces_a_snapshot_refresh() {
    let config = coop_config(4, 0.05, 800);
    let fc = FaultConfig {
        plan: FaultPlan::new(vec![FaultEvent {
            t: 20.0,
            kind: FaultKind::ProxyCrash { proxy: 2 },
        }]),
        retry: RetryPolicy::default(),
    };
    let report = ClusterSim::new(&config).run_faulted(53, 2, &fc);
    assert!(report.nodes[2].lost_entries > 0, "crash wiped no entries");
    let coop = report.coop.expect("cooperative run");
    assert!(
        coop.router.snapshot_flushes >= 1,
        "no snapshot refresh after the crash (got {} under pure deltas)",
        coop.router.snapshot_flushes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The capped-exponential backoff schedule: `attempts` is the retry
    /// budget plus the initial try; the nominal curve is monotone
    /// non-decreasing and clamped at the cap; the jittered draw is a pure
    /// function of `(seed, job, attempt)` landing in `[½·nominal,
    /// nominal)`.
    #[test]
    fn backoff_schedule_is_deterministic_monotone_and_bounded(
        timeout in 0.1f64..5.0,
        base in 0.01f64..2.0,
        cap_mult in 1.0f64..8.0,
        max_retries in 0u32..6,
        seed in any::<u64>(),
        job in any::<u64>(),
    ) {
        let rp = RetryPolicy {
            timeout,
            max_retries,
            backoff_base: base,
            backoff_cap: base * cap_mult,
        };
        rp.validate();
        prop_assert_eq!(rp.attempts(), max_retries + 1);
        let mut prev = 0.0f64;
        for k in 0..max_retries {
            let nominal = rp.nominal_backoff(k);
            prop_assert!(nominal <= rp.backoff_cap, "nominal {} above cap", nominal);
            prop_assert!(nominal >= prev, "nominal curve not monotone");
            prev = nominal;
            let b = rp.backoff(seed, job, k);
            prop_assert_eq!(b, rp.backoff(seed, job, k), "backoff not deterministic");
            prop_assert!(
                b >= 0.5 * nominal && b < nominal,
                "backoff {} outside [{}, {})", b, 0.5 * nominal, nominal
            );
        }
    }
}
