//! Record-then-replay determinism for the streaming trace pipeline.
//!
//! The contract this suite pins, with derived `PartialEq` and no
//! tolerance anywhere:
//!
//! * a synthetic adaptive run recorded via [`ClusterSim::run_recorded`]
//!   and replayed through [`Workload::Trace`] on the same topology,
//!   seed, and knobs reproduces the source [`ClusterReport`]
//!   **bit-for-bit**, at every shard count in {1, 2, 4, 8};
//! * the recorded trace itself is invariant under sharding — the merge
//!   order (time, source proxy, per-proxy sequence) does not depend on
//!   how the mesh was partitioned;
//! * replay never materialises the trace: peak resident trace bytes per
//!   stream stay pinned at one chunk even when the trace is more than
//!   100× the chunk size;
//! * static-mode recordings encode to valid `.events` bytes, and scaled
//!   superpositions replay cleanly through a bigger mesh.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, DelayedHitsConfig, ProxyPolicy,
    StaticProxy, StaticWorkload, Topology, TraceSource, TraceWorkload, Workload,
};
use simcore::dist::Exponential;
use workload::events::{encode_events, RECORD_BYTES};
use workload::synth_web::SynthWebConfig;
use workload::TraceScaler;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The recording side: a latency mesh under the adaptive engine with a
/// learned (Markov) predictor — the only candidate source a trace can
/// replay, since oracle candidates need the generating chain.
fn source_workload(n: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n)
            .map(|i| SynthWebConfig {
                lambda: 18.0 + 3.0 * i as f64,
                n_items: 120,
                link_skew: 0.25,
                ..SynthWebConfig::default()
            })
            .collect(),
        cache_capacity: 24,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Markov1,
        shared_structure_seed: None,
        delayed: DelayedHitsConfig::default(),
    }
}

fn source_config(n: usize, requests: usize, warmup: usize) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh_with_latency(n, 60.0, 20.0 * n as f64, 45.0, 0.05),
        workload: Workload::Adaptive(source_workload(n)),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    }
}

/// Record once, replay at every shard count: every replayed report must
/// equal the source report bit-for-bit (derived `PartialEq`, full report
/// tree — nodes, links, coop, aggregates).
#[test]
fn record_then_replay_is_bit_identical() {
    let n = 4;
    let (requests, warmup) = (2_500, 500);
    let config = source_config(n, requests, warmup);
    let (source_report, trace) = ClusterSim::new(&config).run_recorded(11, 2);
    assert_eq!(trace.len(), n * requests, "one record per issued request");

    let source = TraceSource::from_records(&trace).expect("recorded trace encodes");
    let replay_config = ClusterConfig {
        topology: config.topology.clone(),
        workload: Workload::Trace(TraceWorkload::replaying(&source_workload(n), source)),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    for shards in SHARD_COUNTS {
        let (replayed, stats) = ClusterSim::new(&replay_config).run_replayed(11, shards);
        assert_eq!(
            replayed, source_report,
            "replayed report at {shards} shards differs from the recorded source run"
        );
        assert_eq!(
            stats.records_replayed,
            (n * requests) as u64,
            "replay at {shards} shards must consume the whole trace"
        );
    }
}

/// Recording itself must be shard-invariant: same report as the plain
/// sharded run, same merged trace at every shard count.
#[test]
fn recording_is_shard_invariant() {
    let config = source_config(4, 1_500, 300);
    let oracle_report = ClusterSim::new(&config).run(13);
    let (r1, t1) = ClusterSim::new(&config).run_recorded(13, 1);
    assert_eq!(r1, oracle_report, "recording must not perturb the run");
    for shards in &SHARD_COUNTS[1..] {
        let (r, t) = ClusterSim::new(&config).run_recorded(13, *shards);
        assert_eq!(r, oracle_report, "recorded report differs at {shards} shards");
        assert_eq!(t, t1, "merged trace differs at {shards} shards");
    }
}

/// The O(chunk) pin: replaying a trace more than 100× the chunk size,
/// each proxy's stream never holds more than one chunk of records
/// resident.
#[test]
fn replay_memory_stays_chunk_bounded() {
    let n = 4;
    let (requests, warmup) = (13_000, 1_000);
    let chunk = 512usize;
    let config = source_config(n, requests, warmup);
    let (_, trace) = ClusterSim::new(&config).run_recorded(17, 4);
    assert!(
        trace.len() >= 100 * chunk,
        "need a trace >= 100x the chunk to make the pin meaningful, got {} records",
        trace.len()
    );

    let mut workload = TraceWorkload::replaying(
        &source_workload(n),
        TraceSource::from_records(&trace).expect("recorded trace encodes"),
    );
    workload.chunk_records = chunk;
    let replay_config = ClusterConfig {
        topology: config.topology.clone(),
        workload: Workload::Trace(workload),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    };
    let (_, stats) = ClusterSim::new(&replay_config).run_replayed(17, 4);
    assert_eq!(stats.records_replayed, (n * requests) as u64);
    assert!(
        stats.peak_resident_bytes <= chunk * RECORD_BYTES,
        "peak resident trace bytes {} exceed one {}-record chunk ({} bytes)",
        stats.peak_resident_bytes,
        chunk,
        chunk * RECORD_BYTES
    );
    assert!(stats.peak_resident_bytes > 0, "replay must have read something");
}

/// Static-mode recordings — hits tagged with the sentinel item — encode
/// to valid `.events` bytes and round-trip through the streaming reader.
#[test]
fn static_recording_encodes_valid_events() {
    let size = Exponential::with_mean(1.0);
    let config = ClusterConfig {
        topology: Topology::sharded_origin(4, 2, 25.0, 12.0),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: 12.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }; 4],
            size_dist: &size,
            catalog_items: Some(40),
        }),
        requests_per_proxy: 2_000,
        warmup_per_proxy: 400,
    };
    let (_, trace) = ClusterSim::new(&config).run_recorded(19, 2);
    assert_eq!(trace.len(), 4 * 2_000);
    let bytes = encode_events(&trace).expect("static recording encodes");
    let decoded: Vec<_> = workload::TraceStream::open(&bytes[..])
        .expect("header parses")
        .collect::<Result<_, _>>()
        .expect("records validate");
    assert_eq!(decoded, trace, "static recording must stream-decode to itself");
}

/// A scaled superposition (disjoint key spaces, dilated copies) replays
/// cleanly through a mesh with one proxy per folded client lane.
#[test]
fn scaled_trace_replays_cleanly() {
    let n = 2;
    let (requests, warmup) = (800, 160);
    let config = source_config(n, requests, warmup);
    let (_, trace) = ClusterSim::new(&config).run_recorded(23, 1);

    let scaler = TraceScaler {
        copies: 4,
        dilation_step: 0.25,
        key_stride: 1 << 32,
        client_stride: n as u32,
    };
    let scaled = scaler.scale_records(&trace);
    assert_eq!(scaled.len(), 4 * trace.len());

    // Folded client ids spread unevenly over the bigger mesh, so give
    // every proxy headroom to drain whatever share routes to it: the
    // engine stops when its lane of the trace runs dry.
    let big = n * scaler.copies as usize;
    let replay_config = ClusterConfig {
        topology: Topology::mesh_with_latency(big, 60.0, 20.0 * big as f64, 45.0, 0.05),
        workload: Workload::Trace(TraceWorkload::replaying(
            &source_workload(big),
            TraceSource::from_records(&scaled).expect("scaled trace encodes"),
        )),
        requests_per_proxy: scaled.len(),
        warmup_per_proxy: warmup,
    };
    for shards in [1, 4] {
        let (report, stats) = ClusterSim::new(&replay_config).run_replayed(29, shards);
        assert_eq!(stats.records_replayed, scaled.len() as u64);
        assert!(report.mean_access_time.is_finite());
        let one = ClusterSim::new(&replay_config).run_replayed(29, 1).0;
        assert_eq!(report, one, "scaled replay must stay shard-invariant");
    }
}
