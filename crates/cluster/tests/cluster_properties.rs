//! Integration properties of the cluster simulator: parity with the
//! validated single-path simulator, determinism, and the multi-node
//! phenomena the topology exists to expose.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload, ProxyPolicy,
    StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::{CoopConfig, DigestConfig, PlacementPolicy};
use netsim::parametric::{self, ParametricConfig};
use prefetch_core::SystemParams;
use simcore::dist::Exponential;
use workload::synth_web::SynthWebConfig;

fn single_node_config<'a>(
    params: SystemParams,
    n_f: f64,
    p: f64,
    size_dist: &'a Exponential,
    requests: usize,
    warmup: usize,
) -> ClusterConfig<'a> {
    ClusterConfig {
        topology: Topology::single(params.bandwidth),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![StaticProxy { lambda: params.lambda, h_prime: params.h_prime, n_f, p }],
            size_dist,
            catalog_items: None,
        }),
        requests_per_proxy: requests,
        warmup_per_proxy: warmup,
    }
}

/// The degenerate single-proxy, single-link topology reproduces
/// `netsim::parametric` within 1e-6 — across a grid of prefetch volumes,
/// probabilities, cache ratios, and seeds (the cluster engine makes the
/// same draws in the same order, so the match is effectively bit-exact).
#[test]
fn degenerate_topology_matches_parametric() {
    const REQUESTS: usize = 60_000;
    const WARMUP: usize = 10_000;
    let size = Exponential::with_mean(1.0);
    for (h_prime, n_f, p, seed) in
        [(0.0, 0.0, 0.0, 1u64), (0.0, 1.0, 0.9, 3), (0.3, 0.5, 0.8, 8), (0.3, 1.5, 0.6, 21)]
    {
        let params = SystemParams::new(30.0, 50.0, 1.0, h_prime).unwrap();
        let pconfig = ParametricConfig {
            params,
            n_f,
            p,
            size_dist: &size,
            requests: REQUESTS,
            warmup: WARMUP,
        };
        let expected = parametric::run(&pconfig, seed);

        let cconfig = single_node_config(params, n_f, p, &size, REQUESTS, WARMUP);
        let report = ClusterSim::new(&cconfig).run(seed);
        let node = &report.nodes[0];

        let tol = 1e-6;
        assert!(
            (report.links[0].utilisation - expected.utilisation).abs() < tol,
            "rho: cluster {} vs parametric {} (h'={h_prime} nf={n_f} p={p} seed={seed})",
            report.links[0].utilisation,
            expected.utilisation
        );
        assert!(
            (node.mean_access_time - expected.mean_access_time).abs() < tol,
            "t̄: cluster {} vs parametric {}",
            node.mean_access_time,
            expected.mean_access_time
        );
        assert!((node.hit_ratio - expected.hit_ratio).abs() < tol);
        assert!((node.mean_retrieval_time - expected.mean_retrieval_time).abs() < tol);
        assert!((node.retrieval_per_request - expected.retrieval_per_request).abs() < tol);
        assert_eq!(node.measured_requests, expected.measured_requests);
    }
}

/// Same seed ⇒ structurally identical report, in both engines.
#[test]
fn same_seed_identical_report() {
    let size = Exponential::with_mean(1.0);
    let params = SystemParams::paper_figure2(0.3);
    let cfg = single_node_config(params, 0.5, 0.8, &size, 20_000, 2_000);
    let sim = ClusterSim::new(&cfg);
    assert_eq!(sim.run(42), sim.run(42));
    assert_ne!(sim.run(42), sim.run(43), "different seeds must differ");

    let adaptive = ClusterConfig {
        topology: Topology::sharded_origin(3, 2, 40.0, 90.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: (0..3)
                .map(|i| SynthWebConfig {
                    lambda: 10.0 + 8.0 * i as f64,
                    ..SynthWebConfig::default()
                })
                .collect(),
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 12_000,
        warmup_per_proxy: 3_000,
    };
    let sim = ClusterSim::new(&adaptive);
    assert_eq!(sim.run(7), sim.run(7));
}

/// Sharing a backbone costs: the same per-proxy load over a shared hop has
/// strictly worse access times than over private links of that capacity —
/// the cluster generalisation of the paper's §5 load impedance.
#[test]
fn shared_backbone_impedes() {
    let size = Exponential::with_mean(1.0);
    let proxies = vec![
        StaticProxy { lambda: 15.0, h_prime: 0.0, n_f: 0.5, p: 0.8 },
        StaticProxy { lambda: 15.0, h_prime: 0.0, n_f: 0.5, p: 0.8 },
    ];
    let private = ClusterConfig {
        topology: Topology::star(2, 50.0),
        workload: Workload::Static(StaticWorkload {
            proxies: proxies.clone(),
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 40_000,
        warmup_per_proxy: 8_000,
    };
    // Same access capacity, but the second hop is shared by both proxies.
    let shared = ClusterConfig {
        topology: Topology::two_tier(2, 50.0, 50.0),
        workload: Workload::Static(StaticWorkload {
            proxies,
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 40_000,
        warmup_per_proxy: 8_000,
    };
    let r_private = ClusterSim::new(&private).run(11);
    let r_shared = ClusterSim::new(&shared).run(11);
    assert!(
        r_shared.mean_access_time > r_private.mean_access_time,
        "shared backbone {} must be slower than private links {}",
        r_shared.mean_access_time,
        r_private.mean_access_time
    );
    // The backbone carries both proxies' traffic: roughly double one
    // uplink's utilisation.
    let backbone = r_shared.link("backbone").unwrap().utilisation;
    let access = r_shared.link("access[0]").unwrap().utilisation;
    assert!(backbone > 1.6 * access, "backbone {backbone} vs access {access}");
}

/// Adaptive mode: proxies under different local load converge to different
/// thresholds, ordered by their local `ρ̂′`.
#[test]
fn adaptive_thresholds_diverge_with_local_load() {
    let config = ClusterConfig {
        topology: Topology::star(2, 45.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: vec![
                SynthWebConfig { lambda: 8.0, ..SynthWebConfig::default() },
                SynthWebConfig { lambda: 28.0, ..SynthWebConfig::default() },
            ],
            cache_capacity: 32,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy: ProxyPolicy::Adaptive,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 30_000,
        warmup_per_proxy: 6_000,
    };
    let report = ClusterSim::new(&config).run(5);
    let lo = report.nodes[0].mean_threshold.expect("threshold at proxy 0");
    let hi = report.nodes[1].mean_threshold.expect("threshold at proxy 1");
    assert!(hi > lo * 1.5, "loaded proxy's threshold {hi} should clearly exceed idle proxy's {lo}");
    let rho_lo = report.nodes[0].rho_prime_estimate.unwrap();
    let rho_hi = report.nodes[1].rho_prime_estimate.unwrap();
    assert!(rho_hi > rho_lo, "ρ̂′ ordering: {rho_hi} vs {rho_lo}");
}

/// Prefetch byte accounting is conserved in adaptive mode: goodput +
/// badput equals what was prefetched, and no-prefetch runs move no
/// speculative bytes.
#[test]
fn adaptive_byte_accounting() {
    let mk = |policy| ClusterConfig {
        topology: Topology::two_tier(2, 60.0, 100.0),
        workload: Workload::Adaptive(AdaptiveWorkload {
            proxies: vec![
                SynthWebConfig { lambda: 20.0, link_skew: 0.3, ..SynthWebConfig::default() },
                SynthWebConfig { lambda: 12.0, link_skew: 0.3, ..SynthWebConfig::default() },
            ],
            cache_capacity: 24,
            cache_bytes: None,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            policy,
            predictor: CandidateSource::Oracle,
            shared_structure_seed: None,
            delayed: Default::default(),
        }),
        requests_per_proxy: 25_000,
        warmup_per_proxy: 5_000,
    };
    let off = ClusterSim::new(&mk(ProxyPolicy::NoPrefetch)).run(13);
    for node in &off.nodes {
        assert_eq!(node.prefetches_per_request, 0.0);
        assert_eq!(node.goodput_bytes, Some(0.0));
        assert_eq!(node.badput_bytes, Some(0.0));
    }
    let on = ClusterSim::new(&mk(ProxyPolicy::Adaptive)).run(13);
    let mut prefetched_any = false;
    for node in &on.nodes {
        let good = node.goodput_bytes.unwrap();
        let bad = node.badput_bytes.unwrap();
        assert!(good >= 0.0 && bad >= 0.0);
        if node.prefetches_per_request > 0.0 {
            prefetched_any = true;
            assert!(good > 0.0, "oracle-driven prefetching should earn goodput");
        }
    }
    assert!(prefetched_any, "adaptive policy never prefetched");
    // Prefetching raised the hit ratio at every proxy that used it.
    for (n_on, n_off) in on.nodes.iter().zip(&off.nodes) {
        if n_on.prefetches_per_request > 0.05 {
            assert!(
                n_on.hit_ratio > n_off.hit_ratio,
                "proxy {}: hit ratio {} should beat no-prefetch {}",
                n_on.proxy,
                n_on.hit_ratio,
                n_off.hit_ratio
            );
        }
    }
}

/// A cooperative workload over a peer mesh: every proxy serves the same
/// item universe (shared structure seed), so peers can answer each
/// other's misses.
fn coop_workload(n_proxies: usize, lambda: f64, coop: CoopConfig) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh(n_proxies, 50.0, 70.0, 45.0),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n_proxies)
                    .map(|_| SynthWebConfig { lambda, link_skew: 0.3, ..SynthWebConfig::default() })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(4242),
                delayed: Default::default(),
            },
            coop,
        }),
        requests_per_proxy: 20_000,
        warmup_per_proxy: 4_000,
    }
}

/// Same seed ⇒ structurally identical report in cooperative mode, across
/// both placement policies (the determinism property the digest/placement
/// machinery must preserve).
#[test]
fn cooperative_same_seed_identical_report() {
    for policy in [
        PlacementPolicy::Static,
        PlacementPolicy::LoadAware { divergence: 0.05, step: 4, min_vnodes: 8 },
    ] {
        let cfg = coop_workload(
            3,
            14.0,
            CoopConfig {
                placement: policy,
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        );
        let sim = ClusterSim::new(&cfg);
        let a = sim.run(9);
        assert_eq!(a, sim.run(9), "policy {policy:?}");
        assert_ne!(a, sim.run(10), "different seeds must differ");
        let coop = a.coop.expect("coop counters present");
        assert!(coop.router.digest_epochs > 0, "digests must have refreshed");
    }
}

/// Cooperative mode actually cooperates: peers serve a meaningful share
/// of misses, and those transfers ride the peer links, not the backbone.
#[test]
fn cooperative_peers_carry_traffic() {
    let cfg = coop_workload(3, 14.0, CoopConfig::default());
    let report = ClusterSim::new(&cfg).run(21);
    let coop = report.coop.expect("coop counters");
    assert!(coop.peer_fetches > 100, "peer fetches {}", coop.peer_fetches);
    let peer_bytes: f64 =
        report.links.iter().filter(|l| l.name.starts_with("peer[")).map(|l| l.bytes_carried).sum();
    assert!(peer_bytes > 0.0);
    for node in &report.nodes {
        assert!(node.peer_bytes.expect("peer bytes reported") >= 0.0);
    }
}

/// The network-load curve reproduces the paper's Figure 2/3 shape at
/// cluster scope: G grows with volume when p > threshold, and the excess
/// network load grows monotonically with volume regardless.
#[test]
fn network_load_curve_has_paper_shape() {
    let size = Exponential::with_mean(1.0);
    let topology = Topology::star(2, 50.0);
    // ρ′ = 0.6 at each proxy; p = 0.9 clears the threshold.
    let proxies = [(30.0, 0.0), (30.0, 0.0)];
    let n_fs = [0.25, 0.5, 1.0];
    let curve = cluster::network_load_curve(
        &cluster::CurveSpec {
            topology: &topology,
            proxies: &proxies,
            p: 0.9,
            size_dist: &size,
            requests_per_proxy: 50_000,
            warmup_per_proxy: 10_000,
            seed: 17,
        },
        &n_fs,
    );
    assert_eq!(curve.len(), 3);
    for point in &curve {
        assert!(point.improvement > 0.0, "G at nf={} was {}", point.n_f, point.improvement);
    }
    // More volume ⇒ more network load, and G keeps growing (no volume
    // limit above threshold — the paper's headline result).
    assert!(curve[2].excess_bytes_per_request > curve[0].excess_bytes_per_request);
    assert!(curve[2].improvement > curve[0].improvement);
    assert!(curve[2].max_link_utilisation > curve[0].max_link_utilisation);
}
