//! Aggregate network-load curves: the cluster-scope analogue of the
//! paper's Figures 2 (access improvement `G` vs `n̄(F)`) and 3 (excess
//! network load `C` vs `n̄(F)`).
//!
//! The sweep re-runs the open-loop cluster at a grid of prefetch volumes,
//! applying the same `n̄(F)` at every proxy, and reports each point against
//! the shared no-prefetch baseline. Points are independent, so they run on
//! the `simcore::par` pool; output order matches the input grid.

use crate::report::CurvePoint;
use crate::sim::ClusterSim;
use crate::{ClusterConfig, StaticProxy, StaticWorkload, Topology, Workload};
use simcore::dist::Sample;

/// Fixed inputs of one [`network_load_curve`] sweep.
pub struct CurveSpec<'a> {
    pub topology: &'a Topology,
    /// Each proxy's `(λ, h′)`; the sweep overrides `n̄(F)` and `p`
    /// uniformly.
    pub proxies: &'a [(f64, f64)],
    /// Access probability of prefetched items, fixed across the sweep.
    pub p: f64,
    pub size_dist: &'a dyn Sample,
    pub requests_per_proxy: usize,
    pub warmup_per_proxy: usize,
    /// Seeds follow the parametric convention: the baseline runs at
    /// `seed`, every prefetch point at `seed + 1`.
    pub seed: u64,
}

/// Sweeps prefetch volume `n̄(F)` over `n_fs` on the given topology,
/// holding `p` and the per-proxy base parameters fixed.
pub fn network_load_curve(spec: &CurveSpec<'_>, n_fs: &[f64]) -> Vec<CurvePoint> {
    assert_eq!(spec.proxies.len(), spec.topology.n_proxies(), "one (λ, h′) pair per proxy");
    let run_at = |&n_f: &f64, run_seed: u64| {
        let config = ClusterConfig {
            topology: spec.topology.clone(),
            workload: Workload::Static(StaticWorkload {
                proxies: spec
                    .proxies
                    .iter()
                    .map(|&(lambda, h_prime)| StaticProxy { lambda, h_prime, n_f, p: spec.p })
                    .collect(),
                size_dist: spec.size_dist,
                catalog_items: None,
            }),
            requests_per_proxy: spec.requests_per_proxy,
            warmup_per_proxy: spec.warmup_per_proxy,
        };
        ClusterSim::new(&config).run(run_seed)
    };

    let (baseline, points) = simcore::par::sweep_vs_baseline(&0.0, n_fs, spec.seed, run_at);
    n_fs.iter()
        .zip(points)
        .map(|(&n_f, report)| CurvePoint {
            n_f,
            mean_access_time: report.mean_access_time,
            improvement: baseline.mean_access_time - report.mean_access_time,
            excess_bytes_per_request: report.bytes_per_request - baseline.bytes_per_request,
            max_link_utilisation: report.max_link_utilisation(),
        })
        .collect()
}
