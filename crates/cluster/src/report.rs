//! Measurement records produced by one cluster run.
//!
//! Everything is plain data with `PartialEq` so determinism can be asserted
//! structurally (same seed ⇒ identical report). Quantities that only exist
//! in one mode (e.g. adaptive thresholds, prefetch goodput) are `Option`s
//! and are always finite when present — `NaN` never appears in a report.

/// Per-link measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkReport {
    /// Topology name of the link.
    pub name: String,
    /// Busy fraction over the run, `ρ` of this hop.
    pub utilisation: f64,
    /// Size-units carried (every job counted once per traversal).
    pub bytes_carried: f64,
    /// Jobs that finished service on this link.
    pub jobs_completed: u64,
}

/// Per-proxy (client-population) measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Proxy index in the topology.
    pub proxy: usize,
    /// Requests measured (post warm-up).
    pub measured_requests: u64,
    /// Cache hit ratio over measured requests.
    pub hit_ratio: f64,
    /// Mean user-perceived access time `t̄` (hits cost zero).
    pub mean_access_time: f64,
    /// 95% CI half-width on `t̄` (batch means).
    pub access_time_ci95: f64,
    /// Mean sojourn of demand fetches (the paper's `r̄`).
    pub mean_retrieval_time: f64,
    /// Retrieval time per user request, `R` (demand + prefetch sojourns).
    pub retrieval_per_request: f64,
    /// Prefetch jobs issued per user request (`n̄(F)` realised).
    pub prefetches_per_request: f64,
    /// Prefetched size-units that later served a hit (adaptive mode only).
    pub goodput_bytes: Option<f64>,
    /// Prefetched size-units that never served a hit (adaptive mode only).
    pub badput_bytes: Option<f64>,
    /// Demand-fetched size-units.
    pub demand_bytes: f64,
    /// Size-units of this proxy's misses/prefetches served from peer
    /// caches instead of the origin (cooperative mode only).
    pub peer_bytes: Option<f64>,
    /// Transfers served from a peer cache (cooperative mode only).
    pub peer_fetches: Option<u64>,
    /// Peer transfers that arrived to find the entry absent — digest false
    /// hits: epoch staleness plus the Bloom filter's structural
    /// false-positive floor (cooperative mode only).
    pub peer_false_hits: Option<u64>,
    /// Mean threshold the local controller applied (adaptive mode only).
    pub mean_threshold: Option<f64>,
    /// The controller's final `ρ̂′` estimate (adaptive mode only).
    pub rho_prime_estimate: Option<f64>,
    /// The controller's final `ĥ′` estimate (adaptive mode only).
    pub h_prime_estimate: Option<f64>,
}

/// Activity of the cooperative layer over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoopReport {
    /// The router's own counters (digest epochs, vnode migrations, …).
    pub router: coop::RouterStats,
    /// Peer-served transfers across all proxies.
    pub peer_fetches: u64,
    /// Digest false hits across all proxies (staleness + Bloom structural
    /// false positives).
    pub peer_false_hits: u64,
}

/// One complete cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Per-proxy measurements, indexed by proxy.
    pub nodes: Vec<NodeReport>,
    /// Per-link measurements, in topology link order.
    pub links: Vec<LinkReport>,
    /// Request-weighted mean access time across all proxies.
    pub mean_access_time: f64,
    /// Network load: size-units injected (demand + prefetch, counted once
    /// per job) per user request — the Fig. 3 quantity at cluster scope.
    pub bytes_per_request: f64,
    /// Virtual time of the last event.
    pub duration: f64,
    /// Cooperative-layer counters (cooperative mode only).
    pub coop: Option<CoopReport>,
}

impl ClusterReport {
    /// The highest per-link utilisation — the cluster's stability margin
    /// (`max ρ < 1` ⇔ every queue is stable at these loads).
    pub fn max_link_utilisation(&self) -> f64 {
        self.links.iter().map(|l| l.utilisation).fold(0.0, f64::max)
    }

    /// Finds a link report by topology name.
    pub fn link(&self, name: &str) -> Option<&LinkReport> {
        self.links.iter().find(|l| l.name == name)
    }

    /// Size-units carried by the named link — the backbone load the
    /// cooperative experiments compare. Zero when the link is absent.
    pub fn link_bytes(&self, name: &str) -> f64 {
        self.link(name).map_or(0.0, |l| l.bytes_carried)
    }
}

/// One point of the aggregate network-load curve (the cluster-scope
/// analogue of the paper's Figures 2–3).
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    /// Prefetch volume `n̄(F)` applied at every proxy.
    pub n_f: f64,
    /// Cluster mean access time `t̄` at this volume.
    pub mean_access_time: f64,
    /// Access improvement `G = t̄′ − t̄` vs the no-prefetch baseline (Fig 2).
    pub improvement: f64,
    /// Excess network load per request vs baseline, `C` analogue (Fig 3).
    pub excess_bytes_per_request: f64,
    /// Highest link utilisation at this volume.
    pub max_link_utilisation: f64,
}
