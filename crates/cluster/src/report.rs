//! Measurement records produced by one cluster run.
//!
//! Everything is plain data with `PartialEq` so determinism can be asserted
//! structurally (same seed ⇒ identical report). Quantities that only exist
//! in one mode (e.g. adaptive thresholds, prefetch goodput) are `Option`s
//! and are always finite when present — `NaN` never appears in a report.

/// Per-link measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkReport {
    /// Topology name of the link.
    pub name: String,
    /// Busy fraction over the run, `ρ` of this hop.
    pub utilisation: f64,
    /// Size-units carried (every job counted once per traversal).
    pub bytes_carried: f64,
    /// Jobs that finished service on this link.
    pub jobs_completed: u64,
}

/// Per-proxy (client-population) measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Proxy index in the topology.
    pub proxy: usize,
    /// Requests measured (post warm-up).
    pub measured_requests: u64,
    /// Cache hit ratio over measured requests.
    pub hit_ratio: f64,
    /// Mean user-perceived access time `t̄` (hits cost zero).
    pub mean_access_time: f64,
    /// 95% CI half-width on `t̄` (batch means).
    pub access_time_ci95: f64,
    /// Mean sojourn of demand fetches (the paper's `r̄`).
    pub mean_retrieval_time: f64,
    /// Retrieval time per user request, `R` (demand + prefetch sojourns).
    pub retrieval_per_request: f64,
    /// Prefetch jobs issued per user request (`n̄(F)` realised).
    pub prefetches_per_request: f64,
    /// Prefetched size-units that later served a hit (adaptive mode only).
    pub goodput_bytes: Option<f64>,
    /// Prefetched size-units that never served a hit (adaptive mode only).
    pub badput_bytes: Option<f64>,
    /// Demand-fetched size-units.
    pub demand_bytes: f64,
    /// Cache occupancy in size-units at the end of the run (closed-loop
    /// modes only; `None` in the cache-less open loop). Bounded by the
    /// workload's `cache_bytes` budget when one is set.
    pub cache_used_bytes: Option<f64>,
    /// Size-units of this proxy's misses/prefetches served from peer
    /// caches instead of the origin (cooperative mode only).
    pub peer_bytes: Option<f64>,
    /// Transfers served from a peer cache (cooperative mode only).
    pub peer_fetches: Option<u64>,
    /// Peer transfers that arrived to find the entry absent — digest false
    /// hits: epoch staleness plus the Bloom filter's structural
    /// false-positive floor (cooperative mode only).
    pub peer_false_hits: Option<u64>,
    /// Mean threshold the local controller applied (adaptive mode only).
    pub mean_threshold: Option<f64>,
    /// The controller's final `ρ̂′` estimate (adaptive mode only).
    pub rho_prime_estimate: Option<f64>,
    /// The controller's final `ĥ′` estimate (adaptive mode only).
    pub h_prime_estimate: Option<f64>,
    /// Measured requests settled as **delayed hits** — misses that joined
    /// an outstanding fetch's waiter queue instead of fetching (modes with
    /// an MSHR table; `None` in the itemless open loop).
    pub delayed_hits: Option<u64>,
    /// Demand misses absorbed by MSHR coalescing, warm-up included (the
    /// transfers the table avoided launching).
    pub coalesced_requests: Option<u64>,
    /// Origin fetches the MSHR table authorised (tracked launches plus
    /// full-table/independent-mode bypasses), warm-up included.
    pub origin_fetches: Option<u64>,
    /// Mean residual wait of the measured delayed hits (time from joining
    /// the waiter queue to the fetch landing).
    pub mean_residual_wait: Option<f64>,
    /// Mean waiters per settled MSHR entry, warm-up included.
    pub mean_waiter_depth: Option<f64>,
    /// MSHR allocations refused by the entry budget (demand bypasses on a
    /// full table plus dropped prefetch reservations).
    pub mshr_rejections: Option<u64>,
    /// Demand misses presented to the MSHR table, warm-up included.
    /// Together with `origin_fetches`, `coalesced_requests`, and
    /// `mshr_failed` this exposes the conservation law `origin_fetches +
    /// coalesced + failed == demand_misses` for external checking.
    pub demand_misses: Option<u64>,
    /// Demand misses reclassified as failed in the MSHR ledger (timeout
    /// exhaustion or crash drain), warm-up included.
    pub mshr_failed: Option<u64>,
    /// Fetch attempts that expired without an answer (fault runs; zero
    /// otherwise), warm-up included.
    pub timeouts: u64,
    /// Retry attempts launched after a timeout, warm-up included.
    pub retries: u64,
    /// Peer-destined fetches re-routed to the origin because every path
    /// to the peer was dark at launch, warm-up included.
    pub failovers: u64,
    /// Fetches that exhausted their attempt budget and settled as
    /// failures (plus crash-drained demand fetches), warm-up included.
    pub failed_fetches: u64,
    /// Cache entries and buffered digest ops wiped by crash / digest-loss
    /// faults at this proxy.
    pub lost_entries: u64,
    /// Fraction of measured requests that ended in failure instead of
    /// data — the headline graceful-degradation metric. Zero without
    /// faults.
    pub unavailability: f64,
}

/// Activity of the cooperative layer over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoopReport {
    /// The router's own counters (digest epochs, vnode migrations, …).
    pub router: coop::RouterStats,
    /// Peer-served transfers across all proxies.
    pub peer_fetches: u64,
    /// Digest false hits across all proxies (staleness + Bloom structural
    /// false positives).
    pub peer_false_hits: u64,
}

/// One complete cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Per-proxy measurements, indexed by proxy.
    pub nodes: Vec<NodeReport>,
    /// Per-link measurements, in topology link order.
    pub links: Vec<LinkReport>,
    /// Request-weighted mean access time across all proxies.
    pub mean_access_time: f64,
    /// Network load: size-units injected (demand + prefetch, counted once
    /// per job) per user request — the Fig. 3 quantity at cluster scope.
    pub bytes_per_request: f64,
    /// Virtual time of the last event.
    pub duration: f64,
    /// Cooperative-layer counters (cooperative mode only).
    pub coop: Option<CoopReport>,
}

impl ClusterReport {
    /// The highest per-link utilisation — the cluster's stability margin
    /// (`max ρ < 1` ⇔ every queue is stable at these loads).
    pub fn max_link_utilisation(&self) -> f64 {
        self.links.iter().map(|l| l.utilisation).fold(0.0, f64::max)
    }

    /// Finds a link report by topology name.
    pub fn link(&self, name: &str) -> Option<&LinkReport> {
        self.links.iter().find(|l| l.name == name)
    }

    /// Size-units carried by the named link — the backbone load the
    /// cooperative experiments compare. Zero when the link is absent.
    pub fn link_bytes(&self, name: &str) -> f64 {
        self.link(name).map_or(0.0, |l| l.bytes_carried)
    }

    /// Digest-exchange bytes the cooperative layer shipped (zero without
    /// cooperation) — the metadata overhead the delta protocol shrinks.
    pub fn digest_bytes(&self) -> u64 {
        self.coop.map_or(0, |c| c.router.digest_bytes)
    }

    /// Measured delayed hits across all proxies (zero when the mode has no
    /// MSHR table).
    pub fn delayed_hits(&self) -> u64 {
        self.nodes.iter().filter_map(|n| n.delayed_hits).sum()
    }

    /// Coalesced demand misses across all proxies.
    pub fn coalesced_requests(&self) -> u64 {
        self.nodes.iter().filter_map(|n| n.coalesced_requests).sum()
    }

    /// Origin fetches authorised across all proxies — the transfer count
    /// the coalescing win shrinks at equal offered load.
    pub fn origin_fetches(&self) -> u64 {
        self.nodes.iter().filter_map(|n| n.origin_fetches).sum()
    }

    /// Delayed-hit-weighted mean residual wait across all proxies (`None`
    /// when no proxy settled a measured delayed hit) — iterated in node
    /// order, so the reduction is identical under every sharding.
    pub fn mean_residual_wait(&self) -> Option<f64> {
        let total: u64 = self.delayed_hits();
        (total > 0).then(|| {
            self.nodes
                .iter()
                .filter_map(|n| Some(n.mean_residual_wait? * n.delayed_hits? as f64))
                .sum::<f64>()
                / total as f64
        })
    }

    /// The extended MSHR conservation law, checked cluster-wide: on every
    /// node with a table, `origin_fetches + coalesced + failed ==
    /// demand_misses` — faults must not leak demand misses out of the
    /// ledger. Vacuously true for table-less modes.
    pub fn mshr_conservation_ok(&self) -> bool {
        self.nodes.iter().all(|n| {
            match (n.origin_fetches, n.coalesced_requests, n.mshr_failed, n.demand_misses) {
                (Some(o), Some(c), Some(f), Some(d)) => o + c + f == d,
                _ => true,
            }
        })
    }

    /// Fetch failures across all proxies (zero without faults).
    pub fn failed_fetches(&self) -> u64 {
        self.nodes.iter().map(|n| n.failed_fetches).sum()
    }

    /// Retry attempts across all proxies (zero without faults).
    pub fn retries(&self) -> u64 {
        self.nodes.iter().map(|n| n.retries).sum()
    }

    /// Request-weighted cluster unavailability: the fraction of measured
    /// requests, cluster-wide, that ended in failure instead of data.
    /// Iterated in node order so the reduction is identical under every
    /// sharding. Zero without faults.
    pub fn unavailability(&self) -> f64 {
        let measured: u64 = self.nodes.iter().map(|n| n.measured_requests).sum();
        if measured == 0 {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.unavailability * n.measured_requests as f64).sum::<f64>()
            / measured as f64
    }

    /// Mean waiter depth across all proxies, weighted by each proxy's
    /// coalesced-request count (`None` when nothing coalesced).
    pub fn mean_waiter_depth(&self) -> Option<f64> {
        let weighted: f64 = self
            .nodes
            .iter()
            .filter_map(|n| Some(n.mean_waiter_depth? * n.coalesced_requests? as f64))
            .sum();
        let total: u64 = self.coalesced_requests();
        (total > 0).then(|| weighted / total as f64)
    }
}

/// Structural report-equality assertions shared by the parity test suites
/// (`engine_parity.rs`, `delta_parity.rs`). Not part of the public API.
#[doc(hidden)]
pub mod parity {
    use super::ClusterReport;

    /// Absolute tolerance on every floating-point field; counters must
    /// match exactly.
    pub const TOL: f64 = 1e-12;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= TOL
    }

    fn close_opt(a: Option<f64>, b: Option<f64>) -> bool {
        match (a, b) {
            (Some(a), Some(b)) => close(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Full structural report equality to [`TOL`] on every float, exact on
    /// every counter — including the digest-exchange traffic.
    pub fn assert_reports_match(a: &ClusterReport, b: &ClusterReport, label: &str) {
        assert_reports_match_impl(a, b, label, false);
    }

    /// Like [`assert_reports_match`], but ignores the digest-exchange
    /// volume counters (`digest_bytes`, `delta_ops`): deltas and full
    /// rebuilds advertise identical state while *by design* shipping
    /// different byte volumes, so the delta-parity suite compares
    /// everything else exactly.
    pub fn assert_reports_match_modulo_digest_traffic(
        a: &ClusterReport,
        b: &ClusterReport,
        label: &str,
    ) {
        assert_reports_match_impl(a, b, label, true);
    }

    fn assert_reports_match_impl(
        a: &ClusterReport,
        b: &ClusterReport,
        label: &str,
        ignore_digest_traffic: bool,
    ) {
        assert!(close(a.mean_access_time, b.mean_access_time), "{label}: mean_access_time");
        assert!(close(a.bytes_per_request, b.bytes_per_request), "{label}: bytes_per_request");
        assert!(close(a.duration, b.duration), "{label}: duration");
        assert_eq!(a.nodes.len(), b.nodes.len(), "{label}: node count");
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            let l = format!("{label}: proxy {}", x.proxy);
            assert_eq!(x.proxy, y.proxy, "{l}: index");
            assert_eq!(x.measured_requests, y.measured_requests, "{l}: measured");
            assert!(close(x.hit_ratio, y.hit_ratio), "{l}: hit_ratio");
            assert!(close(x.mean_access_time, y.mean_access_time), "{l}: mean_access_time");
            assert!(close(x.access_time_ci95, y.access_time_ci95), "{l}: ci95");
            assert!(close(x.mean_retrieval_time, y.mean_retrieval_time), "{l}: retrieval");
            assert!(close(x.retrieval_per_request, y.retrieval_per_request), "{l}: R");
            assert!(close(x.prefetches_per_request, y.prefetches_per_request), "{l}: nf");
            assert!(close_opt(x.goodput_bytes, y.goodput_bytes), "{l}: goodput");
            assert!(close_opt(x.badput_bytes, y.badput_bytes), "{l}: badput");
            assert!(close(x.demand_bytes, y.demand_bytes), "{l}: demand bytes");
            assert!(close_opt(x.cache_used_bytes, y.cache_used_bytes), "{l}: cache bytes");
            assert!(close_opt(x.peer_bytes, y.peer_bytes), "{l}: peer bytes");
            assert_eq!(x.peer_fetches, y.peer_fetches, "{l}: peer fetches");
            assert_eq!(x.peer_false_hits, y.peer_false_hits, "{l}: false hits");
            assert!(close_opt(x.mean_threshold, y.mean_threshold), "{l}: threshold");
            assert!(close_opt(x.rho_prime_estimate, y.rho_prime_estimate), "{l}: rho'");
            assert!(close_opt(x.h_prime_estimate, y.h_prime_estimate), "{l}: h'");
            assert_eq!(x.delayed_hits, y.delayed_hits, "{l}: delayed hits");
            assert_eq!(x.coalesced_requests, y.coalesced_requests, "{l}: coalesced");
            assert_eq!(x.origin_fetches, y.origin_fetches, "{l}: origin fetches");
            assert!(close_opt(x.mean_residual_wait, y.mean_residual_wait), "{l}: residual");
            assert!(close_opt(x.mean_waiter_depth, y.mean_waiter_depth), "{l}: waiter depth");
            assert_eq!(x.mshr_rejections, y.mshr_rejections, "{l}: mshr rejections");
            assert_eq!(x.demand_misses, y.demand_misses, "{l}: demand misses");
            assert_eq!(x.mshr_failed, y.mshr_failed, "{l}: mshr failed");
            assert_eq!(x.timeouts, y.timeouts, "{l}: timeouts");
            assert_eq!(x.retries, y.retries, "{l}: retries");
            assert_eq!(x.failovers, y.failovers, "{l}: failovers");
            assert_eq!(x.failed_fetches, y.failed_fetches, "{l}: failed fetches");
            assert_eq!(x.lost_entries, y.lost_entries, "{l}: lost entries");
            assert!(close(x.unavailability, y.unavailability), "{l}: unavailability");
        }
        assert_eq!(a.links.len(), b.links.len(), "{label}: link count");
        for (x, y) in a.links.iter().zip(&b.links) {
            let l = format!("{label}: link {}", x.name);
            assert_eq!(x.name, y.name, "{l}: name");
            assert!(close(x.utilisation, y.utilisation), "{l}: rho");
            assert!(close(x.bytes_carried, y.bytes_carried), "{l}: bytes");
            assert_eq!(x.jobs_completed, y.jobs_completed, "{l}: jobs");
        }
        assert_eq!(a.coop.is_some(), b.coop.is_some(), "{label}: coop presence");
        if let (Some(x), Some(y)) = (&a.coop, &b.coop) {
            assert_eq!(x.peer_fetches, y.peer_fetches, "{label}: coop peer fetches");
            assert_eq!(x.peer_false_hits, y.peer_false_hits, "{label}: coop false hits");
            assert_eq!(x.router.digest_epochs, y.router.digest_epochs, "{label}: digest epochs");
            assert_eq!(
                x.router.vnode_migrations, y.router.vnode_migrations,
                "{label}: vnode migrations"
            );
            if !ignore_digest_traffic {
                assert_eq!(x.router.digest_bytes, y.router.digest_bytes, "{label}: digest bytes");
                assert_eq!(x.router.delta_ops, y.router.delta_ops, "{label}: delta ops");
                assert_eq!(
                    x.router.delta_flushes, y.router.delta_flushes,
                    "{label}: delta flushes"
                );
                assert_eq!(
                    x.router.snapshot_flushes, y.router.snapshot_flushes,
                    "{label}: snapshot flushes"
                );
            }
        }
    }
}

/// One point of the aggregate network-load curve (the cluster-scope
/// analogue of the paper's Figures 2–3).
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    /// Prefetch volume `n̄(F)` applied at every proxy.
    pub n_f: f64,
    /// Cluster mean access time `t̄` at this volume.
    pub mean_access_time: f64,
    /// Access improvement `G = t̄′ − t̄` vs the no-prefetch baseline (Fig 2).
    pub improvement: f64,
    /// Excess network load per request vs baseline, `C` analogue (Fig 3).
    pub excess_bytes_per_request: f64,
    /// Highest link utilisation at this volume.
    pub max_link_utilisation: f64,
}
