//! The retired O(links + proxies) scan drivers, kept **only** as a parity
//! oracle.
//!
//! Before the indexed event scheduler (`simcore::sched`) landed, both
//! cluster engines selected the next event by scanning every link and
//! every proxy per iteration. The scan is gone from the hot paths
//! (`closed_loop`/`static_mode` now arm per-link/per-proxy timers and run
//! under the `shard` drivers), but it survives here, driving the *same*
//! `Engine` handler cores, so the engine-parity tests can pin that the
//! scheduler rewrite changed event *selection cost* and nothing else: both
//! drivers must produce byte-identical [`ClusterReport`]s.
//!
//! Compiled only under the `legacy-oracle` cargo feature (on by default
//! for this crate, so `cargo test` keeps the parity suites; release
//! consumers — the harness, the facade — opt out with
//! `default-features = false` and carry no dead driver). Not part of the
//! public API surface (`#[doc(hidden)]` at the re-export); do not build
//! features on it.
//!
//! The scan predates link latency, so it only accepts zero-latency
//! topologies (every effect settles at its emission instant, inline —
//! exactly the behaviour the pre-shard engines hard-coded).

use crate::report::ClusterReport;
use crate::shard::{flush_boundary, BoundaryEntry, Effect, EngineCore};
use crate::sim::{LinkState, Scope};
use crate::{closed_loop, static_mode, ClusterConfig, Workload};
use coop::Router;
use std::collections::VecDeque;

/// Earliest pending event over a set of links: `(time, link_index)`,
/// lowest index first on ties — the O(links) scan the scheduler replaced.
fn earliest_link_event(links: &[LinkState]) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (i, l) in links.iter().enumerate() {
        if let Some(t) = l.next_event() {
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
    }
    best
}

/// Inline settlement of a full-scope handler's effects: on the
/// zero-latency topologies the scan supports, every effect applies at its
/// emission instant, children-before-siblings — byte-identical to the
/// nesting the pre-shard engines executed inline.
fn settle<C: EngineCore>(core: &mut C, t: f64, scratch: &mut Vec<Effect<C::Job>>) {
    let mut dq: VecDeque<Effect<C::Job>> = VecDeque::new();
    core.take_effects(scratch);
    dq.extend(scratch.drain(..));
    while let Some(e) = dq.pop_front() {
        debug_assert!(core.owns(&e), "legacy scan runs one full scope");
        debug_assert_eq!(e.time(), t, "legacy scan supports zero-latency topologies only");
        core.apply_now(e, t);
        core.take_effects(scratch);
        for child in scratch.drain(..).rev() {
            dq.push_front(child);
        }
    }
}

/// Runs one cluster simulation with the legacy scan driver. Same
/// semantics, dispatch, and validation as [`crate::ClusterSim::run`] on
/// zero-latency topologies (the only kind the scan era had).
pub fn run(config: &ClusterConfig<'_>, seed: u64) -> ClusterReport {
    config.validate();
    assert!(
        !config.topology.has_latency(),
        "the legacy scan predates link latency; use the shard drivers"
    );
    let scope = Scope::full(&config.topology);
    match &config.workload {
        Workload::Static(w) => {
            let eng = static_mode::Engine::new(
                &config.topology,
                w,
                config.requests_per_proxy,
                config.warmup_per_proxy,
                seed,
                scope,
                None,
            );
            run_static(&config.topology, eng)
        }
        Workload::Adaptive(w) => {
            let eng = closed_loop::Engine::new(
                &config.topology,
                closed_loop::EngineWorkload::Synth(w),
                None,
                config.requests_per_proxy,
                config.warmup_per_proxy,
                seed,
                scope,
                None,
            );
            run_closed(&config.topology, eng, None)
        }
        Workload::Cooperative(w) => {
            let eng = closed_loop::Engine::new(
                &config.topology,
                closed_loop::EngineWorkload::Synth(&w.base),
                Some(&w.coop),
                config.requests_per_proxy,
                config.warmup_per_proxy,
                seed,
                scope,
                None,
            );
            let router = Router::new(config.topology.n_proxies(), w.base.cache_capacity, w.coop);
            run_closed(&config.topology, eng, Some(router))
        }
        Workload::Trace(w) => {
            let eng = closed_loop::Engine::new(
                &config.topology,
                closed_loop::EngineWorkload::Trace(w),
                None,
                config.requests_per_proxy,
                config.warmup_per_proxy,
                seed,
                scope,
                None,
            );
            run_closed(&config.topology, eng, None)
        }
    }
}

/// The closed-loop scan loop: every iteration walks all links and all
/// proxies for the earliest event. Tie order (links by index, then
/// requests by proxy, then prefetches, refresh strictly last) matches the
/// shard drivers' class layout exactly.
fn run_closed(
    topology: &crate::Topology,
    mut eng: closed_loop::Engine<'_>,
    mut router: Option<Router>,
) -> ClusterReport {
    let mut scratch = Vec::new();
    let mut dirty = Vec::new();
    loop {
        let link_ev = earliest_link_event(&eng.links);
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for i in 0..eng.n_proxies() {
            if let Some(t) = eng.request_due(i) {
                if req.is_none_or(|(bt, _)| t < bt) {
                    req = Some((t, i));
                }
            }
            if let Some(t) = eng.prefetch_due(i) {
                if pre.is_none_or(|(bt, _)| t < bt) {
                    pre = Some((t, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            // Refresh boundaries beyond the last real event never fire.
            break;
        }
        let tb = router.as_ref().map_or(f64::INFINITY, |r| r.next_refresh());
        if tb < ts && tb < tr && tb < tp {
            let mut entries: Vec<BoundaryEntry> = Vec::new();
            eng.refresh_payloads(&mut entries);
            flush_boundary(router.as_mut().expect("boundary without a router"), entries);
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            eng.on_link(t, l);
            settle(&mut eng, t, &mut scratch);
        } else if tr <= tp {
            let (t, i) = req.expect("request event");
            eng.on_request(i, router.as_ref());
            settle(&mut eng, t, &mut scratch);
        } else {
            let (t, i) = pre.expect("prefetch event");
            eng.on_issue_prefetch(i, router.as_ref());
            settle(&mut eng, t, &mut scratch);
        }
        // The scan recomputes everything next iteration; no timers to sync.
        eng.drain_dirty(&mut dirty);
        dirty.clear();
    }
    closed_loop::merge_reports(topology, vec![eng], router)
}

/// The open-loop scan loop, mirroring the closed-loop one (no refresh).
fn run_static(topology: &crate::Topology, mut eng: static_mode::Engine<'_>) -> ClusterReport {
    let mut scratch = Vec::new();
    let mut dirty = Vec::new();
    loop {
        let link_ev = earliest_link_event(&eng.links);
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for i in 0..eng.n_proxies() {
            if let Some(t) = eng.request_due(i) {
                if req.is_none_or(|(bt, _)| t < bt) {
                    req = Some((t, i));
                }
            }
            if let Some(t) = eng.prefetch_due(i) {
                if pre.is_none_or(|(bt, _)| t < bt) {
                    pre = Some((t, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            break;
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            eng.on_link(t, l);
            settle(&mut eng, t, &mut scratch);
        } else if tr <= tp {
            let (t, i) = req.expect("request event");
            eng.on_request(i);
            settle(&mut eng, t, &mut scratch);
        } else {
            let (t, i) = pre.expect("prefetch event");
            eng.on_prefetch(i);
            settle(&mut eng, t, &mut scratch);
        }
        eng.drain_dirty(&mut dirty);
        dirty.clear();
    }
    static_mode::merge_reports(topology, vec![eng])
}
