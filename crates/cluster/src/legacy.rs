//! The retired O(links + proxies) scan drivers, kept **only** as a parity
//! oracle.
//!
//! Before the indexed event scheduler (`simcore::sched`) landed, both
//! cluster engines selected the next event by scanning every link and
//! every proxy per iteration. The scan is gone from the hot paths
//! (`closed_loop`/`static_mode` now arm per-link/per-proxy timers), but
//! it survives here, driving the *same* `Engine` handler cores, so the
//! engine-parity tests can pin that the scheduler rewrite changed event
//! *selection cost* and nothing else: both drivers must produce
//! byte-identical [`ClusterReport`]s.
//!
//! Not part of the public API surface (`#[doc(hidden)]` at the re-export);
//! do not build features on it.

use crate::report::ClusterReport;
use crate::sim::LinkState;
use crate::{closed_loop, static_mode, ClusterConfig, Workload};

/// Earliest pending event over a set of links: `(time, link_index)`,
/// lowest index first on ties — the O(links) scan the scheduler replaced.
fn earliest_link_event(links: &[LinkState]) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (i, l) in links.iter().enumerate() {
        if let Some(t) = l.next_event() {
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
    }
    best
}

/// Runs one cluster simulation with the legacy scan driver. Same
/// semantics, dispatch, and validation as [`crate::ClusterSim::run`].
pub fn run(config: &ClusterConfig<'_>, seed: u64) -> ClusterReport {
    config.validate();
    match &config.workload {
        Workload::Static(w) => run_static(static_mode::Engine::new(
            &config.topology,
            w,
            config.requests_per_proxy,
            config.warmup_per_proxy,
            seed,
        )),
        Workload::Adaptive(w) => run_closed(closed_loop::Engine::new(
            &config.topology,
            w,
            None,
            config.requests_per_proxy,
            config.warmup_per_proxy,
            seed,
        )),
        Workload::Cooperative(w) => run_closed(closed_loop::Engine::new(
            &config.topology,
            &w.base,
            Some(&w.coop),
            config.requests_per_proxy,
            config.warmup_per_proxy,
            seed,
        )),
    }
}

/// The closed-loop scan loop: every iteration walks all links and all
/// proxies for the earliest event. Tie order (links by index, then
/// requests by proxy, then prefetches, refresh strictly last) matches the
/// scheduler's key layout exactly.
fn run_closed(mut eng: closed_loop::Engine<'_>) -> ClusterReport {
    loop {
        let link_ev = earliest_link_event(&eng.links);
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for i in 0..eng.n_proxies() {
            if let Some(t) = eng.request_due(i) {
                if req.is_none_or(|(bt, _)| t < bt) {
                    req = Some((t, i));
                }
            }
            if let Some(t) = eng.prefetch_due(i) {
                if pre.is_none_or(|(bt, _)| t < bt) {
                    pre = Some((t, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            // Refresh boundaries beyond the last real event never fire.
            break;
        }
        let tb = eng.refresh_boundary().unwrap_or(f64::INFINITY);
        if tb < ts && tb < tr && tb < tp {
            eng.on_refresh(tb);
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            eng.on_link(t, l);
        } else if tr <= tp {
            eng.on_request(req.expect("request event").1);
        } else {
            eng.on_issue_prefetch(pre.expect("prefetch event").1);
        }
        // The scan recomputes everything next iteration; no timers to sync.
        eng.dirty_links.clear();
    }
    eng.into_report()
}

/// The open-loop scan loop, mirroring the closed-loop one (no refresh).
fn run_static(mut eng: static_mode::Engine<'_>) -> ClusterReport {
    loop {
        let link_ev = earliest_link_event(&eng.links);
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for i in 0..eng.n_proxies() {
            if let Some(t) = eng.request_due(i) {
                if req.is_none_or(|(bt, _)| t < bt) {
                    req = Some((t, i));
                }
            }
            if let Some(t) = eng.prefetch_due(i) {
                if pre.is_none_or(|(bt, _)| t < bt) {
                    pre = Some((t, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            break;
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            eng.on_link(t, l);
        } else if tr <= tp {
            eng.on_request(req.expect("request event").1);
        } else {
            eng.on_prefetch(pre.expect("prefetch event").1);
        }
        eng.dirty_links.clear();
    }
    eng.into_report()
}
