//! Open-loop (Model-A mechanism) cluster engine.
//!
//! Each proxy reproduces `netsim::parametric`'s mechanism on its own RNG
//! streams: Poisson(λ) user requests, Bernoulli hits at
//! `h = h′ + n̄(F)·p`, a Poissonised prefetch stream of rate `n̄(F)·λ`,
//! and demand fetches that traverse the proxy's route of queueing links
//! instead of one shared server. With the single-proxy, single-link
//! topology the event sequence — and therefore every measured number — is
//! *identical* to `netsim::parametric::run` at the same seed; that parity
//! is pinned by a test against 1e-6.

use crate::report::{ClusterReport, LinkReport, NodeReport};
use crate::sim::{earliest_link_event, proxy_seed, LinkState};
use crate::{StaticWorkload, Topology};
use simcore::rng::Rng;
use simcore::stats::{BatchMeans, Welford};
use std::collections::HashMap;

#[derive(Clone, Copy)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

#[derive(Clone, Copy)]
struct Job {
    proxy: u32,
    shard: u32,
    hop: usize,
    size: f64,
    issued: f64,
    kind: JobKind,
}

struct ProxyState {
    rng: Rng,
    prefetch_rng: Rng,
    h: f64,
    lambda: f64,
    prefetch_rate: f64,
    next_request_t: f64,
    next_prefetch_t: f64,
    issued: u64,
    in_window: bool,
    access_times: BatchMeans,
    retrievals: Welford,
    hits: u64,
    total_job_time: f64,
    prefetch_jobs: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
}

pub(crate) fn run(
    topology: &Topology,
    w: &StaticWorkload<'_>,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let n_shards = topology.n_shards() as u64;
    let mut links: Vec<LinkState> = topology.links().iter().map(LinkState::new).collect();

    let mut proxies: Vec<ProxyState> = w
        .proxies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            // Draw order matches netsim::parametric::run exactly: split the
            // prefetch stream first, then the first inter-arrival gaps.
            let mut rng = Rng::new(proxy_seed(seed, i));
            let prefetch_rate = p.n_f * p.lambda;
            let mut prefetch_rng = rng.split();
            let next_request_t = rng.exp(p.lambda);
            let next_prefetch_t =
                if prefetch_rate > 0.0 { prefetch_rng.exp(prefetch_rate) } else { f64::INFINITY };
            ProxyState {
                rng,
                prefetch_rng,
                h: (p.h_prime + p.n_f * p.p).min(1.0),
                lambda: p.lambda,
                prefetch_rate,
                next_request_t,
                next_prefetch_t,
                issued: 0,
                in_window: false,
                access_times: BatchMeans::new(20),
                retrievals: Welford::new(),
                hits: 0,
                total_job_time: 0.0,
                prefetch_jobs: 0,
                demand_bytes: 0.0,
                prefetch_bytes: 0.0,
            }
        })
        .collect();

    let warm = warmup as u64;
    let n_requests = requests as u64;
    let mut jobs: HashMap<u64, Job> = HashMap::new();
    let mut next_job_id: u64 = 0;
    let mut t_end = 0.0;

    enum Ev {
        Link(f64, usize),
        Request(usize),
        Prefetch(usize),
    }

    loop {
        let link_ev = earliest_link_event(&links);
        // Earliest request / prefetch over proxies still issuing; the
        // prefetch stream of a proxy stops with its request stream.
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for (i, p) in proxies.iter().enumerate() {
            if p.issued < n_requests {
                if req.is_none_or(|(t, _)| p.next_request_t < t) {
                    req = Some((p.next_request_t, i));
                }
                if p.next_prefetch_t.is_finite() && pre.is_none_or(|(t, _)| p.next_prefetch_t < t) {
                    pre = Some((p.next_prefetch_t, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        // Tie-break order (links, then requests, then prefetches) mirrors
        // the parametric simulator.
        let ev = if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            break;
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            Ev::Link(t, l)
        } else if tr <= tp {
            Ev::Request(req.expect("request event").1)
        } else {
            Ev::Prefetch(pre.expect("prefetch event").1)
        };

        match ev {
            Ev::Link(t, l) => {
                t_end = t;
                for c in links[l].on_event(t) {
                    let job = jobs[&c.tag];
                    links[l].bytes_carried += job.size;
                    let route = topology.route(job.proxy as usize, job.shard as usize);
                    if job.hop + 1 < route.len() {
                        // Tandem hop: forward to the next link unchanged.
                        let mut fwd = job;
                        fwd.hop += 1;
                        jobs.insert(c.tag, fwd);
                        links[route[fwd.hop]].arrive(t, fwd.size, c.tag);
                    } else {
                        jobs.remove(&c.tag);
                        let sojourn = t - job.issued;
                        let p = &mut proxies[job.proxy as usize];
                        match job.kind {
                            JobKind::Demand { measured } => {
                                if measured {
                                    p.access_times.push(sojourn);
                                    p.retrievals.push(sojourn);
                                    p.total_job_time += sojourn;
                                }
                            }
                            JobKind::Prefetch { measured } => {
                                if measured {
                                    p.total_job_time += sojourn;
                                }
                            }
                        }
                    }
                }
            }
            Ev::Request(i) => {
                let p = &mut proxies[i];
                let t = p.next_request_t;
                t_end = t;
                let idx = p.issued;
                p.issued += 1;
                p.in_window = idx >= warm;
                if p.rng.chance(p.h) {
                    if p.in_window {
                        p.access_times.push(0.0);
                        p.hits += 1;
                    }
                } else {
                    let size = w.size_dist.sample(&mut p.rng);
                    let shard = if n_shards > 1 { p.rng.below(n_shards) } else { 0 };
                    p.demand_bytes += size;
                    let job = Job {
                        proxy: i as u32,
                        shard: shard as u32,
                        hop: 0,
                        size,
                        issued: t,
                        kind: JobKind::Demand { measured: p.in_window },
                    };
                    let id = next_job_id;
                    next_job_id += 1;
                    jobs.insert(id, job);
                    links[topology.route(i, shard as usize)[0]].arrive(t, size, id);
                }
                p.next_request_t = t + p.rng.exp(p.lambda);
            }
            Ev::Prefetch(i) => {
                let p = &mut proxies[i];
                let t = p.next_prefetch_t;
                t_end = t;
                let size = w.size_dist.sample(&mut p.prefetch_rng);
                let shard = if n_shards > 1 { p.prefetch_rng.below(n_shards) } else { 0 };
                p.prefetch_jobs += 1;
                p.prefetch_bytes += size;
                let job = Job {
                    proxy: i as u32,
                    shard: shard as u32,
                    hop: 0,
                    size,
                    issued: t,
                    kind: JobKind::Prefetch { measured: p.in_window },
                };
                let id = next_job_id;
                next_job_id += 1;
                jobs.insert(id, job);
                links[topology.route(i, shard as usize)[0]].arrive(t, size, id);
                p.next_prefetch_t = t + p.prefetch_rng.exp(p.prefetch_rate);
            }
        }
    }

    let measured = n_requests - warm;
    let nodes: Vec<NodeReport> = proxies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (mean_access, ci) = p.access_times.mean_ci();
            NodeReport {
                proxy: i,
                measured_requests: measured,
                hit_ratio: p.hits as f64 / measured as f64,
                mean_access_time: mean_access,
                access_time_ci95: ci,
                mean_retrieval_time: p.retrievals.mean(),
                retrieval_per_request: p.total_job_time / measured as f64,
                prefetches_per_request: p.prefetch_jobs as f64 / n_requests as f64,
                goodput_bytes: None,
                badput_bytes: None,
                demand_bytes: p.demand_bytes,
                peer_bytes: None,
                peer_fetches: None,
                peer_false_hits: None,
                mean_threshold: None,
                rho_prime_estimate: None,
                h_prime_estimate: None,
            }
        })
        .collect();

    let link_reports: Vec<LinkReport> = topology
        .links()
        .iter()
        .zip(&links)
        .map(|(spec, state)| LinkReport {
            name: spec.name.clone(),
            utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
            bytes_carried: state.bytes_carried,
            jobs_completed: state.jobs_completed,
        })
        .collect();

    let total_measured: u64 = measured * proxies.len() as u64;
    let mean_access_time =
        nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
            / total_measured as f64;
    let total_bytes: f64 = proxies.iter().map(|p| p.demand_bytes + p.prefetch_bytes).sum();

    ClusterReport {
        nodes,
        links: link_reports,
        mean_access_time,
        bytes_per_request: total_bytes / (n_requests * proxies.len() as u64) as f64,
        duration: t_end,
        coop: None,
    }
}
