//! Open-loop (Model-A mechanism) cluster engine.
//!
//! Each proxy reproduces `netsim::parametric`'s mechanism on its own RNG
//! streams: Poisson(λ) user requests, Bernoulli hits at
//! `h = h′ + n̄(F)·p`, a Poissonised prefetch stream of rate `n̄(F)·λ`,
//! and demand fetches that traverse the proxy's route of queueing links
//! instead of one shared server. With the single-proxy, single-link
//! topology the event sequence — and therefore every measured number — is
//! *identical* to `netsim::parametric::run` at the same seed; that parity
//! is pinned by a test against 1e-6.
//!
//! Like the closed loop, the module is an [`Engine`] (state + one handler
//! per event kind) plus the indexed-scheduler driver ([`run`]); the
//! retired O(links + proxies) scan driver lives in [`crate::legacy`] and
//! is pinned identical by the engine-parity tests.

use crate::report::{ClusterReport, LinkReport, NodeReport};
use crate::sim::{proxy_seed, LinkState};
use crate::{StaticWorkload, Topology};
use simcore::rng::Rng;
use simcore::stats::{BatchMeans, Welford};
use simcore::Scheduler;
use std::collections::HashMap;

#[derive(Clone, Copy)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

#[derive(Clone, Copy)]
struct Job {
    proxy: u32,
    shard: u32,
    hop: usize,
    size: f64,
    issued: f64,
    kind: JobKind,
}

struct ProxyState {
    rng: Rng,
    prefetch_rng: Rng,
    h: f64,
    lambda: f64,
    prefetch_rate: f64,
    next_request_t: f64,
    next_prefetch_t: f64,
    issued: u64,
    in_window: bool,
    access_times: BatchMeans,
    retrievals: Welford,
    hits: u64,
    total_job_time: f64,
    prefetch_jobs: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
}

/// Open-loop simulation state plus one handler per event kind; drivers
/// own only event selection (see the closed-loop twin for the rationale).
pub(crate) struct Engine<'a> {
    topology: &'a Topology,
    w: &'a StaticWorkload<'a>,
    n_shards: u64,
    pub(crate) links: Vec<LinkState>,
    proxies: Vec<ProxyState>,
    jobs: HashMap<u64, Job>,
    next_job_id: u64,
    t_end: f64,
    warm: u64,
    n_requests: u64,
    /// Links touched since the driver last re-synced timers.
    pub(crate) dirty_links: Vec<usize>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        topology: &'a Topology,
        w: &'a StaticWorkload<'a>,
        requests: usize,
        warmup: usize,
        seed: u64,
    ) -> Self {
        let links: Vec<LinkState> = topology.links().iter().map(LinkState::new).collect();
        let proxies: Vec<ProxyState> = w
            .proxies
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Draw order matches netsim::parametric::run exactly: split
                // the prefetch stream first, then the first inter-arrival
                // gaps.
                let mut rng = Rng::new(proxy_seed(seed, i));
                let prefetch_rate = p.n_f * p.lambda;
                let mut prefetch_rng = rng.split();
                let next_request_t = rng.exp(p.lambda);
                let next_prefetch_t = if prefetch_rate > 0.0 {
                    prefetch_rng.exp(prefetch_rate)
                } else {
                    f64::INFINITY
                };
                ProxyState {
                    rng,
                    prefetch_rng,
                    h: (p.h_prime + p.n_f * p.p).min(1.0),
                    lambda: p.lambda,
                    prefetch_rate,
                    next_request_t,
                    next_prefetch_t,
                    issued: 0,
                    in_window: false,
                    access_times: BatchMeans::new(20),
                    retrievals: Welford::new(),
                    hits: 0,
                    total_job_time: 0.0,
                    prefetch_jobs: 0,
                    demand_bytes: 0.0,
                    prefetch_bytes: 0.0,
                }
            })
            .collect();

        Engine {
            topology,
            w,
            n_shards: topology.n_shards() as u64,
            links,
            proxies,
            jobs: HashMap::new(),
            next_job_id: 0,
            t_end: 0.0,
            warm: warmup as u64,
            n_requests: requests as u64,
            dirty_links: Vec::new(),
        }
    }

    pub(crate) fn n_proxies(&self) -> usize {
        self.proxies.len()
    }

    /// When proxy `i`'s next request arrives, while its stream is live.
    pub(crate) fn request_due(&self, i: usize) -> Option<f64> {
        let p = &self.proxies[i];
        (p.issued < self.n_requests).then_some(p.next_request_t)
    }

    /// When proxy `i`'s next Poissonised prefetch fires. The prefetch
    /// stream of a proxy stops with its request stream.
    pub(crate) fn prefetch_due(&self, i: usize) -> Option<f64> {
        let p = &self.proxies[i];
        (p.issued < self.n_requests && p.next_prefetch_t.is_finite()).then_some(p.next_prefetch_t)
    }

    fn launch(&mut self, t: f64, job: Job) {
        let first = self.topology.route(job.proxy as usize, job.shard as usize)[0];
        let id = self.next_job_id;
        self.next_job_id += 1;
        self.jobs.insert(id, job);
        self.links[first].arrive(t, job.size, id);
        self.dirty_links.push(first);
    }

    /// A link departure event on link `l` at time `t`.
    pub(crate) fn on_link(&mut self, t: f64, l: usize) {
        self.t_end = t;
        self.dirty_links.push(l);
        for c in self.links[l].on_event(t) {
            let job = self.jobs[&c.tag];
            self.links[l].bytes_carried += job.size;
            let route = self.topology.route(job.proxy as usize, job.shard as usize);
            if job.hop + 1 < route.len() {
                // Tandem hop: forward to the next link unchanged.
                let mut fwd = job;
                fwd.hop += 1;
                self.jobs.insert(c.tag, fwd);
                self.links[route[fwd.hop]].arrive(t, fwd.size, c.tag);
                self.dirty_links.push(route[fwd.hop]);
            } else {
                self.jobs.remove(&c.tag);
                let sojourn = t - job.issued;
                let p = &mut self.proxies[job.proxy as usize];
                match job.kind {
                    JobKind::Demand { measured } => {
                        if measured {
                            p.access_times.push(sojourn);
                            p.retrievals.push(sojourn);
                            p.total_job_time += sojourn;
                        }
                    }
                    JobKind::Prefetch { measured } => {
                        if measured {
                            p.total_job_time += sojourn;
                        }
                    }
                }
            }
        }
    }

    /// The next user request of proxy `i`.
    pub(crate) fn on_request(&mut self, i: usize) {
        let n_shards = self.n_shards;
        let p = &mut self.proxies[i];
        let t = p.next_request_t;
        self.t_end = t;
        let idx = p.issued;
        p.issued += 1;
        p.in_window = idx >= self.warm;
        if p.rng.chance(p.h) {
            if p.in_window {
                p.access_times.push(0.0);
                p.hits += 1;
            }
            p.next_request_t = t + p.rng.exp(p.lambda);
        } else {
            let size = self.w.size_dist.sample(&mut p.rng);
            let shard = if n_shards > 1 { p.rng.below(n_shards) } else { 0 };
            p.demand_bytes += size;
            let measured = p.in_window;
            p.next_request_t = t + p.rng.exp(p.lambda);
            self.launch(
                t,
                Job {
                    proxy: i as u32,
                    shard: shard as u32,
                    hop: 0,
                    size,
                    issued: t,
                    kind: JobKind::Demand { measured },
                },
            );
        }
    }

    /// The next Poissonised prefetch of proxy `i`.
    pub(crate) fn on_prefetch(&mut self, i: usize) {
        let n_shards = self.n_shards;
        let p = &mut self.proxies[i];
        let t = p.next_prefetch_t;
        self.t_end = t;
        let size = self.w.size_dist.sample(&mut p.prefetch_rng);
        let shard = if n_shards > 1 { p.prefetch_rng.below(n_shards) } else { 0 };
        p.prefetch_jobs += 1;
        p.prefetch_bytes += size;
        let measured = p.in_window;
        p.next_prefetch_t = t + p.prefetch_rng.exp(p.prefetch_rate);
        self.launch(
            t,
            Job {
                proxy: i as u32,
                shard: shard as u32,
                hop: 0,
                size,
                issued: t,
                kind: JobKind::Prefetch { measured },
            },
        );
    }

    pub(crate) fn into_report(self) -> ClusterReport {
        let measured = self.n_requests - self.warm;
        let n_requests = self.n_requests;
        let nodes: Vec<NodeReport> = self
            .proxies
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (mean_access, ci) = p.access_times.mean_ci();
                NodeReport {
                    proxy: i,
                    measured_requests: measured,
                    hit_ratio: p.hits as f64 / measured as f64,
                    mean_access_time: mean_access,
                    access_time_ci95: ci,
                    mean_retrieval_time: p.retrievals.mean(),
                    retrieval_per_request: p.total_job_time / measured as f64,
                    prefetches_per_request: p.prefetch_jobs as f64 / n_requests as f64,
                    goodput_bytes: None,
                    badput_bytes: None,
                    demand_bytes: p.demand_bytes,
                    // The open loop models hits as Bernoulli draws — there
                    // is no cache to meter, hence no digest-delta stream
                    // to emit either.
                    cache_used_bytes: None,
                    peer_bytes: None,
                    peer_fetches: None,
                    peer_false_hits: None,
                    mean_threshold: None,
                    rho_prime_estimate: None,
                    h_prime_estimate: None,
                }
            })
            .collect();

        let t_end = self.t_end;
        let link_reports: Vec<LinkReport> = self
            .topology
            .links()
            .iter()
            .zip(&self.links)
            .map(|(spec, state)| LinkReport {
                name: spec.name.clone(),
                utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
                bytes_carried: state.bytes_carried,
                jobs_completed: state.jobs_completed,
            })
            .collect();

        let total_measured: u64 = measured * self.proxies.len() as u64;
        let mean_access_time =
            nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
                / total_measured as f64;
        let total_bytes: f64 = self.proxies.iter().map(|p| p.demand_bytes + p.prefetch_bytes).sum();

        ClusterReport {
            nodes,
            links: link_reports,
            mean_access_time,
            bytes_per_request: total_bytes / (n_requests * self.proxies.len() as u64) as f64,
            duration: t_end,
            coop: None,
        }
    }
}

/// Runs the open loop on the indexed event scheduler. Timer-key layout as
/// in the closed loop: `[0, L)` links, `[L, L+P)` requests, `[L+P, L+2P)`
/// prefetch streams — ascending-key tie order reproduces the engine's
/// historical link < request < prefetch precedence.
pub(crate) fn run(
    topology: &Topology,
    w: &StaticWorkload<'_>,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let mut eng = Engine::new(topology, w, requests, warmup, seed);
    let n_links = eng.links.len();
    let n_proxies = eng.n_proxies();
    let req_key = n_links;
    let pre_key = n_links + n_proxies;
    let mut sched = Scheduler::with_timers(n_links + 2 * n_proxies);

    for i in 0..n_proxies {
        if let Some(t) = eng.request_due(i) {
            sched.schedule(req_key + i, t);
        }
        if let Some(t) = eng.prefetch_due(i) {
            sched.schedule(pre_key + i, t);
        }
    }

    while let Some((t, key)) = sched.pop() {
        if key < n_links {
            eng.on_link(t, key);
        } else if key < pre_key {
            let i = key - req_key;
            eng.on_request(i);
            sched.sync(req_key + i, eng.request_due(i));
            // The final request shuts the proxy's prefetch stream down.
            sched.sync(pre_key + i, eng.prefetch_due(i));
        } else {
            let i = key - pre_key;
            eng.on_prefetch(i);
            sched.sync(pre_key + i, eng.prefetch_due(i));
        }
        while let Some(l) = eng.dirty_links.pop() {
            eng.links[l].sync_timer(&mut sched, l);
        }
    }
    eng.into_report()
}
