//! Open-loop (Model-A mechanism) cluster engine.
//!
//! Each proxy reproduces `netsim::parametric`'s mechanism on its own RNG
//! streams: Poisson(λ) user requests, Bernoulli hits at
//! `h = h′ + n̄(F)·p`, a Poissonised prefetch stream of rate `n̄(F)·λ`,
//! and demand fetches that traverse the proxy's route of queueing links
//! instead of one shared server. With the single-proxy, single-link
//! topology the event sequence — and therefore every measured number — is
//! *identical* to `netsim::parametric::run` at the same seed; that parity
//! is pinned by a test against 1e-6.
//!
//! Like the closed loop, the module is an [`Engine`] — a scope of state
//! plus one handler per event kind — driven by the [`crate::shard`]
//! drivers (single-threaded merge, or conservative windows across
//! threads); the retired O(links + proxies) scan driver lives in
//! [`crate::legacy`] and is pinned identical by the engine-parity tests.

use crate::obs::{ClusterObs, EngineObs};
use crate::report::{ClusterReport, LinkReport, NodeReport};
use crate::shard::{
    self, Effect, ShardRunner, CLASS_ARRIVE, CLASS_CHECK, CLASS_DELIVER, CLASS_DEPART, CLASS_FAIL,
    CLASS_PREFETCH, CLASS_REQUEST, N_CLASSES,
};
use crate::sim::{proxy_seed, LinkState, Scope, ScopeIndex};
use crate::topology::ShardPlan;
use crate::{StaticWorkload, Topology};
use cachesim::{FetchDecision, FetchOrigin, Mshr, Waiter};
use coop::Router;
use simcore::faults::{FaultConfig, FaultKind};
use simcore::obs::ObsConfig;
use simcore::rng::Rng;
use simcore::sched::TimedQueue;
use simcore::stats::{BatchMeans, Welford};
use simcore::trace::{self, SpanEvent, SpanKind, TraceBuf, TraceStore, TF_MEASURED, TF_PREFETCH};
use simcore::{Registry, Scheduler};
use std::collections::HashMap;
use workload::{ItemId, TraceRecord};

#[derive(Clone, Copy, Debug)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Job {
    /// Per-proxy sequential id (sharding-independent tie-breaker).
    id: u64,
    proxy: u32,
    shard: u32,
    hop: usize,
    size: f64,
    issued: f64,
    /// Catalog item id of a demand fetch in catalog mode
    /// ([`StaticWorkload::catalog_items`]); `u64::MAX` for the itemless
    /// flow and for the Poissonised prefetch stream.
    item: u64,
    kind: JobKind,
    /// Trace id when head-sampled, 0 otherwise (see the closed-loop twin).
    trace: u64,
    /// Per-trace record counter.
    tseq: u32,
}

struct ProxyState {
    rng: Rng,
    prefetch_rng: Rng,
    h: f64,
    lambda: f64,
    prefetch_rate: f64,
    next_request_t: f64,
    next_prefetch_t: f64,
    job_seq: u64,
    issued: u64,
    in_window: bool,
    access_times: BatchMeans,
    retrievals: Welford,
    hits: u64,
    total_job_time: f64,
    prefetch_jobs: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
    /// Outstanding-fetch table in catalog mode (`Some` exactly when the
    /// workload sets [`StaticWorkload::catalog_items`]): misses for
    /// in-flight items coalesce onto the fetch's FIFO waiter queue
    /// instead of launching a second transfer.
    mshr: Option<Mshr<u64>>,
    /// Measured requests settled as delayed hits.
    delayed_hits: u64,
    /// Residual waits of those measured delayed hits.
    residual: Welford,
    /// Fetch attempts that expired without an answer (fault runs only).
    timeouts: u64,
    /// Retry attempts launched after a timeout (fault runs only).
    retries: u64,
    /// Fetches that exhausted their attempt budget (fault runs only).
    failed_fetches: u64,
    /// Measured requests that ended in failure instead of data.
    measured_failed: u64,
}

/// One scope of open-loop simulation state plus one handler per event
/// kind; drivers own only event selection and effect routing (see the
/// closed-loop twin for the rationale).
pub(crate) struct Engine<'a> {
    topology: &'a Topology,
    w: &'a StaticWorkload<'a>,
    n_shards: u64,
    pub(crate) scope: Scope,
    pub(crate) links: Vec<LinkState>,
    proxies: Vec<ProxyState>,
    jobs: HashMap<u64, Job>,
    arrivals: Vec<TimedQueue<Job>>,
    delivers: Vec<TimedQueue<(Job, bool)>>,
    /// Analytically-resolved fetch failures pending settlement, one queue
    /// per local proxy (empty without a fault plan).
    fails: Vec<TimedQueue<Job>>,
    /// The fault plan and retry policy, when this is a fault run.
    faults: Option<&'a FaultConfig>,
    /// The run seed (feeds the deterministic loss/backoff hashes).
    seed: u64,
    effects: Vec<Effect<Job>>,
    dirty: Vec<(usize, usize)>,
    t_end: f64,
    warm: u64,
    n_requests: u64,
    /// Probe state when this run is observed (see the closed-loop twin).
    obs: Option<Box<EngineObs>>,
    /// Span buffer when this run is traced (see the closed-loop twin).
    trace: Option<Box<TraceBuf>>,
    /// Per-local-proxy recorded requests when this run records a trace.
    /// Bernoulli hits record item `u64::MAX` and size 0 (the open loop
    /// draws neither); catalog-mode misses record their item and size.
    recorder: Option<Vec<Vec<TraceRecord>>>,
}

/// Appends one span record for a traced job (itemless jobs carry
/// `u64::MAX` in the record; catalog-mode demand fetches their item id).
#[inline]
fn trace_job(
    buf: &mut Option<Box<TraceBuf>>,
    job: &mut Job,
    t: f64,
    kind: SpanKind,
    entity: u64,
    aux: f64,
    flags: u8,
) {
    if let Some(b) = buf.as_deref_mut() {
        if job.trace != 0 {
            let seq = job.tseq;
            job.tseq += 1;
            b.push(SpanEvent {
                trace: job.trace,
                seq,
                t,
                kind,
                entity,
                aux,
                item: job.item,
                flags,
            });
        }
    }
}

/// Appends a single-record trace (a Bernoulli hit or an in-flight wait).
#[inline]
#[allow(clippy::too_many_arguments)]
fn trace_point(
    buf: &mut Option<Box<TraceBuf>>,
    id: u64,
    t: f64,
    kind: SpanKind,
    entity: u64,
    aux: f64,
    item: u64,
    flags: u8,
) {
    if id != 0 {
        if let Some(b) = buf.as_deref_mut() {
            b.push(SpanEvent { trace: id, seq: 0, t, kind, entity, aux, item, flags });
        }
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        topology: &'a Topology,
        w: &'a StaticWorkload<'a>,
        requests: usize,
        warmup: usize,
        seed: u64,
        scope: Scope,
        faults: Option<&'a FaultConfig>,
    ) -> Self {
        if let Some(fc) = faults {
            fc.retry.validate();
        }
        let links: Vec<LinkState> =
            scope.links.iter().map(|&g| LinkState::new(&topology.links()[g])).collect();
        let proxies: Vec<ProxyState> = scope
            .proxies
            .iter()
            .map(|&i| {
                let p = &w.proxies[i];
                // Draw order matches netsim::parametric::run exactly: split
                // the prefetch stream first, then the first inter-arrival
                // gaps.
                let mut rng = Rng::new(proxy_seed(seed, i));
                let prefetch_rate = p.n_f * p.lambda;
                let mut prefetch_rng = rng.split();
                let next_request_t = rng.exp(p.lambda);
                let next_prefetch_t = if prefetch_rate > 0.0 {
                    prefetch_rng.exp(prefetch_rate)
                } else {
                    f64::INFINITY
                };
                ProxyState {
                    rng,
                    prefetch_rng,
                    h: (p.h_prime + p.n_f * p.p).min(1.0),
                    lambda: p.lambda,
                    prefetch_rate,
                    next_request_t,
                    next_prefetch_t,
                    job_seq: 0,
                    issued: 0,
                    in_window: false,
                    access_times: BatchMeans::new(20),
                    retrievals: Welford::new(),
                    hits: 0,
                    total_job_time: 0.0,
                    prefetch_jobs: 0,
                    demand_bytes: 0.0,
                    prefetch_bytes: 0.0,
                    mshr: w.catalog_items.map(|_| Mshr::unbounded()),
                    delayed_hits: 0,
                    residual: Welford::new(),
                    timeouts: 0,
                    retries: 0,
                    failed_fetches: 0,
                    measured_failed: 0,
                }
            })
            .collect();

        Engine {
            topology,
            w,
            n_shards: topology.n_shards() as u64,
            links,
            proxies,
            jobs: HashMap::new(),
            arrivals: (0..scope.links.len()).map(|_| TimedQueue::new()).collect(),
            delivers: (0..scope.proxies.len()).map(|_| TimedQueue::new()).collect(),
            fails: (0..scope.proxies.len()).map(|_| TimedQueue::new()).collect(),
            faults,
            seed,
            effects: Vec::new(),
            dirty: Vec::new(),
            t_end: 0.0,
            warm: warmup as u64,
            n_requests: requests as u64,
            scope,
            obs: None,
            trace: None,
            recorder: None,
        }
    }

    /// Arms this scope's observability probes.
    pub(crate) fn attach_obs(&mut self, o: EngineObs) {
        self.obs = Some(Box::new(o));
    }

    /// Arms this scope's request recorder (see the closed-loop twin).
    pub(crate) fn attach_recorder(&mut self) {
        self.recorder = Some(vec![Vec::new(); self.proxies.len()]);
    }

    /// Takes this scope's recorded requests, tagged with global proxy ids.
    pub(crate) fn take_recorded(&mut self) -> Vec<(usize, Vec<TraceRecord>)> {
        match self.recorder.take() {
            Some(parts) => self.scope.proxies.iter().copied().zip(parts).collect(),
            None => Vec::new(),
        }
    }

    /// Arms this scope's span buffer, head-sampling 1-in-`every`.
    pub(crate) fn attach_trace(&mut self, every: u64) {
        self.trace = Some(Box::new(TraceBuf::new(every)));
    }

    /// Takes this scope's recorded span events (empties the buffer).
    pub(crate) fn take_trace_events(&mut self) -> Vec<SpanEvent> {
        self.trace.take().map(|b| b.events).unwrap_or_default()
    }

    /// Flushes sampling-grid points at or before `t` — entry of every
    /// public handler, before any mutation at `t` (see the closed-loop
    /// twin for the determinism argument). The open loop has no caches or
    /// trackable prefetch set, so the aggregate probes report zero.
    fn obs_tick(&mut self, t: f64) {
        let Some(mut o) = self.obs.take() else { return };
        let proxies = &self.proxies;
        o.tick(t, &self.links, || {
            let outstanding =
                proxies.iter().map(|p| p.mshr.as_ref().map_or(0, Mshr::len)).sum::<usize>();
            (0.0, outstanding as f64)
        });
        self.obs = Some(o);
    }

    /// Final grid flush at the cluster-wide `t_end`, returning this
    /// scope's registry for merging (`None` when unobserved).
    pub(crate) fn obs_finish(&mut self, t_end: f64) -> Option<Registry> {
        let mut o = self.obs.take()?;
        let proxies = &self.proxies;
        o.tick(t_end, &self.links, || {
            let outstanding =
                proxies.iter().map(|p| p.mshr.as_ref().map_or(0, Mshr::len)).sum::<usize>();
            (0.0, outstanding as f64)
        });
        Some(o.finish())
    }

    /// Local proxy count (the legacy scan's iteration bound).
    #[cfg(feature = "legacy-oracle")]
    pub(crate) fn n_proxies(&self) -> usize {
        self.proxies.len()
    }

    /// When local proxy `i`'s next request arrives, while its stream is
    /// live.
    pub(crate) fn request_due(&self, i: usize) -> Option<f64> {
        let p = &self.proxies[i];
        (p.issued < self.n_requests).then_some(p.next_request_t)
    }

    /// When local proxy `i`'s next Poissonised prefetch fires. The
    /// prefetch stream of a proxy stops with its request stream.
    pub(crate) fn prefetch_due(&self, i: usize) -> Option<f64> {
        let p = &self.proxies[i];
        (p.issued < self.n_requests && p.next_prefetch_t.is_finite()).then_some(p.next_prefetch_t)
    }

    /// Entry propagation of global link `g` at `now`, inflated by the
    /// plan's active degradation factor. Bit-identity: the multiply only
    /// happens when the factor differs from one, so an empty plan never
    /// touches the base latency's float path.
    fn entry_latency_at(&self, g: usize, now: f64) -> f64 {
        let base = self.topology.entry_latency(g);
        if let Some(fc) = self.faults {
            let f = fc.plan.link_latency_factor(g, now);
            if f != 1.0 {
                return base * f;
            }
        }
        base
    }

    /// Summed return propagation of `route` at `now`, per-hop inflated
    /// like [`Engine::entry_latency_at`].
    fn return_latency_at(&self, route: &[usize], now: f64) -> f64 {
        match self.faults {
            Some(fc) => route
                .iter()
                .map(|&g| {
                    let base = self.topology.entry_latency(g);
                    let f = fc.plan.link_latency_factor(g, now);
                    if f != 1.0 {
                        base * f
                    } else {
                        base
                    }
                })
                .sum(),
            None => self.topology.return_latency(route),
        }
    }

    fn send_arrive(&mut self, g: usize, now: f64, job: Job) {
        let tau = now + self.entry_latency_at(g, now);
        self.effects.push(Effect::Arrive { link: g as u32, t: tau, job });
    }

    /// Any link on `job`'s route down at `t`, or the origin blacked out?
    /// A pure query of the static plan — identical under every sharding.
    fn route_dark(&self, job: &Job, t: f64) -> bool {
        let Some(fc) = self.faults else { return false };
        if fc.plan.origin_dark(t) {
            return true;
        }
        self.topology
            .route(job.proxy as usize, job.shard as usize)
            .iter()
            .any(|&g| fc.plan.link_down(g, t))
    }

    /// Does attempt `attempt` of `job`, launched at `t`, make it?
    fn attempt_survives(&self, fc: &FaultConfig, job: &Job, attempt: u32, t: f64) -> bool {
        if self.route_dark(job, t) {
            return false;
        }
        !self
            .topology
            .route(job.proxy as usize, job.shard as usize)
            .iter()
            .any(|&g| fc.plan.attempt_lost(self.seed, g, job.id, attempt, t))
    }

    /// Injects `job` onto the first link of its route at time `t`.
    ///
    /// Under a fault plan the whole timeout–retry–backoff schedule
    /// resolves here, analytically: the plan is static, so each attempt's
    /// fate is a pure function of its launch instant (see the closed-loop
    /// twin for the full argument). Prefetches get exactly one attempt.
    fn launch(&mut self, t: f64, mut job: Job) {
        let Some(fc) = self.faults else {
            let first = self.topology.route(job.proxy as usize, job.shard as usize)[0];
            self.send_arrive(first, t, job);
            return;
        };
        let attempts = match job.kind {
            JobKind::Demand { .. } => fc.retry.attempts(),
            JobKind::Prefetch { .. } => 1,
        };
        let mut t_att = t;
        for attempt in 0..attempts {
            if self.attempt_survives(fc, &job, attempt, t_att) {
                let first = self.topology.route(job.proxy as usize, job.shard as usize)[0];
                self.send_arrive(first, t_att, job);
                return;
            }
            let i = self.scope.proxy_local(job.proxy as usize).expect("launch in scope");
            self.proxies[i].timeouts += 1;
            let expiry = t_att + fc.retry.timeout;
            if attempt + 1 < attempts {
                self.proxies[i].retries += 1;
                let next = expiry + fc.retry.backoff(self.seed, job.id, attempt);
                let jp = job.proxy as u64;
                trace_job(&mut self.trace, &mut job, next, SpanKind::Retry, jp, expiry, 0);
                t_att = next;
            } else {
                self.effects.push(Effect::Fail { p: job.proxy, t: expiry, job });
                return;
            }
        }
    }

    /// A link departure event on local link `l` at time `t`.
    pub(crate) fn on_link(&mut self, t: f64, l: usize) {
        self.obs_tick(t);
        self.t_end = t;
        self.dirty.push((CLASS_DEPART, l));
        let done = self.links[l].on_event(t);
        if let Some(o) = self.obs.as_deref_mut() {
            o.jobs_completed(l, done.len());
        }
        let g_l = self.scope.links[l];
        let bandwidth = self.topology.links()[g_l].bandwidth;
        for c in done {
            let mut job = self.jobs.remove(&c.tag).expect("completed job on this scope's link");
            self.links[l].bytes_carried += job.size;
            let service = job.size / bandwidth;
            trace_job(&mut self.trace, &mut job, t, SpanKind::Dequeue, g_l as u64, service, 0);
            let route = self.topology.route(job.proxy as usize, job.shard as usize);
            if job.hop + 1 < route.len() {
                // Tandem hop: forward to the next link unchanged.
                let mut fwd = job;
                fwd.hop += 1;
                self.send_arrive(route[fwd.hop], t, fwd);
            } else {
                let mut tau = t + self.return_latency_at(route, t);
                // Every open-loop fetch is an origin fetch: a brownout
                // inflates its response by the active delay.
                if let Some(fc) = self.faults {
                    let d = fc.plan.origin_delay(t);
                    if d > 0.0 {
                        tau += d;
                    }
                }
                self.effects.push(Effect::Deliver { p: job.proxy, t: tau, job, false_hit: false });
            }
        }
    }

    /// Queued arrivals on local link `l` coming due at `t`.
    pub(crate) fn on_arrivals(&mut self, t: f64, l: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some(job) = self.arrivals[l].pop_due(t) {
            self.arrive_now(l, t, job);
        }
        self.dirty.push((CLASS_ARRIVE, l));
    }

    fn arrive_now(&mut self, l: usize, t: f64, mut job: Job) {
        trace_job(
            &mut self.trace,
            &mut job,
            t,
            SpanKind::Enqueue,
            self.scope.links[l] as u64,
            0.0,
            0,
        );
        self.jobs.insert(job.id, job);
        self.links[l].arrive(t, job.size, job.id);
        if let Some(o) = self.obs.as_deref_mut() {
            o.job_arrived(l);
        }
        self.dirty.push((CLASS_DEPART, l));
    }

    /// Queued deliveries at local proxy `i` coming due at `t`.
    pub(crate) fn on_delivers(&mut self, t: f64, i: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some((job, _)) = self.delivers[i].pop_due(t) {
            self.deliver_now(i, t, job);
        }
        self.dirty.push((CLASS_DELIVER, i));
    }

    /// `job`'s response lands at its requesting proxy — local index `i`.
    fn deliver_now(&mut self, i: usize, t: f64, mut job: Job) {
        self.t_end = t;
        debug_assert_eq!(self.scope.proxies[i], job.proxy as usize);
        let jp = job.proxy as u64;
        trace_job(&mut self.trace, &mut job, t, SpanKind::Deliver, jp, 0.0, 0);
        let sojourn = t - job.issued;
        let p = &mut self.proxies[i];
        match job.kind {
            JobKind::Demand { measured } => {
                if measured {
                    p.access_times.push(sojourn);
                    p.retrievals.push(sojourn);
                    p.total_job_time += sojourn;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.latency(sojourn);
                    }
                }
                // Catalog mode: the landing settles the item's
                // outstanding entry — every coalesced waiter's clock
                // stops now, in FIFO order.
                if job.item != u64::MAX {
                    if let Some(entry) = p.mshr.as_mut().and_then(|m| m.complete(&job.item)) {
                        for w in &entry.waiters {
                            let wf = if w.measured { TF_MEASURED } else { 0 };
                            trace_point(
                                &mut self.trace,
                                w.trace,
                                t,
                                SpanKind::Wait,
                                jp,
                                w.t,
                                job.item,
                                wf,
                            );
                            if w.measured {
                                p.delayed_hits += 1;
                                p.residual.push(t - w.t);
                                p.access_times.push(t - w.t);
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.latency(t - w.t);
                                }
                            }
                        }
                    }
                }
            }
            JobKind::Prefetch { measured } => {
                if measured {
                    p.total_job_time += sojourn;
                }
            }
        }
    }

    /// The next user request of local proxy `i`.
    pub(crate) fn on_request(&mut self, i: usize) {
        let me = self.scope.proxies[i];
        let n_shards = self.n_shards;
        let t_req = self.proxies[i].next_request_t;
        self.obs_tick(t_req);
        if let Some(o) = self.obs.as_deref_mut() {
            o.request();
        }
        let p = &mut self.proxies[i];
        let t = p.next_request_t;
        self.t_end = t;
        let idx = p.issued;
        p.issued += 1;
        p.in_window = idx >= self.warm;
        // Head sampling is a pure hash of `(proxy, request index)`.
        let rid = match self.trace.as_deref() {
            Some(b) => b.admit(trace::request_trace_id(me as u64, idx)),
            None => 0,
        };
        let mf = if p.in_window { TF_MEASURED } else { 0 };
        if p.rng.chance(p.h) {
            if let Some(rec) = self.recorder.as_mut() {
                // A Bernoulli hit draws no item or size; record the
                // itemless sentinel so the stream stays replayable.
                rec[i].push(TraceRecord::new(t, me as u32, ItemId(u64::MAX), 0.0));
            }
            if rid != 0 {
                if let Some(b) = self.trace.as_deref_mut() {
                    b.push(SpanEvent {
                        trace: rid,
                        seq: 0,
                        t,
                        kind: SpanKind::Hit,
                        entity: me as u64,
                        aux: 0.0,
                        item: u64::MAX,
                        flags: mf,
                    });
                }
            }
            if p.in_window {
                p.access_times.push(0.0);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.latency(0.0);
                }
                p.hits += 1;
            }
            p.next_request_t = t + p.rng.exp(p.lambda);
        } else {
            let size = self.w.size_dist.sample(&mut p.rng);
            let measured = p.in_window;
            // Catalog mode draws a concrete item id (shard = item mod
            // n_shards) and consults the MSHR table — a miss for an
            // in-flight item coalesces onto its waiter queue instead of
            // launching a second transfer. The itemless flow keeps the
            // exact draw order of `netsim::parametric` (a shard id is
            // drawn only on sharded topologies).
            let (item, shard, launch) = match self.w.catalog_items {
                Some(n) => {
                    let item = p.rng.below(n);
                    let waiter = Waiter { t, measured, trace: rid };
                    let decision = p
                        .mshr
                        .as_mut()
                        .expect("catalog mode carries a table")
                        .on_demand_miss(item, t, size, waiter);
                    // Unbounded coalescing: never a bypass.
                    (item, item % n_shards, decision == FetchDecision::Launch)
                }
                None => (u64::MAX, if n_shards > 1 { p.rng.below(n_shards) } else { 0 }, true),
            };
            if let Some(rec) = self.recorder.as_mut() {
                rec[i].push(TraceRecord::new(t, me as u32, ItemId(item), size));
            }
            p.next_request_t = t + p.rng.exp(p.lambda);
            if launch {
                p.demand_bytes += size;
                p.job_seq += 1;
                let id = ((me as u64) << 40) | p.job_seq;
                let mut job = Job {
                    id,
                    proxy: me as u32,
                    shard: shard as u32,
                    hop: 0,
                    size,
                    issued: t,
                    item,
                    kind: JobKind::Demand { measured },
                    trace: rid,
                    tseq: 0,
                };
                trace_job(&mut self.trace, &mut job, t, SpanKind::Issue, me as u64, t, mf);
                self.launch(t, job);
            }
            // A coalesced miss records no job: its Wait span and access
            // time land when the blocking fetch settles.
        }
        self.dirty.push((CLASS_REQUEST, i));
        self.dirty.push((CLASS_PREFETCH, i));
    }

    /// The next Poissonised prefetch of local proxy `i`.
    pub(crate) fn on_prefetch(&mut self, i: usize) {
        let me = self.scope.proxies[i];
        let n_shards = self.n_shards;
        let t_pfx = self.proxies[i].next_prefetch_t;
        self.obs_tick(t_pfx);
        if let Some(o) = self.obs.as_deref_mut() {
            o.prefetch_issued();
        }
        let p = &mut self.proxies[i];
        let t = p.next_prefetch_t;
        self.t_end = t;
        let size = self.w.size_dist.sample(&mut p.prefetch_rng);
        let shard = if n_shards > 1 { p.prefetch_rng.below(n_shards) } else { 0 };
        p.prefetch_jobs += 1;
        p.prefetch_bytes += size;
        let measured = p.in_window;
        p.next_prefetch_t = t + p.prefetch_rng.exp(p.prefetch_rate);
        p.job_seq += 1;
        let id = ((me as u64) << 40) | p.job_seq;
        let tid = match self.trace.as_deref() {
            Some(b) => b.admit(trace::prefetch_trace_id(me as u64, id & ((1 << 40) - 1))),
            None => 0,
        };
        self.dirty.push((CLASS_PREFETCH, i));
        let mut job = Job {
            id,
            proxy: me as u32,
            shard: shard as u32,
            hop: 0,
            size,
            issued: t,
            // The Poissonised prefetch stream is abstract volume, not a
            // concrete item — it never touches the MSHR table.
            item: u64::MAX,
            kind: JobKind::Prefetch { measured },
            trace: tid,
            tseq: 0,
        };
        let mf = if measured { TF_MEASURED } else { 0 };
        trace_job(&mut self.trace, &mut job, t, SpanKind::Issue, me as u64, t, TF_PREFETCH | mf);
        self.launch(t, job);
    }

    /// Queued fetch-failure settlements at local proxy `i` coming due at
    /// `t` (fault runs only).
    pub(crate) fn on_fails(&mut self, t: f64, i: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some(job) = self.fails[i].pop_due(t) {
            self.fail_now(i, t, job);
        }
        self.dirty.push((CLASS_FAIL, i));
    }

    /// `job`'s fetch exhausted its attempt budget — settle it (and, in
    /// catalog mode, every coalesced waiter) as failed at `t`, refunding
    /// the never-launched transfer's bytes (see the closed-loop twin).
    fn fail_now(&mut self, i: usize, t: f64, mut job: Job) {
        self.t_end = t;
        debug_assert_eq!(self.scope.proxies[i], job.proxy as usize);
        let jp = job.proxy as u64;
        let pf = if matches!(job.kind, JobKind::Prefetch { .. }) { TF_PREFETCH } else { 0 };
        trace_job(&mut self.trace, &mut job, t, SpanKind::Failed, jp, 0.0, pf);
        let p = &mut self.proxies[i];
        p.failed_fetches += 1;
        match job.kind {
            JobKind::Demand { measured } => {
                p.demand_bytes -= job.size;
                if measured {
                    let sojourn = t - job.issued;
                    p.measured_failed += 1;
                    p.access_times.push(sojourn);
                    p.total_job_time += sojourn;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.latency(sojourn);
                    }
                }
                // Catalog mode: reclassify the outstanding entry as failed
                // and settle its waiters — unless a crash already drained
                // it (the generation guard on `issued`).
                if job.item != u64::MAX {
                    let entry = p.mshr.as_mut().and_then(|m| {
                        m.entry(&job.item)
                            .is_some_and(|e| {
                                e.origin == FetchOrigin::Demand && e.issued == job.issued
                            })
                            .then(|| m.fail(&job.item))
                            .flatten()
                    });
                    if let Some(entry) = entry {
                        for w in &entry.waiters {
                            let wf = if w.measured { TF_MEASURED } else { 0 };
                            trace_point(
                                &mut self.trace,
                                w.trace,
                                t,
                                SpanKind::Wait,
                                jp,
                                w.t,
                                job.item,
                                wf,
                            );
                            if w.measured {
                                p.measured_failed += 1;
                                p.access_times.push(t - w.t);
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.latency(t - w.t);
                                }
                            }
                        }
                    }
                }
            }
            JobKind::Prefetch { .. } => {
                // The Poissonised prefetch stream is itemless volume: no
                // MSHR reservation to settle, just the byte refund.
                p.prefetch_bytes -= job.size;
            }
        }
    }
}

impl shard::EngineCore for Engine<'_> {
    type Job = Job;

    fn class_counts(&self) -> [usize; N_CLASSES] {
        let (l, p) = (self.links.len(), self.proxies.len());
        // No peer fabric in the open loop: the check class is empty.
        [l, l, 0, p, p, p, p]
    }

    fn global_id(&self, class: usize, idx: usize) -> usize {
        match class {
            CLASS_DEPART | CLASS_ARRIVE => self.scope.links[idx],
            _ => self.scope.proxies[idx],
        }
    }

    fn due(&self, class: usize, idx: usize) -> Option<f64> {
        match class {
            CLASS_DEPART => self.links[idx].next_event(),
            CLASS_ARRIVE => self.arrivals[idx].next_time(),
            CLASS_CHECK => unreachable!("open loop has no peer checks"),
            CLASS_DELIVER => self.delivers[idx].next_time(),
            CLASS_REQUEST => self.request_due(idx),
            CLASS_PREFETCH => self.prefetch_due(idx),
            CLASS_FAIL => self.fails[idx].next_time(),
            _ => unreachable!("unknown class {class}"),
        }
    }

    fn dispatch(&mut self, class: usize, idx: usize, t: f64, _router: Option<&Router>) {
        match class {
            CLASS_DEPART => self.on_link(t, idx),
            CLASS_ARRIVE => self.on_arrivals(t, idx),
            CLASS_DELIVER => self.on_delivers(t, idx),
            CLASS_REQUEST => self.on_request(idx),
            CLASS_PREFETCH => self.on_prefetch(idx),
            CLASS_FAIL => self.on_fails(t, idx),
            _ => unreachable!("unknown class {class}"),
        }
    }

    fn apply_now(&mut self, e: Effect<Job>, t: f64) {
        debug_assert_eq!(e.time(), t);
        // Tick before the mutation so grid samples stay "state before `t`"
        // under every sharding (see the closed-loop twin).
        self.obs_tick(t);
        match e {
            Effect::Arrive { link, job, .. } => {
                let l = self.scope.link_local(link as usize).expect("arrive in scope");
                self.arrive_now(l, t, job);
            }
            Effect::Check { .. } => unreachable!("open loop emits no checks"),
            Effect::Deliver { p, job, .. } => {
                let i = self.scope.proxy_local(p as usize).expect("deliver in scope");
                self.deliver_now(i, t, job);
            }
            Effect::Fail { p, job, .. } => {
                let i = self.scope.proxy_local(p as usize).expect("fail in scope");
                self.fail_now(i, t, job);
            }
        }
    }

    fn enqueue(&mut self, e: Effect<Job>) {
        match e {
            Effect::Arrive { link, t, job } => {
                let l = self.scope.link_local(link as usize).expect("arrive in scope");
                self.arrivals[l].push(t, job.id, job);
                self.dirty.push((CLASS_ARRIVE, l));
            }
            Effect::Check { .. } => unreachable!("open loop emits no checks"),
            Effect::Deliver { p, t, job, false_hit } => {
                let i = self.scope.proxy_local(p as usize).expect("deliver in scope");
                self.delivers[i].push(t, job.id, (job, false_hit));
                self.dirty.push((CLASS_DELIVER, i));
            }
            Effect::Fail { p, t, job } => {
                let i = self.scope.proxy_local(p as usize).expect("fail in scope");
                self.fails[i].push(t, job.id, job);
                self.dirty.push((CLASS_FAIL, i));
            }
        }
    }

    fn owns(&self, e: &Effect<Job>) -> bool {
        match e {
            Effect::Arrive { link, .. } => self.scope.link_local(*link as usize).is_some(),
            Effect::Check { .. } => false,
            Effect::Deliver { p, .. } => self.scope.proxy_local(*p as usize).is_some(),
            Effect::Fail { p, .. } => self.scope.proxy_local(*p as usize).is_some(),
        }
    }

    fn take_effects(&mut self, out: &mut Vec<Effect<Job>>) {
        out.append(&mut self.effects);
    }

    fn drain_dirty(&mut self, out: &mut Vec<(usize, usize)>) {
        out.append(&mut self.dirty);
    }

    fn sync_link_timer(&mut self, idx: usize, sched: &mut Scheduler, key: usize) {
        self.links[idx].sync_timer(sched, key);
    }

    fn refresh_payloads(&mut self, _out: &mut Vec<shard::BoundaryEntry>) {
        // The open loop has no caches, hence no digests to flush.
    }

    fn apply_fault(&mut self, t: f64, kind: &FaultKind) {
        match kind {
            FaultKind::ProxyCrash { proxy } => {
                let Some(i) = self.scope.proxy_local(*proxy) else { return };
                // No cache to wipe in the open loop; a crash loses only
                // the outstanding-fetch table (catalog mode), whose
                // waiters settle with a failure outcome now.
                self.t_end = self.t_end.max(t);
                let jp = *proxy as u64;
                let p = &mut self.proxies[i];
                let drained = match p.mshr.as_mut() {
                    Some(m) => m.drain_failed(),
                    None => Vec::new(),
                };
                for (item, entry) in &drained {
                    if entry.origin == FetchOrigin::Demand {
                        p.failed_fetches += 1;
                    }
                    for w in &entry.waiters {
                        let wf = if w.measured { TF_MEASURED } else { 0 };
                        trace_point(
                            &mut self.trace,
                            w.trace,
                            t,
                            SpanKind::Wait,
                            jp,
                            w.t,
                            *item,
                            wf,
                        );
                        if w.measured {
                            p.measured_failed += 1;
                            p.access_times.push(t - w.t);
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.latency(t - w.t);
                            }
                        }
                    }
                }
            }
            // No digest fabric in the open loop: nothing to lose.
            FaultKind::DigestLoss { .. } => {}
            _ => debug_assert!(false, "non-boundary fault {kind:?} routed to an engine"),
        }
    }
}

/// Assembles the cluster report from the (possibly sharded) engine
/// scopes, in global index order (see the closed-loop twin).
pub(crate) fn merge_reports(topology: &Topology, engines: Vec<Engine<'_>>) -> ClusterReport {
    let n_requests = engines[0].n_requests;
    let warm = engines[0].warm;
    let measured = n_requests - warm;
    let t_end = engines.iter().map(|e| e.t_end).fold(0.0, f64::max);

    let n_proxies = topology.n_proxies();
    let index = ScopeIndex::new(topology, engines.iter().map(|e| &e.scope));
    let proxy = |g: usize| {
        let (ei, li) = index.proxy(g);
        &engines[ei].proxies[li]
    };

    let nodes: Vec<NodeReport> = (0..n_proxies)
        .map(|g| {
            let p = proxy(g);
            let (mean_access, ci) = p.access_times.mean_ci();
            debug_assert!(
                p.mshr.as_ref().is_none_or(Mshr::conservation_ok),
                "proxy {g}: MSHR conservation law violated \
                 (origin_fetches + coalesced + failed != demand_misses)"
            );
            NodeReport {
                proxy: g,
                measured_requests: measured,
                hit_ratio: p.hits as f64 / measured as f64,
                mean_access_time: mean_access,
                access_time_ci95: ci,
                mean_retrieval_time: p.retrievals.mean(),
                retrieval_per_request: p.total_job_time / measured as f64,
                prefetches_per_request: p.prefetch_jobs as f64 / n_requests as f64,
                goodput_bytes: None,
                badput_bytes: None,
                demand_bytes: p.demand_bytes,
                // The open loop models hits as Bernoulli draws — there
                // is no cache to meter, hence no digest-delta stream
                // to emit either.
                cache_used_bytes: None,
                peer_bytes: None,
                peer_fetches: None,
                peer_false_hits: None,
                mean_threshold: None,
                rho_prime_estimate: None,
                h_prime_estimate: None,
                delayed_hits: p.mshr.as_ref().map(|_| p.delayed_hits),
                coalesced_requests: p.mshr.as_ref().map(Mshr::coalesced),
                origin_fetches: p.mshr.as_ref().map(Mshr::origin_fetches),
                mean_residual_wait: (p.delayed_hits > 0).then(|| p.residual.mean()),
                mean_waiter_depth: p.mshr.as_ref().and_then(Mshr::waiter_depth_mean),
                mshr_rejections: p.mshr.as_ref().map(Mshr::rejections),
                demand_misses: p.mshr.as_ref().map(Mshr::demand_misses),
                mshr_failed: p.mshr.as_ref().map(Mshr::failed),
                timeouts: p.timeouts,
                retries: p.retries,
                // No peer fabric to fail over from, no cache or digest
                // stream to lose.
                failovers: 0,
                failed_fetches: p.failed_fetches,
                lost_entries: 0,
                unavailability: if measured > 0 {
                    p.measured_failed as f64 / measured as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    let link_reports: Vec<LinkReport> = topology
        .links()
        .iter()
        .enumerate()
        .map(|(g, spec)| {
            let (ei, li) = index.link(g);
            let state = &engines[ei].links[li];
            LinkReport {
                name: spec.name.clone(),
                utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
                bytes_carried: state.bytes_carried,
                jobs_completed: state.jobs_completed,
            }
        })
        .collect();

    let total_measured: u64 = measured * n_proxies as u64;
    let mean_access_time =
        nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
            / total_measured as f64;
    let total_bytes: f64 =
        (0..n_proxies).map(|g| proxy(g).demand_bytes + proxy(g).prefetch_bytes).sum();

    ClusterReport {
        nodes,
        links: link_reports,
        mean_access_time,
        bytes_per_request: total_bytes / (n_requests * n_proxies as u64) as f64,
        duration: t_end,
        coop: None,
    }
}

/// Runs the open loop partitioned by `plan` — the single-shard plan is
/// the classic single-threaded driver — optionally with observability
/// attached (see the closed-loop twin).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_observed(
    topology: &Topology,
    w: &StaticWorkload<'_>,
    requests: usize,
    warmup: usize,
    seed: u64,
    plan: &ShardPlan,
    obs: Option<&ObsConfig>,
    record: bool,
    faults: Option<&FaultConfig>,
) -> (ClusterReport, Option<ClusterObs>, crate::closed_loop::RunExtras) {
    let obs_cfg = obs.filter(|c| c.enabled);
    let boundary = faults.map(|f| f.plan.boundary_events()).unwrap_or_default();
    // The open loop has no digest epochs; series need an explicit grid.
    let grid = obs_cfg.map(|c| c.sample_every.max(0.0)).unwrap_or(0.0);
    let trace_every = obs_cfg.map(|c| c.trace_every).unwrap_or(0);
    let runners: Vec<ShardRunner<Engine<'_>>> = (0..plan.n_shards())
        .map(|s| {
            let scope = Scope::shard(topology, plan, s);
            let mut engine = Engine::new(topology, w, requests, warmup, seed, scope, faults);
            if trace_every > 0 {
                engine.attach_trace(trace_every);
            }
            if record {
                engine.attach_recorder();
            }
            match obs_cfg {
                Some(cfg) => {
                    let probes = EngineObs::new(cfg, grid, topology, &engine.scope);
                    engine.attach_obs(probes);
                    ShardRunner::new(engine).with_obs(s, cfg)
                }
                None => ShardRunner::new(engine),
            }
        })
        .collect();
    let driver =
        if plan.n_shards() > 1 && plan.lookahead() > 0.0 { "windowed" } else { "sequential" };
    let (runners, _) = shard::drive(runners, None, plan, &boundary);

    let mut engines = Vec::with_capacity(plan.n_shards());
    let mut profiles = Vec::new();
    let mut flight = Vec::new();
    for r in runners {
        let (core, robs) = r.into_parts();
        if let Some(o) = robs {
            flight.extend(o.flight.records());
            profiles.push(o.profile);
        }
        engines.push(core);
    }

    let cluster_obs = obs_cfg.map(|_| {
        let t_end = engines.iter().map(|e| e.t_end).fold(0.0, f64::max);
        let registries: Vec<Registry> =
            engines.iter_mut().filter_map(|e| e.obs_finish(t_end)).collect();
        let traces = (trace_every > 0).then(|| {
            let mut events = Vec::new();
            for e in &mut engines {
                events.extend(e.take_trace_events());
            }
            TraceStore::from_events(events, trace_every)
        });
        crate::obs::assemble(
            registries,
            profiles,
            flight,
            traces,
            plan.n_shards(),
            driver,
            grid,
            t_end,
        )
    });

    let recorded = record.then(|| {
        let mut parts = Vec::new();
        for e in &mut engines {
            parts.extend(e.take_recorded());
        }
        crate::closed_loop::merge_recorded(parts)
    });
    let extras = crate::closed_loop::RunExtras { recorded, replay: None };

    (merge_reports(topology, engines), cluster_obs, extras)
}
