//! Cluster topologies: proxies, origin shards, and the links between them.
//!
//! A [`Topology`] is a bipartite routing structure: `P` edge proxies (each
//! fronting a client population) fetch from `S` origin shards, and every
//! `(proxy, shard)` pair is assigned a *route* — an ordered path of links a
//! fetch traverses. Links are the queueing resources: each one becomes a
//! processor-sharing (or FIFO) server with its own bandwidth in
//! [`crate::ClusterSim`].
//!
//! Three canonical layouts are provided, spanning the shapes the scaling
//! literature cares about (Anselmi & Walton's speculative queueing networks;
//! the server-scale prefetching surveys):
//!
//! * [`Topology::single`] — one proxy, one shard, one link: degenerates to
//!   the paper's single shared path (and is validated against
//!   `netsim::parametric`);
//! * [`Topology::star`] — every proxy has a private uplink to one origin:
//!   no cross-proxy queueing interaction, the baseline for comparison;
//! * [`Topology::two_tier`] — private access links feeding one shared
//!   backbone: proxies now impede each other exactly as the paper's §5 load
//!   impedance predicts;
//! * [`Topology::sharded_origin`] — private uplinks into per-shard egress
//!   links, items hash-partitioned across shards: the scale-out layout.

/// A directed link with a fixed capacity and queueing discipline.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// Human-readable name used in reports (e.g. `"uplink[2]"`).
    pub name: String,
    /// Capacity in size-units/second (the paper's `b` for this hop).
    pub bandwidth: f64,
    /// One-way propagation delay of the hop, in seconds. Zero (the paper's
    /// model, and every classic builder) means a transfer enters the next
    /// hop at the instant it leaves this one. A positive latency delays
    /// entry into this link by `latency` and, once the last hop's service
    /// finishes, delays the response's arrival back at the proxy by the
    /// route's summed latency — and it is what gives the sharded parallel
    /// driver its conservative **lookahead** (see
    /// [`ShardPlan::lookahead`]).
    pub latency: f64,
    /// Scheduling discipline of the link server.
    pub discipline: Discipline,
}

/// Queueing discipline of one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Processor sharing — the paper's model (insensitive to size dist).
    ProcessorSharing,
    /// First-in-first-out — the ablation discipline.
    Fifo,
}

/// A multi-node layout: links plus a route for every `(proxy, shard)` pair,
/// and optionally a peer route for every ordered `(proxy, proxy)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    n_proxies: usize,
    n_shards: usize,
    links: Vec<Link>,
    /// `routes[p * n_shards + s]` = ordered link indices from proxy `p` to
    /// shard `s`.
    routes: Vec<Vec<usize>>,
    /// `peer_routes[p * n_proxies + q]` = ordered link indices from proxy
    /// `p` to proxy `q`; empty when the pair has no peer path (the
    /// cooperative engine requires one for every pair).
    peer_routes: Vec<Vec<usize>>,
}

impl Topology {
    /// Starts an empty custom topology; see [`TopologyBuilder`].
    pub fn builder(n_proxies: usize, n_shards: usize) -> TopologyBuilder {
        assert!(n_proxies > 0 && n_shards > 0);
        TopologyBuilder {
            n_proxies,
            n_shards,
            links: Vec::new(),
            routes: vec![Vec::new(); n_proxies * n_shards],
            peer_routes: vec![Vec::new(); n_proxies * n_proxies],
        }
    }

    /// One proxy, one shard, one PS link of the given bandwidth — the
    /// paper's single shared path.
    pub fn single(bandwidth: f64) -> Topology {
        let mut b = Topology::builder(1, 1);
        let l = b.add_link("path", bandwidth, Discipline::ProcessorSharing);
        b.route(0, 0, vec![l]);
        b.build()
    }

    /// `n_proxies` proxies, each with a private PS uplink of
    /// `uplink_bandwidth` to a single origin.
    pub fn star(n_proxies: usize, uplink_bandwidth: f64) -> Topology {
        let mut b = Topology::builder(n_proxies, 1);
        for p in 0..n_proxies {
            let l =
                b.add_link(format!("uplink[{p}]"), uplink_bandwidth, Discipline::ProcessorSharing);
            b.route(p, 0, vec![l]);
        }
        b.build()
    }

    /// Private access links feeding one shared backbone to a single origin.
    pub fn two_tier(n_proxies: usize, access_bandwidth: f64, backbone_bandwidth: f64) -> Topology {
        let mut b = Topology::builder(n_proxies, 1);
        let backbone = b.add_link("backbone", backbone_bandwidth, Discipline::ProcessorSharing);
        for p in 0..n_proxies {
            let l =
                b.add_link(format!("access[{p}]"), access_bandwidth, Discipline::ProcessorSharing);
            b.route(p, 0, vec![l, backbone]);
        }
        b.build()
    }

    /// Private uplinks into per-shard egress links; items are partitioned
    /// across `n_shards` shards by `item % n_shards`.
    pub fn sharded_origin(
        n_proxies: usize,
        n_shards: usize,
        uplink_bandwidth: f64,
        shard_bandwidth: f64,
    ) -> Topology {
        let mut b = Topology::builder(n_proxies, n_shards);
        let shard_links: Vec<usize> = (0..n_shards)
            .map(|s| {
                b.add_link(format!("shard[{s}]"), shard_bandwidth, Discipline::ProcessorSharing)
            })
            .collect();
        for p in 0..n_proxies {
            let up =
                b.add_link(format!("uplink[{p}]"), uplink_bandwidth, Discipline::ProcessorSharing);
            for (s, &sl) in shard_links.iter().enumerate() {
                b.route(p, s, vec![up, sl]);
            }
        }
        b.build()
    }

    /// A two-tier tree plus a full proxy↔proxy peer mesh: one PS peer link
    /// per unordered proxy pair, so cooperative fetches bypass the
    /// backbone entirely. With one proxy this degenerates to
    /// [`Topology::two_tier`] (no peers to mesh).
    pub fn mesh(
        n_proxies: usize,
        access_bandwidth: f64,
        backbone_bandwidth: f64,
        peer_bandwidth: f64,
    ) -> Topology {
        Topology::mesh_with_latency(
            n_proxies,
            access_bandwidth,
            backbone_bandwidth,
            peer_bandwidth,
            0.0,
        )
    }

    /// [`Topology::mesh`] with a uniform propagation `latency` on every
    /// link — the deployment shape of the sharded scale experiments (E17):
    /// the latency is physically the speed-of-light/serialisation floor a
    /// real WAN hop pays, and operationally the conservative lookahead
    /// that lets the sharded driver run whole windows of events without
    /// cross-thread synchronisation (see [`ShardPlan::lookahead`]).
    pub fn mesh_with_latency(
        n_proxies: usize,
        access_bandwidth: f64,
        backbone_bandwidth: f64,
        peer_bandwidth: f64,
        latency: f64,
    ) -> Topology {
        let mut b = Topology::builder(n_proxies, 1);
        let backbone = b.add_link_latency(
            "backbone",
            backbone_bandwidth,
            latency,
            Discipline::ProcessorSharing,
        );
        for p in 0..n_proxies {
            let l = b.add_link_latency(
                format!("access[{p}]"),
                access_bandwidth,
                latency,
                Discipline::ProcessorSharing,
            );
            b.route(p, 0, vec![l, backbone]);
        }
        for p in 0..n_proxies {
            for q in p + 1..n_proxies {
                let l = b.add_link_latency(
                    format!("peer[{p}-{q}]"),
                    peer_bandwidth,
                    latency,
                    Discipline::ProcessorSharing,
                );
                b.peer_route(p, q, vec![l]);
                b.peer_route(q, p, vec![l]);
            }
        }
        b.build()
    }

    /// A two-tier tree plus a peer *ring*: proxy `p` links to `(p+1) mod n`
    /// and peer fetches traverse the shorter arc — fewer links than the
    /// mesh, at the price of multi-hop peer transfers.
    pub fn ring(
        n_proxies: usize,
        access_bandwidth: f64,
        backbone_bandwidth: f64,
        peer_bandwidth: f64,
    ) -> Topology {
        let mut b = Topology::builder(n_proxies, 1);
        let backbone = b.add_link("backbone", backbone_bandwidth, Discipline::ProcessorSharing);
        for p in 0..n_proxies {
            let l =
                b.add_link(format!("access[{p}]"), access_bandwidth, Discipline::ProcessorSharing);
            b.route(p, 0, vec![l, backbone]);
        }
        if n_proxies >= 2 {
            // `ring_links[p]` joins p and (p+1) mod n; with two proxies the
            // cycle collapses to a single link.
            let segments = if n_proxies == 2 { 1 } else { n_proxies };
            let ring_links: Vec<usize> = (0..segments)
                .map(|p| {
                    b.add_link(format!("ring[{p}]"), peer_bandwidth, Discipline::ProcessorSharing)
                })
                .collect();
            for p in 0..n_proxies {
                for q in 0..n_proxies {
                    if p == q {
                        continue;
                    }
                    let clockwise = (q + n_proxies - p) % n_proxies;
                    let path: Vec<usize> = if clockwise <= n_proxies - clockwise {
                        (0..clockwise).map(|i| ring_links[(p + i) % segments]).collect()
                    } else {
                        (0..n_proxies - clockwise)
                            .map(|i| ring_links[(p + n_proxies - 1 - i) % segments])
                            .collect()
                    };
                    b.peer_route(p, q, path);
                }
            }
        }
        b.build()
    }

    pub fn n_proxies(&self) -> usize {
        self.n_proxies
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link path a fetch from `proxy` to `shard` traverses.
    pub fn route(&self, proxy: usize, shard: usize) -> &[usize] {
        &self.routes[proxy * self.n_shards + shard]
    }

    /// The link path a peer fetch from proxy `p` to proxy `q` traverses.
    /// Panics when the pair has no peer path (see
    /// [`Topology::has_peer_path`]).
    pub fn peer_route(&self, p: usize, q: usize) -> &[usize] {
        let r = &self.peer_routes[p * self.n_proxies + q];
        assert!(!r.is_empty(), "no peer route from proxy {p} to proxy {q}");
        r
    }

    /// Whether proxies `p` and `q` have a peer path (`p == q` has none).
    pub fn has_peer_path(&self, p: usize, q: usize) -> bool {
        p != q && !self.peer_routes[p * self.n_proxies + q].is_empty()
    }

    /// Whether every ordered proxy pair has a peer path — the property
    /// the cooperative workload requires.
    pub fn is_peer_meshed(&self) -> bool {
        (0..self.n_proxies).all(|p| (0..self.n_proxies).all(|q| p == q || self.has_peer_path(p, q)))
    }

    /// The narrowest bandwidth on the route — the capacity an adaptive
    /// controller at `proxy` should provision its threshold against for
    /// fetches to `shard`.
    pub fn bottleneck(&self, proxy: usize, shard: usize) -> f64 {
        self.route(proxy, shard)
            .iter()
            .map(|&l| self.links[l].bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    /// The worst-case bottleneck over all shards reachable from `proxy`.
    pub fn proxy_bottleneck(&self, proxy: usize) -> f64 {
        (0..self.n_shards).map(|s| self.bottleneck(proxy, s)).fold(f64::INFINITY, f64::min)
    }

    /// Whether any link carries a positive propagation latency. The
    /// classic builders never do — they are the paper's zero-latency
    /// model, on which the engines behave exactly as before this field
    /// existed.
    pub fn has_latency(&self) -> bool {
        self.links.iter().any(|l| l.latency > 0.0)
    }

    /// Propagation delay of entering link `l` (zero in classic layouts).
    pub(crate) fn entry_latency(&self, l: usize) -> f64 {
        self.links[l].latency
    }

    /// Summed propagation delay of a completed transfer's response
    /// returning to the requesting proxy over `route` — the whole path,
    /// reversed. The engines use it for both origin responses and peer
    /// serve/false-hit notifications.
    pub(crate) fn return_latency(&self, route: &[usize]) -> f64 {
        route.iter().map(|&l| self.links[l].latency).sum()
    }
}

/// A partition of a [`Topology`] into per-thread **shards** for the
/// sharded cluster driver: every proxy and every link is owned by exactly
/// one shard, and the plan knows the conservative **lookahead** the
/// partition admits.
///
/// ## Partitioning heuristic
///
/// Proxies are split into contiguous, balanced index blocks — for the
/// `mesh`/`ring`/`two_tier` families (symmetric peer fabrics over an
/// index-ordered peer structure) contiguous blocks minimise or tie the
/// edge cut among balanced partitions, and contiguity keeps the partition
/// a pure function of `(n_proxies, n_shards)` so reports cannot depend on
/// a randomised cut. Each link then goes to the shard that *routes over it
/// most*: we count, for every route and peer route, one use per traversing
/// proxy, and hand the link to the majority shard (lowest index on ties).
/// Private access links land with their proxy, shared backbones with the
/// largest user block, and peer links with one of their two endpoints —
/// exactly the assignment that minimises cross-shard handoffs given the
/// proxy blocks.
///
/// ## Lookahead
///
/// The conservative window protocol may run every shard `lookahead`
/// seconds past the globally earliest pending event without any shard
/// observing another's effects, because every **cross-shard handoff** —
/// a job entering a link owned by another shard, a peer-serve check at a
/// remote proxy, a response delivered to a remote proxy — takes at least
/// this long. The plan computes it as the minimum propagation delay over
/// all handoffs its cut actually crosses: `+∞` when nothing crosses
/// (shards are independent between digest epochs), and `0` when any
/// crossing hop has zero latency — in which case no window is admissible
/// and the driver falls back to sequential merged execution.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    n_shards: usize,
    proxy_shard: Vec<u32>,
    link_shard: Vec<u32>,
    lookahead: f64,
}

impl ShardPlan {
    /// Partitions `topology` into `shards` shards (clamped to the proxy
    /// count).
    pub fn partition(topology: &Topology, shards: usize) -> ShardPlan {
        assert!(shards > 0, "need at least one shard");
        let n_proxies = topology.n_proxies();
        let n_shards = shards.min(n_proxies);

        // Contiguous balanced blocks: the first `rem` shards get one extra.
        let base = n_proxies / n_shards;
        let rem = n_proxies % n_shards;
        let mut proxy_shard = Vec::with_capacity(n_proxies);
        for s in 0..n_shards {
            let count = base + usize::from(s < rem);
            proxy_shard.extend(std::iter::repeat_n(s as u32, count));
        }

        // Majority-use link assignment: one use per proxy whose route (or
        // peer route, in either direction) traverses the link.
        let mut use_count = vec![vec![0u32; n_shards]; topology.links().len()];
        let mut count_route = |route: &[usize], proxy: usize| {
            for &l in route {
                use_count[l][proxy_shard[proxy] as usize] += 1;
            }
        };
        for p in 0..n_proxies {
            for s in 0..topology.n_shards() {
                count_route(topology.route(p, s), p);
            }
            for q in 0..n_proxies {
                if topology.has_peer_path(p, q) {
                    count_route(topology.peer_route(p, q), p);
                }
            }
        }
        let link_shard: Vec<u32> = use_count
            .iter()
            .map(|counts| {
                let mut best = 0usize;
                for (s, &c) in counts.iter().enumerate() {
                    if c > counts[best] {
                        best = s;
                    }
                }
                best as u32
            })
            .collect();

        let mut plan = ShardPlan { n_shards, proxy_shard, link_shard, lookahead: f64::INFINITY };
        plan.lookahead = plan.compute_lookahead(topology);
        plan
    }

    /// Minimum delay over the cross-shard handoffs this cut crosses (see
    /// the type docs); `+∞` when no handoff crosses.
    fn compute_lookahead(&self, topology: &Topology) -> f64 {
        let mut min = f64::INFINITY;
        let mut consider = |crosses: bool, delay: f64| {
            if crosses {
                min = min.min(delay);
            }
        };
        let mut walk = |route: &[usize], proxy: usize, endpoint: u32| {
            // Launch: the proxy injects into the route's first link.
            consider(
                self.proxy_shard[proxy] != self.link_shard[route[0]],
                topology.entry_latency(route[0]),
            );
            // Tandem forwards between consecutive links.
            for hop in route.windows(2) {
                consider(
                    self.link_shard[hop[0]] != self.link_shard[hop[1]],
                    topology.entry_latency(hop[1]),
                );
            }
            // Hand-off from the last link to the serving endpoint (the
            // origin-side proxy itself, or the peer being checked).
            let last = *route.last().expect("routes are non-empty");
            consider(self.link_shard[last] != endpoint, topology.entry_latency(last));
            // Response back to the requesting proxy.
            consider(endpoint != self.proxy_shard[proxy], topology.return_latency(route));
        };
        for p in 0..topology.n_proxies() {
            for s in 0..topology.n_shards() {
                // Origin fetches complete at the requester itself.
                walk(topology.route(p, s), p, self.proxy_shard[p]);
            }
            for q in 0..topology.n_proxies() {
                if topology.has_peer_path(p, q) {
                    // Peer fetches are checked at q, then answered to p.
                    walk(topology.peer_route(p, q), p, self.proxy_shard[q]);
                }
            }
        }
        min
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning proxy `p`'s client population, cache, and timers.
    pub fn proxy_shard(&self, p: usize) -> usize {
        self.proxy_shard[p] as usize
    }

    /// The shard owning link `l`'s queueing server.
    pub fn link_shard(&self, l: usize) -> usize {
        self.link_shard[l] as usize
    }

    /// The conservative window width this partition admits (seconds).
    pub fn lookahead(&self) -> f64 {
        self.lookahead
    }

    /// Number of links whose server lives on a different shard than at
    /// least one proxy routing over them — the cut the partitioning
    /// heuristic minimises (diagnostic, reported by E17).
    pub fn edge_cut(&self, topology: &Topology) -> usize {
        let mut cut = vec![false; topology.links().len()];
        let mut mark = |route: &[usize], proxy: usize| {
            for &l in route {
                if self.link_shard[l] != self.proxy_shard[proxy] {
                    cut[l] = true;
                }
            }
        };
        for p in 0..topology.n_proxies() {
            for s in 0..topology.n_shards() {
                mark(topology.route(p, s), p);
            }
            for q in 0..topology.n_proxies() {
                if topology.has_peer_path(p, q) {
                    mark(topology.peer_route(p, q), p);
                }
            }
        }
        cut.iter().filter(|&&c| c).count()
    }
}

/// Incremental construction of a custom [`Topology`].
pub struct TopologyBuilder {
    n_proxies: usize,
    n_shards: usize,
    links: Vec<Link>,
    routes: Vec<Vec<usize>>,
    peer_routes: Vec<Vec<usize>>,
}

impl TopologyBuilder {
    /// Registers a zero-latency link; returns its index for use in routes.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        bandwidth: f64,
        discipline: Discipline,
    ) -> usize {
        self.add_link_latency(name, bandwidth, 0.0, discipline)
    }

    /// Registers a link with a propagation `latency`; returns its index.
    pub fn add_link_latency(
        &mut self,
        name: impl Into<String>,
        bandwidth: f64,
        latency: f64,
        discipline: Discipline,
    ) -> usize {
        assert!(bandwidth > 0.0 && bandwidth.is_finite(), "link bandwidth must be positive");
        assert!(latency >= 0.0 && latency.is_finite(), "link latency must be non-negative");
        self.links.push(Link { name: name.into(), bandwidth, latency, discipline });
        self.links.len() - 1
    }

    /// Sets the route for `(proxy, shard)`.
    pub fn route(&mut self, proxy: usize, shard: usize, links: Vec<usize>) -> &mut Self {
        assert!(proxy < self.n_proxies && shard < self.n_shards, "route endpoint out of range");
        assert!(!links.is_empty(), "route must traverse at least one link");
        for &l in &links {
            assert!(l < self.links.len(), "route references unknown link {l}");
        }
        self.routes[proxy * self.n_shards + shard] = links;
        self
    }

    /// Sets the peer route from proxy `p` to proxy `q` (one direction;
    /// call twice for a symmetric pair).
    pub fn peer_route(&mut self, p: usize, q: usize, links: Vec<usize>) -> &mut Self {
        assert!(p < self.n_proxies && q < self.n_proxies, "peer route endpoint out of range");
        assert!(p != q, "a proxy needs no route to itself");
        assert!(!links.is_empty(), "peer route must traverse at least one link");
        for &l in &links {
            assert!(l < self.links.len(), "peer route references unknown link {l}");
        }
        self.peer_routes[p * self.n_proxies + q] = links;
        self
    }

    /// Validates completeness and freezes the topology.
    pub fn build(self) -> Topology {
        for p in 0..self.n_proxies {
            for s in 0..self.n_shards {
                assert!(
                    !self.routes[p * self.n_shards + s].is_empty(),
                    "no route from proxy {p} to shard {s}"
                );
            }
        }
        Topology {
            n_proxies: self.n_proxies,
            n_shards: self.n_shards,
            links: self.links,
            routes: self.routes,
            peer_routes: self.peer_routes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_one_link() {
        let t = Topology::single(50.0);
        assert_eq!((t.n_proxies(), t.n_shards(), t.links().len()), (1, 1, 1));
        assert_eq!(t.route(0, 0), &[0]);
        assert_eq!(t.bottleneck(0, 0), 50.0);
    }

    #[test]
    fn star_has_private_uplinks() {
        let t = Topology::star(4, 25.0);
        assert_eq!(t.links().len(), 4);
        for p in 0..4 {
            assert_eq!(t.route(p, 0).len(), 1);
        }
        // No two proxies share a link.
        assert_ne!(t.route(0, 0), t.route(1, 0));
    }

    #[test]
    fn two_tier_shares_the_backbone() {
        let t = Topology::two_tier(3, 60.0, 100.0);
        assert_eq!(t.links().len(), 4);
        let backbone = t.route(0, 0)[1];
        for p in 0..3 {
            assert_eq!(t.route(p, 0)[1], backbone);
        }
        assert_eq!(t.bottleneck(0, 0), 60.0);
    }

    #[test]
    fn sharded_routes_cross_product() {
        let t = Topology::sharded_origin(3, 2, 40.0, 80.0);
        assert_eq!(t.links().len(), 2 + 3);
        for p in 0..3 {
            let up = t.route(p, 0)[0];
            for s in 0..2 {
                assert_eq!(t.route(p, s)[0], up, "same uplink for every shard");
            }
            assert_ne!(t.route(p, 0)[1], t.route(p, 1)[1], "distinct shard links");
        }
        assert_eq!(t.bottleneck(0, 0), 40.0);
        assert_eq!(t.proxy_bottleneck(0), 40.0);
    }

    #[test]
    fn mesh_has_peer_path_per_pair() {
        let t = Topology::mesh(4, 40.0, 80.0, 30.0);
        // backbone + 4 access + C(4,2)=6 peer links.
        assert_eq!(t.links().len(), 1 + 4 + 6);
        assert!(t.is_peer_meshed());
        for p in 0..4 {
            assert!(!t.has_peer_path(p, p));
            for q in 0..4 {
                if p != q {
                    assert_eq!(t.peer_route(p, q).len(), 1, "mesh peers are one hop");
                    assert_eq!(t.peer_route(p, q), t.peer_route(q, p), "shared medium");
                }
            }
        }
        // Peer routes avoid the backbone.
        let backbone = t.route(0, 0)[1];
        assert!(!t.peer_route(0, 3).contains(&backbone));
    }

    #[test]
    fn mesh_of_one_is_two_tier() {
        let mesh = Topology::mesh(1, 40.0, 80.0, 30.0);
        assert_eq!(mesh.links().len(), 2);
        assert!(mesh.is_peer_meshed(), "vacuously meshed");
    }

    #[test]
    fn ring_routes_take_the_shorter_arc() {
        let t = Topology::ring(5, 40.0, 80.0, 30.0);
        // backbone + 5 access + 5 ring segments.
        assert_eq!(t.links().len(), 1 + 5 + 5);
        assert!(t.is_peer_meshed());
        assert_eq!(t.peer_route(0, 1).len(), 1);
        assert_eq!(t.peer_route(0, 2).len(), 2);
        assert_eq!(t.peer_route(0, 3).len(), 2, "counter-clockwise is shorter");
        assert_eq!(t.peer_route(0, 4).len(), 1);
        // Adjacent pairs share their segment in both directions.
        assert_eq!(t.peer_route(1, 2), t.peer_route(2, 1));
    }

    #[test]
    fn two_proxy_ring_is_a_single_segment() {
        let t = Topology::ring(2, 40.0, 80.0, 30.0);
        assert_eq!(t.links().len(), 1 + 2 + 1);
        assert_eq!(t.peer_route(0, 1), t.peer_route(1, 0));
        assert_eq!(t.peer_route(0, 1).len(), 1);
    }

    #[test]
    fn classic_layouts_have_no_peer_paths() {
        assert!(!Topology::two_tier(3, 50.0, 80.0).is_peer_meshed());
        assert!(!Topology::star(3, 50.0).has_peer_path(0, 1));
    }

    #[test]
    #[should_panic]
    fn self_peer_route_panics() {
        let mut b = Topology::builder(2, 1);
        let l = b.add_link("x", 10.0, Discipline::ProcessorSharing);
        b.route(0, 0, vec![l]);
        b.route(1, 0, vec![l]);
        b.peer_route(0, 0, vec![l]);
    }

    #[test]
    #[should_panic]
    fn missing_route_panics() {
        let mut b = Topology::builder(2, 1);
        let l = b.add_link("only", 10.0, Discipline::ProcessorSharing);
        b.route(0, 0, vec![l]);
        b.build(); // proxy 1 has no route
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_panics() {
        let mut b = Topology::builder(1, 1);
        b.add_link("bad", 0.0, Discipline::ProcessorSharing);
    }

    #[test]
    #[should_panic]
    fn negative_latency_panics() {
        let mut b = Topology::builder(1, 1);
        b.add_link_latency("bad", 10.0, -0.1, Discipline::ProcessorSharing);
    }

    #[test]
    fn classic_layouts_have_zero_latency() {
        for t in [
            Topology::single(50.0),
            Topology::two_tier(3, 60.0, 100.0),
            Topology::mesh(4, 40.0, 80.0, 30.0),
        ] {
            assert!(!t.has_latency());
            for l in 0..t.links().len() {
                assert_eq!(t.entry_latency(l), 0.0);
            }
        }
    }

    #[test]
    fn latency_mesh_matches_flat_mesh_shape() {
        let lat = Topology::mesh_with_latency(4, 40.0, 80.0, 30.0, 0.02);
        let flat = Topology::mesh(4, 40.0, 80.0, 30.0);
        assert!(lat.has_latency());
        assert_eq!(lat.links().len(), flat.links().len());
        for (a, b) in lat.links().iter().zip(flat.links()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.bandwidth, b.bandwidth);
            assert_eq!(a.latency, 0.02);
        }
        for p in 0..4 {
            assert_eq!(lat.route(p, 0), flat.route(p, 0));
            // Origin responses return over access + backbone: 2 hops.
            assert_eq!(lat.return_latency(lat.route(p, 0)), 0.04);
            for q in 0..4 {
                if p != q {
                    assert_eq!(lat.peer_route(p, q), flat.peer_route(p, q));
                    assert_eq!(lat.return_latency(lat.peer_route(p, q)), 0.02);
                }
            }
        }
    }

    #[test]
    fn shard_plan_clamps_to_proxy_count_and_keeps_private_links_local() {
        let t = Topology::sharded_origin(3, 2, 40.0, 80.0);
        let plan = ShardPlan::partition(&t, 8);
        assert_eq!(plan.n_shards(), 3, "clamped to the proxy count");
        for p in 0..3 {
            let uplink = t.route(p, 0)[0];
            assert_eq!(plan.link_shard(uplink), plan.proxy_shard(p));
        }
        // Zero-latency topology: any crossing handoff has zero delay.
        assert_eq!(plan.lookahead(), 0.0);
        // The single-shard plan crosses nothing at all.
        let solo = ShardPlan::partition(&t, 1);
        assert_eq!(solo.lookahead(), f64::INFINITY);
        assert_eq!(solo.edge_cut(&t), 0);
    }
}
