//! Cluster-layer observability: engine probes and the merged run telemetry.
//!
//! Two layers live here, both built on [`simcore::obs`]:
//!
//! * [`EngineObs`] (crate-private) — the per-engine probe state. Each shard
//!   engine owns at most one, boxed behind an `Option`, so the disabled
//!   case costs one branch per hook. It tracks a metrics [`Registry`], the
//!   request-latency histogram, predictor/prefetch counters, and epoch-grid
//!   time series (per-link utilisation, aggregate queue depth, cache
//!   occupancy, outstanding prefetches) sampled on a fixed grid.
//! * [`ClusterObs`] (public) — what a run hands back: the per-shard
//!   registries merged into one, shard runtime profiles, the flight-
//!   recorder tail, and the driver/wall metadata. Renders to the
//!   `OBS_cluster.json` section via [`ClusterObs::to_json`].
//!
//! # Determinism contract
//!
//! Probes only *read* simulation state and only at points that are a pure
//! function of each entity's own event history: every public handler (and
//! the cross-shard `apply_now` path) ticks the sampling grid *before*
//! mutating state, so the sample for grid point `g` always reflects "all
//! events strictly before `g`" under every sharding. No RNG is drawn, no
//! event is scheduled, and nothing observable feeds back into the engine,
//! so `ClusterReport` is bit-identical with observability on or off (the
//! parity suite pins this). Wall-clock readings exist only in the driver
//! profiles and never touch simulation state.

use crate::report::ClusterReport;
use crate::sim::{LinkState, Scope};
use crate::topology::Topology;
use simcore::json::Json;
use simcore::obs::{CounterId, Dist, DistId, FlightRecord, GaugeId, ObsConfig, SeriesId};
use simcore::trace::{ClassAttribution, TraceStore, BUCKETS};
use simcore::{Registry, ShardProfile};

/// Upper bound on per-link utilisation series shipped in the JSON artifact.
/// The registry always keeps every link; the artifact reports the backbone
/// plus the busiest access/peer links and says how many were elided.
const MAX_LINK_SERIES: usize = 16;

/// Flight records shipped in the JSON artifact (newest retained records).
const MAX_FLIGHT_JSON: usize = 64;

/// Per-engine probe state. One per shard engine, attached only when a run
/// is observed; every hook in the engines starts with a branch on the
/// engine's `Option<Box<EngineObs>>`.
pub(crate) struct EngineObs {
    /// Sampling grid in simulation seconds; `<= 0` disables series probes.
    grid: f64,
    /// Next grid point to flush is `grid * k`.
    k: u64,
    next_t: f64,
    reg: Registry,
    latency: DistId,
    requests: CounterId,
    pred_calls: CounterId,
    predictions: CounterId,
    prefetches: CounterId,
    qdepth_gauge: GaugeId,
    /// Series handles, present only when `grid > 0`.
    s_cache: Option<SeriesId>,
    s_inflight: Option<SeriesId>,
    s_qdepth: Option<SeriesId>,
    /// Per local link: utilisation series handle and the busy-time integral
    /// at the previous grid point.
    link_series: Vec<SeriesId>,
    link_busy_last: Vec<f64>,
    /// Jobs currently queued or in service per local link (arrivals minus
    /// completions), maintained by the engine hooks.
    link_jobs: Vec<i64>,
    qdepth_now: i64,
    qdepth_hwm: i64,
}

impl EngineObs {
    pub(crate) fn new(cfg: &ObsConfig, grid: f64, topology: &Topology, scope: &Scope) -> EngineObs {
        let mut reg = Registry::new();
        let latency =
            reg.dist_hist("latency.access", cfg.latency_lo, cfg.latency_hi, cfg.latency_bins);
        let requests = reg.counter("requests.processed");
        let pred_calls = reg.counter("predictor.calls");
        let predictions = reg.counter("predictor.predictions");
        let prefetches = reg.counter("prefetch.issued");
        let qdepth_gauge = reg.gauge("links.queue_depth.hwm");
        let (s_cache, s_inflight, s_qdepth, link_series) = if grid > 0.0 {
            let cache = reg.series("cache.occupancy_bytes");
            let inflight = reg.series("prefetch.outstanding");
            let qdepth = reg.series("links.queue_depth");
            let links = scope
                .links
                .iter()
                .map(|&g| reg.series(&format!("link_util.{}", topology.links()[g].name)))
                .collect();
            (Some(cache), Some(inflight), Some(qdepth), links)
        } else {
            (None, None, None, Vec::new())
        };
        let n_links = scope.links.len();
        EngineObs {
            grid,
            k: 0,
            next_t: if grid > 0.0 { 0.0 } else { f64::INFINITY },
            reg,
            latency,
            requests,
            pred_calls,
            predictions,
            prefetches,
            qdepth_gauge,
            s_cache,
            s_inflight,
            s_qdepth,
            link_series,
            link_busy_last: vec![0.0; if grid > 0.0 { n_links } else { 0 }],
            link_jobs: vec![0; n_links],
            qdepth_now: 0,
            qdepth_hwm: 0,
        }
    }

    /// Mirrors one user-perceived access-time sample into the latency
    /// distribution (hits are 0.0 by the report's convention).
    #[inline]
    pub(crate) fn latency(&mut self, x: f64) {
        self.reg.record(self.latency, x);
    }

    #[inline]
    pub(crate) fn request(&mut self) {
        self.reg.inc(self.requests, 1);
    }

    /// Notes one predictor scoring call that produced `n` candidates.
    #[inline]
    pub(crate) fn predictions(&mut self, n: u64) {
        self.reg.inc(self.pred_calls, 1);
        self.reg.inc(self.predictions, n);
    }

    #[inline]
    pub(crate) fn prefetch_issued(&mut self) {
        self.reg.inc(self.prefetches, 1);
    }

    /// A job entered service or queue on local link `l`.
    #[inline]
    pub(crate) fn job_arrived(&mut self, l: usize) {
        self.link_jobs[l] += 1;
        self.qdepth_now += 1;
        if self.qdepth_now > self.qdepth_hwm {
            self.qdepth_hwm = self.qdepth_now;
        }
    }

    /// `n` jobs finished service on local link `l`.
    #[inline]
    pub(crate) fn jobs_completed(&mut self, l: usize, n: usize) {
        self.link_jobs[l] -= n as i64;
        self.qdepth_now -= n as i64;
    }

    /// Flushes every grid point `<= t`. `aggregates` returns the scope's
    /// current (cache occupancy bytes, outstanding prefetch count); it is
    /// invoked once even if several grid points are crossed, because local
    /// state cannot change between consecutive flushes inside one tick.
    pub(crate) fn tick(
        &mut self,
        t: f64,
        links: &[LinkState],
        aggregates: impl FnOnce() -> (f64, f64),
    ) {
        if self.next_t > t {
            return;
        }
        let (cache_bytes, outstanding) = aggregates();
        let qdepth = self.qdepth_now as f64;
        while self.next_t <= t {
            for (li, &sid) in self.link_series.iter().enumerate() {
                let busy = links[li].busy_time();
                let util = (busy - self.link_busy_last[li]) / self.grid;
                self.link_busy_last[li] = busy;
                self.reg.push_point(sid, util);
            }
            if let Some(s) = self.s_cache {
                self.reg.push_point(s, cache_bytes);
            }
            if let Some(s) = self.s_inflight {
                self.reg.push_point(s, outstanding);
            }
            if let Some(s) = self.s_qdepth {
                self.reg.push_point(s, qdepth);
            }
            self.k += 1;
            self.next_t = self.grid * self.k as f64;
        }
    }

    /// Final flush at the end of a run: settles gauges and returns the
    /// engine's registry for merging. Callers tick to the cluster-wide
    /// `t_end` first so every shard's series have identical length.
    pub(crate) fn finish(mut self) -> Registry {
        let hwm = self.qdepth_hwm;
        self.reg.gauge_max(self.qdepth_gauge, hwm as f64);
        self.reg
    }
}

/// Merged observability output of one cluster run: the registry reduced
/// across shards, per-shard runtime profiles, and the flight-recorder tail.
///
/// Everything except the wall-clock fields (`wall_secs`, the profile wall
/// timers) and the flight/profile *contents* is deterministic for a fixed
/// shard count; the simulation metrics (counters, latency distribution,
/// series sums) are additionally stable across shard counts up to
/// floating-point reduction order.
pub struct ClusterObs {
    /// All shard registries merged (counters added, gauges maxed,
    /// distributions merged, series summed element-wise).
    pub registry: Registry,
    /// Per-shard driver profiles, in shard order.
    pub profiles: Vec<ShardProfile>,
    /// Flight-recorder survivors across all shards, ordered by
    /// `(time, shard)`.
    pub flight: Vec<FlightRecord>,
    /// Shards the run used.
    pub shards: usize,
    /// Which driver ran: `"windowed"` or `"sequential"`.
    pub driver: &'static str,
    /// Sampling grid the series used (`0` when series were disabled).
    pub grid: f64,
    /// Virtual duration of the run.
    pub duration: f64,
    /// Wall-clock seconds for the whole run (set by the caller that owns
    /// the timer; never read by simulation code).
    pub wall_secs: f64,
    /// Extracted causal traces, present when the run set a
    /// `trace_every > 0` (bit-identical across shard counts).
    pub traces: Option<TraceStore>,
}

impl ClusterObs {
    /// An empty shell for "observed" runs with observability disabled.
    pub fn empty(shards: usize, driver: &'static str) -> ClusterObs {
        ClusterObs {
            registry: Registry::new(),
            profiles: Vec::new(),
            flight: Vec::new(),
            shards,
            driver,
            grid: 0.0,
            duration: 0.0,
            wall_secs: 0.0,
            traces: None,
        }
    }

    /// Per-class latency attribution over the run's sampled traces
    /// (empty when tracing was off).
    pub fn attribution(&self) -> Vec<ClassAttribution> {
        self.traces.as_ref().map(TraceStore::attribution).unwrap_or_default()
    }

    /// The merged request-latency distribution.
    pub fn latency(&self) -> Option<&Dist> {
        self.registry.dist_stats("latency.access")
    }

    /// Latency quantile from the merged histogram.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.latency().and_then(|d| d.quantile(q))
    }

    /// Predictor throughput in candidates scored per wall second.
    pub fn preds_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.registry.counter_value("predictor.predictions") as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Events dispatched per wall second, summed over shards.
    pub fn events_per_sec(&self) -> f64 {
        let events: u64 = self.profiles.iter().map(|p| p.events).sum();
        if self.wall_secs > 0.0 {
            events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Mean utilisation of a named link's series, if sampled.
    pub fn mean_link_util(&self, name: &str) -> Option<f64> {
        let pts = self.registry.series_points(&format!("link_util.{name}"))?;
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().sum::<f64>() / pts.len() as f64)
    }

    /// Renders the run's telemetry as one JSON object. Per-link series are
    /// capped at [`MAX_LINK_SERIES`] (backbone first, then busiest by mean
    /// utilisation); `links_total`/`links_reported` record the elision.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in self.registry.counters() {
            counters.insert(name, Json::num(v as f64));
        }
        let mut gauges = Json::obj();
        for (name, v) in self.registry.gauges() {
            if v.is_finite() {
                gauges.insert(name, Json::num(v));
            }
        }

        let latency = self.latency().map_or(Json::Null, Dist::to_json);

        let mut series = Json::obj();
        for key in ["cache.occupancy_bytes", "prefetch.outstanding", "links.queue_depth"] {
            if let Some(pts) = self.registry.series_points(key) {
                series.insert(key, Json::nums(pts.iter().copied()));
            }
        }

        // Rank link series: backbone first, then by descending mean
        // utilisation, name as the deterministic tie-break.
        let mut ranked: Vec<(&str, &[f64], f64)> = self
            .registry
            .all_series()
            .filter_map(|(name, pts)| {
                let link = name.strip_prefix("link_util.")?;
                let mean =
                    if pts.is_empty() { 0.0 } else { pts.iter().sum::<f64>() / pts.len() as f64 };
                Some((link, pts, mean))
            })
            .collect();
        let links_total = ranked.len();
        ranked.sort_by(|a, b| {
            let key_a = (a.0 != "backbone", std::cmp::Reverse(FiniteOrd(a.2)), a.0);
            let key_b = (b.0 != "backbone", std::cmp::Reverse(FiniteOrd(b.2)), b.0);
            key_a.cmp(&key_b)
        });
        ranked.truncate(MAX_LINK_SERIES);
        let mut link_util = Json::obj();
        for (name, pts, _) in &ranked {
            link_util.insert(*name, Json::nums(pts.iter().copied()));
        }

        let profiles = Json::Arr(self.profiles.iter().map(ShardProfile::to_json).collect());

        let shown = self.flight.len().min(MAX_FLIGHT_JSON);
        let flight_records = Json::Arr(
            self.flight[self.flight.len() - shown..]
                .iter()
                .map(|r| {
                    Json::obj()
                        .set("t", Json::num(r.t))
                        .set("shard", Json::num(r.shard as f64))
                        .set(
                            "kind",
                            Json::str(match r.kind {
                                simcore::obs::FlightKind::Dispatch => "dispatch",
                                simcore::obs::FlightKind::EffectIn => "effect_in",
                            }),
                        )
                        .set("class", Json::num(r.class as f64))
                        .set("entity", Json::num(r.entity as f64))
                })
                .collect(),
        );

        Json::obj()
            .set("shards", Json::num(self.shards as f64))
            .set("driver", Json::str(self.driver))
            .set("grid", Json::num(self.grid))
            .set("duration", Json::num(self.duration))
            .set("wall_secs", Json::num(self.wall_secs))
            .set("events_per_sec", Json::num(self.events_per_sec()))
            .set("preds_per_sec", Json::num(self.preds_per_sec()))
            .set("counters", counters)
            .set("gauges", gauges)
            .set("latency", latency)
            .set("series", series)
            .set(
                "link_util",
                Json::obj()
                    .set("total", Json::num(links_total as f64))
                    .set("reported", Json::num(ranked.len() as f64))
                    .set("series", link_util),
            )
            .set("profiles", profiles)
            .set(
                "flight",
                Json::obj()
                    .set("retained", Json::num(self.flight.len() as f64))
                    .set("records", flight_records),
            )
            .set("trace", self.traces.as_ref().map_or(Json::Null, |s| s.to_json(5)))
    }
}

/// Total order on finite utilisation means (NaN cannot occur: means of
/// finite series).
#[derive(PartialEq)]
struct FiniteOrd(f64);

impl Eq for FiniteOrd {}
impl PartialOrd for FiniteOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FiniteOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Serialises a [`ClusterReport`] with the workspace JSON codec — the
/// machine-readable twin of the report's `Debug` form, used by the
/// experiment artifacts.
pub fn report_to_json(r: &ClusterReport) -> Json {
    let nodes = Json::Arr(
        r.nodes
            .iter()
            .map(|n| {
                let mut doc = Json::obj()
                    .set("proxy", Json::num(n.proxy as f64))
                    .set("measured_requests", Json::num(n.measured_requests as f64))
                    .set("hit_ratio", Json::num(n.hit_ratio))
                    .set("mean_access_time", Json::num(n.mean_access_time))
                    .set("access_time_ci95", Json::num(n.access_time_ci95))
                    .set("mean_retrieval_time", Json::num(n.mean_retrieval_time))
                    .set("retrieval_per_request", Json::num(n.retrieval_per_request))
                    .set("prefetches_per_request", Json::num(n.prefetches_per_request))
                    .set("demand_bytes", Json::num(n.demand_bytes));
                let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::num);
                doc.insert("goodput_bytes", opt_num(n.goodput_bytes));
                doc.insert("badput_bytes", opt_num(n.badput_bytes));
                doc.insert("cache_used_bytes", opt_num(n.cache_used_bytes));
                doc.insert("peer_bytes", opt_num(n.peer_bytes));
                doc.insert("peer_fetches", opt_num(n.peer_fetches.map(|v| v as f64)));
                doc.insert("peer_false_hits", opt_num(n.peer_false_hits.map(|v| v as f64)));
                doc.insert("mean_threshold", opt_num(n.mean_threshold));
                doc.insert("rho_prime_estimate", opt_num(n.rho_prime_estimate));
                doc.insert("h_prime_estimate", opt_num(n.h_prime_estimate));
                doc.insert("delayed_hits", opt_num(n.delayed_hits.map(|v| v as f64)));
                doc.insert("coalesced_requests", opt_num(n.coalesced_requests.map(|v| v as f64)));
                doc.insert("origin_fetches", opt_num(n.origin_fetches.map(|v| v as f64)));
                doc.insert("mean_residual_wait", opt_num(n.mean_residual_wait));
                doc.insert("mean_waiter_depth", opt_num(n.mean_waiter_depth));
                doc.insert("mshr_rejections", opt_num(n.mshr_rejections.map(|v| v as f64)));
                doc.insert("demand_misses", opt_num(n.demand_misses.map(|v| v as f64)));
                doc.insert("mshr_failed", opt_num(n.mshr_failed.map(|v| v as f64)));
                doc = doc
                    .set("timeouts", Json::num(n.timeouts as f64))
                    .set("retries", Json::num(n.retries as f64))
                    .set("failovers", Json::num(n.failovers as f64))
                    .set("failed_fetches", Json::num(n.failed_fetches as f64))
                    .set("lost_entries", Json::num(n.lost_entries as f64))
                    .set("unavailability", Json::num(n.unavailability));
                doc
            })
            .collect(),
    );
    let links = Json::Arr(
        r.links
            .iter()
            .map(|l| {
                Json::obj()
                    .set("name", Json::str(&l.name))
                    .set("utilisation", Json::num(l.utilisation))
                    .set("bytes_carried", Json::num(l.bytes_carried))
                    .set("jobs_completed", Json::num(l.jobs_completed as f64))
            })
            .collect(),
    );
    let coop = r.coop.as_ref().map_or(Json::Null, |c| {
        Json::obj()
            .set("router", c.router.to_json())
            .set("peer_fetches", Json::num(c.peer_fetches as f64))
            .set("peer_false_hits", Json::num(c.peer_false_hits as f64))
    });
    Json::obj()
        .set("mean_access_time", Json::num(r.mean_access_time))
        .set("bytes_per_request", Json::num(r.bytes_per_request))
        .set("duration", Json::num(r.duration))
        .set("max_link_utilisation", Json::num(r.max_link_utilisation()))
        .set("nodes", nodes)
        .set("links", links)
        .set("coop", coop)
}

/// Assembles the final [`ClusterObs`] from per-shard pieces: merged
/// registries (in shard order), profiles, flight records sorted by
/// `(time, shard)`, and the merged trace store (when tracing ran).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    registries: Vec<Registry>,
    profiles: Vec<ShardProfile>,
    mut flight: Vec<FlightRecord>,
    traces: Option<TraceStore>,
    shards: usize,
    driver: &'static str,
    grid: f64,
    duration: f64,
) -> ClusterObs {
    let mut registry = Registry::new();
    for r in &registries {
        registry.merge(r);
    }
    flight.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.shard.cmp(&b.shard)));
    // Trace-derived aggregates become first-class registry metrics. The
    // store iterates in its deterministic `(start, id)` order, so these
    // reductions are identical at every shard count.
    if let Some(store) = &traces {
        for a in store.attribution() {
            let id = registry.counter(&format!("trace.count.{}", a.class.name()));
            registry.inc(id, a.traces);
        }
        let lat = registry.dist("trace.latency");
        let seg_ids: Vec<DistId> =
            BUCKETS.iter().map(|b| registry.dist(&format!("trace.seg.{b}"))).collect();
        for tr in &store.traces {
            registry.record(lat, tr.latency());
            for s in &tr.segments {
                let bi = BUCKETS.iter().position(|&n| n == s.bucket()).unwrap();
                registry.record(seg_ids[bi], s.duration());
            }
        }
    }
    ClusterObs {
        registry,
        profiles,
        flight,
        shards,
        driver,
        grid,
        duration,
        wall_secs: 0.0,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_obs_renders() {
        let obs = ClusterObs::empty(2, "sequential");
        let doc = obs.to_json();
        assert_eq!(doc.get("shards").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("driver").and_then(Json::as_str), Some("sequential"));
        assert_eq!(doc.get("preds_per_sec").and_then(Json::as_f64), Some(0.0));
    }
}
