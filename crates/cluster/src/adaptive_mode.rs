//! Closed-loop (adaptive) cluster engine.
//!
//! Each proxy is a real edge cache: a Zipf catalog with Markov client
//! navigation (`workload::SynthWeb`), a shared tagged LRU cache
//! (`cachesim::TaggedCache`) fronting its whole client population, an
//! online `prefetch_core::AdaptiveController` provisioned against the
//! proxy's bottleneck bandwidth, and a per-proxy access predictor that
//! proposes prefetch candidates with probabilities. Misses and accepted
//! prefetches traverse the proxy's route of queueing links; items are
//! partitioned over origin shards by `item % n_shards`.
//!
//! Because every controller estimates `ρ̂′` from *its own* traffic, two
//! proxies with different local load converge to different thresholds —
//! the per-node divergence the cluster experiment (E13) demonstrates.

use crate::report::{ClusterReport, LinkReport, NodeReport};
use crate::sim::{earliest_link_event, proxy_seed, LinkState};
use crate::{AdaptiveWorkload, CandidateSource, ProxyPolicy, Topology};
use cachesim::{AccessKind, LruCache, ReplacementCache, TaggedCache};
use predictor::{MarkovPredictor, OraclePredictor, Predictor};
use prefetch_core::controller::{AdaptiveController, ControllerConfig};
use prefetch_core::estimator::EntryStatus;
use simcore::rng::Rng;
use simcore::stats::{BatchMeans, Welford};
use std::collections::{BinaryHeap, HashMap, HashSet};
use workload::synth_web::SynthWeb;
use workload::{ItemId, TraceRecord};

#[derive(Clone, Copy)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

#[derive(Clone, Copy)]
struct Job {
    proxy: u32,
    shard: u32,
    hop: usize,
    size: f64,
    issued: f64,
    item: ItemId,
    kind: JobKind,
}

/// A prefetch decision waiting out its pacing jitter before hitting the
/// first link.
#[derive(Clone, Copy)]
struct PendingPrefetch {
    due: f64,
    item: ItemId,
    size: f64,
    measured: bool,
}

impl PartialEq for PendingPrefetch {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingPrefetch {}
impl PartialOrd for PendingPrefetch {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPrefetch {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        other.due.total_cmp(&self.due)
    }
}

struct ProxyState {
    rng: Rng,
    jitter_rng: Rng,
    web: SynthWeb,
    cache: TaggedCache<ItemId, LruCache<ItemId>>,
    controller: AdaptiveController,
    predictor: Box<dyn Predictor>,
    inflight: HashSet<ItemId>,
    waiters: HashMap<ItemId, Vec<(f64, bool)>>,
    delayed: BinaryHeap<PendingPrefetch>,
    pending: TraceRecord,
    issued: u64,
    access_times: BatchMeans,
    retrievals: Welford,
    total_job_time: f64,
    hits: u64,
    measured: u64,
    prefetch_jobs: u64,
    threshold_sum: f64,
    threshold_n: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
    used_prefetch_bytes: f64,
}

pub(crate) fn run(
    topology: &Topology,
    w: &AdaptiveWorkload,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let n_shards = topology.n_shards() as u64;
    let mut links: Vec<LinkState> = topology.links().iter().map(LinkState::new).collect();

    let mut proxies: Vec<ProxyState> = w
        .proxies
        .iter()
        .enumerate()
        .map(|(i, web_cfg)| {
            let mut rng = Rng::new(proxy_seed(seed, i));
            let jitter_rng = rng.split();
            let mut web = SynthWeb::new(*web_cfg, &mut rng);
            let predictor: Box<dyn Predictor> = match w.predictor {
                CandidateSource::Oracle => Box::new(OraclePredictor::from_chain(&web.chain)),
                CandidateSource::Markov1 => Box::new(MarkovPredictor::new(1)),
            };
            let pending = web.next_request(&mut rng);
            ProxyState {
                rng,
                jitter_rng,
                web,
                cache: TaggedCache::new(LruCache::new(w.cache_capacity)),
                controller: AdaptiveController::new(ControllerConfig::model_a(
                    topology.proxy_bottleneck(i),
                )),
                predictor,
                inflight: HashSet::new(),
                waiters: HashMap::new(),
                delayed: BinaryHeap::new(),
                pending,
                issued: 0,
                access_times: BatchMeans::new(20),
                retrievals: Welford::new(),
                total_job_time: 0.0,
                hits: 0,
                measured: 0,
                prefetch_jobs: 0,
                threshold_sum: 0.0,
                threshold_n: 0,
                demand_bytes: 0.0,
                prefetch_bytes: 0.0,
                used_prefetch_bytes: 0.0,
            }
        })
        .collect();

    let warm = warmup as u64;
    let n_requests = requests as u64;
    let mut jobs: HashMap<u64, Job> = HashMap::new();
    let mut next_job_id: u64 = 0;
    let mut t_end = 0.0;

    enum Ev {
        Link(f64, usize),
        Request(usize),
        IssuePrefetch(usize),
    }

    loop {
        let link_ev = earliest_link_event(&links);
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for (i, p) in proxies.iter().enumerate() {
            if p.issued < n_requests && req.is_none_or(|(t, _)| p.pending.time < t) {
                req = Some((p.pending.time, i));
            }
            // Pending prefetches are still issued after the request stream
            // ends so any waiters attached to them resolve.
            if let Some(d) = p.delayed.peek() {
                if pre.is_none_or(|(t, _)| d.due < t) {
                    pre = Some((d.due, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        let ev = if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            break;
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            Ev::Link(t, l)
        } else if tr <= tp {
            Ev::Request(req.expect("request event").1)
        } else {
            Ev::IssuePrefetch(pre.expect("prefetch event").1)
        };

        match ev {
            Ev::IssuePrefetch(i) => {
                let pfx = proxies[i].delayed.pop().expect("pending prefetch");
                t_end = pfx.due;
                let p = &mut proxies[i];
                // The item may have been demand-fetched while waiting; the
                // in-flight marker was set at decision time, so only issue
                // if it is still not cached.
                if !p.cache.inner().contains(&pfx.item) {
                    p.prefetch_jobs += 1;
                    p.prefetch_bytes += pfx.size;
                    let shard = (pfx.item.0 % n_shards) as u32;
                    let id = next_job_id;
                    next_job_id += 1;
                    jobs.insert(
                        id,
                        Job {
                            proxy: i as u32,
                            shard,
                            hop: 0,
                            size: pfx.size,
                            issued: pfx.due,
                            item: pfx.item,
                            kind: JobKind::Prefetch { measured: pfx.measured },
                        },
                    );
                    links[topology.route(i, shard as usize)[0]].arrive(pfx.due, pfx.size, id);
                } else {
                    p.inflight.remove(&pfx.item);
                }
            }
            Ev::Link(t, l) => {
                t_end = t;
                for c in links[l].on_event(t) {
                    let job = jobs[&c.tag];
                    links[l].bytes_carried += job.size;
                    let route = topology.route(job.proxy as usize, job.shard as usize);
                    if job.hop + 1 < route.len() {
                        let mut fwd = job;
                        fwd.hop += 1;
                        jobs.insert(c.tag, fwd);
                        links[route[fwd.hop]].arrive(t, fwd.size, c.tag);
                        continue;
                    }
                    jobs.remove(&c.tag);
                    let p = &mut proxies[job.proxy as usize];
                    match job.kind {
                        JobKind::Demand { measured } => {
                            p.cache.admit_after_fetch(job.item);
                            p.inflight.remove(&job.item);
                            if measured {
                                let sojourn = t - job.issued;
                                p.access_times.push(sojourn);
                                p.retrievals.push(sojourn);
                                p.total_job_time += sojourn;
                            }
                            if let Some(ws) = p.waiters.remove(&job.item) {
                                for (tw, mw) in ws {
                                    if mw {
                                        p.access_times.push(t - tw);
                                    }
                                }
                            }
                        }
                        JobKind::Prefetch { measured } => {
                            if measured {
                                p.total_job_time += t - job.issued;
                            }
                            if let Some(ws) = p.waiters.remove(&job.item) {
                                // The item was demanded while the prefetch
                                // was in flight: it lands as a demand-fetched
                                // (tagged) entry and the waiters' clocks
                                // stop now. The transfer still served real
                                // demand, so its bytes count as used.
                                p.cache.admit_after_fetch(job.item);
                                p.used_prefetch_bytes += job.size;
                                for (tw, mw) in ws {
                                    if mw {
                                        p.access_times.push(t - tw);
                                    }
                                }
                            } else {
                                p.cache.prefetch_insert(job.item);
                                p.controller.on_prefetch_insert();
                            }
                            p.inflight.remove(&job.item);
                        }
                    }
                }
            }
            Ev::Request(i) => {
                let p = &mut proxies[i];
                let req = p.pending;
                p.pending = p.web.next_request(&mut p.rng);
                let t = req.time;
                t_end = t;
                let idx = p.issued;
                p.issued += 1;
                let in_window = idx >= warm;

                match p.cache.probe(req.item) {
                    AccessKind::HitTagged => {
                        p.controller.on_cache_hit(t, EntryStatus::Tagged, req.size);
                        if in_window {
                            p.access_times.push(0.0);
                            p.hits += 1;
                            p.measured += 1;
                        }
                    }
                    AccessKind::HitUntagged => {
                        p.controller.on_cache_hit(t, EntryStatus::Untagged, req.size);
                        p.used_prefetch_bytes += req.size;
                        if in_window {
                            p.access_times.push(0.0);
                            p.hits += 1;
                            p.measured += 1;
                        }
                    }
                    AccessKind::Miss => {
                        p.controller.on_miss(t, req.size);
                        if in_window {
                            p.measured += 1;
                        }
                        if p.inflight.contains(&req.item) {
                            // Join the in-flight fetch instead of duplicating
                            // the transfer.
                            p.waiters.entry(req.item).or_default().push((t, in_window));
                        } else {
                            p.inflight.insert(req.item);
                            p.demand_bytes += req.size;
                            let shard = (req.item.0 % n_shards) as u32;
                            let id = next_job_id;
                            next_job_id += 1;
                            jobs.insert(
                                id,
                                Job {
                                    proxy: i as u32,
                                    shard,
                                    hop: 0,
                                    size: req.size,
                                    issued: t,
                                    item: req.item,
                                    kind: JobKind::Demand { measured: in_window },
                                },
                            );
                            links[topology.route(i, shard as usize)[0]].arrive(t, req.size, id);
                        }
                    }
                }

                // Predict and prefetch.
                p.predictor.observe(req.item);
                let threshold = match w.policy {
                    ProxyPolicy::NoPrefetch => f64::INFINITY,
                    ProxyPolicy::FixedThreshold(th) => th,
                    ProxyPolicy::Adaptive => p.controller.policy().threshold,
                };
                if in_window && threshold.is_finite() {
                    p.threshold_sum += threshold;
                    p.threshold_n += 1;
                }
                if threshold.is_finite() {
                    for (item, prob) in p.predictor.candidates(w.max_candidates) {
                        if prob > threshold
                            && !p.cache.inner().contains(&item)
                            && !p.inflight.contains(&item)
                        {
                            p.inflight.insert(item);
                            let size = p.web.catalog.size(item);
                            let due = if w.prefetch_jitter > 0.0 {
                                t + p.jitter_rng.exp(1.0 / w.prefetch_jitter)
                            } else {
                                t
                            };
                            p.delayed.push(PendingPrefetch {
                                due,
                                item,
                                size,
                                measured: in_window,
                            });
                        }
                    }
                }
            }
        }
    }

    let nodes: Vec<NodeReport> = proxies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (mean_access, ci) = p.access_times.mean_ci();
            let measured = p.measured.max(1);
            NodeReport {
                proxy: i,
                measured_requests: p.measured,
                hit_ratio: p.hits as f64 / measured as f64,
                mean_access_time: mean_access,
                access_time_ci95: ci,
                mean_retrieval_time: p.retrievals.mean(),
                retrieval_per_request: p.total_job_time / measured as f64,
                prefetches_per_request: p.prefetch_jobs as f64 / n_requests.max(1) as f64,
                goodput_bytes: Some(p.used_prefetch_bytes.min(p.prefetch_bytes)),
                badput_bytes: Some((p.prefetch_bytes - p.used_prefetch_bytes).max(0.0)),
                demand_bytes: p.demand_bytes,
                mean_threshold: (p.threshold_n > 0).then(|| p.threshold_sum / p.threshold_n as f64),
                rho_prime_estimate: p.controller.rho_prime_estimate(),
                h_prime_estimate: p.controller.h_prime_estimate(),
            }
        })
        .collect();

    let link_reports: Vec<LinkReport> = topology
        .links()
        .iter()
        .zip(&links)
        .map(|(spec, state)| LinkReport {
            name: spec.name.clone(),
            utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
            bytes_carried: state.bytes_carried,
            jobs_completed: state.jobs_completed,
        })
        .collect();

    let total_measured: u64 = nodes.iter().map(|n| n.measured_requests).sum();
    let mean_access_time =
        nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
            / total_measured.max(1) as f64;
    let total_bytes: f64 = proxies.iter().map(|p| p.demand_bytes + p.prefetch_bytes).sum();

    ClusterReport {
        nodes,
        links: link_reports,
        mean_access_time,
        bytes_per_request: total_bytes / (n_requests * proxies.len() as u64).max(1) as f64,
        duration: t_end,
    }
}
