//! # cluster — multi-node network-of-queues prefetching simulator
//!
//! The paper analyses speculative prefetching over a *single* shared path.
//! This crate lifts every substrate in the workspace to a **topology** of
//! client populations, edge proxies, and sharded origin servers, where each
//! hop is its own queueing resource:
//!
//! * [`Topology`] describes proxies, origin shards, per-link bandwidth and
//!   discipline, and the route every `(proxy, shard)` fetch traverses —
//!   with builders for star, two-tier-tree, and sharded-origin layouts;
//! * each link runs as a `queueing` server (PS or FIFO);
//! * each proxy hosts a `cachesim` tagged cache and, in adaptive mode, a
//!   `prefetch_core::AdaptiveController` provisioned against its local
//!   bottleneck bandwidth;
//! * `workload` generates per-proxy client sessions (Zipf catalog, Markov
//!   navigation).
//!
//! [`ClusterSim::run`] executes one deterministic discrete-event run and
//! returns a [`ClusterReport`] with per-node and per-link utilisation `ρ`,
//! mean access time `t̄`, prefetch goodput/badput, and aggregate network
//! load; [`network_load_curve`] sweeps prefetch volume for the cluster
//! analogue of the paper's Figures 2–3.
//!
//! Both engines run on `simcore::sched`'s indexed event scheduler (one
//! timer per link / request stream / prefetch stream, plus a digest-
//! refresh timer on the epoch grid), so per-event cost is O(log n) and
//! 256-proxy meshes are routine (experiment E15). The retired
//! O(links + proxies) scan driver survives purely as a parity oracle in
//! the hidden `legacy` module, behind the default-on `legacy-oracle`
//! feature (release consumers opt out).
//!
//! ## Sharded parallel execution
//!
//! [`ClusterSim::run_sharded`] splits the topology into per-thread
//! shards ([`ShardPlan`]: contiguous proxy blocks, majority-use link
//! assignment) and runs one event loop per shard under a conservative
//! time-window protocol: the **lookahead** — the minimum propagation
//! delay of any cross-shard handoff, from per-link latencies
//! ([`Link::latency`], e.g. [`Topology::mesh_with_latency`]) — bounds how
//! far every shard may run past the globally earliest pending event
//! before a barrier exchanges in-flight transfers through per-shard
//! mailboxes. Determinism is contractual, not statistical: for a fixed
//! seed the [`ClusterReport`] is **bit-identical** across shard counts
//! and equal to the single-threaded [`ClusterSim::run`] (pinned by
//! `tests/shard_parity.rs`) — on zero-latency topologies the lookahead is
//! zero, no window is admissible, and the shards merge on one thread
//! instead. Experiment E17 drives the strong-scaling ladder over
//! 256/512-proxy latency meshes (~32k/~131k PS links).
//!
//! ## Observability
//!
//! [`ClusterSim::run_observed`] attaches `simcore::obs` probes to any
//! run and returns the report **plus** a [`ClusterObs`]: merged metrics
//! registry (request latency histogram, predictor/prefetch counters,
//! the coop router's digest traffic), epoch-grid time-series (per-link
//! utilisation, queue depth, cache occupancy, outstanding prefetches),
//! per-shard driver profiles, and a flight-recorder tail of recent
//! dispatches and cross-shard effects. Probes are pure observers: the
//! report stays bit-identical with observability on or off, at every
//! shard count (`tests/obs_parity.rs`), and the disabled default costs
//! one branch per hook. [`report_to_json`] and [`ClusterObs::to_json`]
//! serialise both halves with the workspace's hand-rolled JSON codec
//! for the `OBS_cluster.json` artifact.
//!
//! ## Three engines, one API
//!
//! * **Open loop** ([`Workload::Static`]) — every proxy runs the paper's
//!   Model-A mechanism (Bernoulli hits at `h′ + n̄(F)·p`, Poissonised
//!   prefetch stream). On the degenerate [`Topology::single`] this is
//!   event-for-event identical to `netsim::parametric`, which anchors the
//!   whole crate to the validated single-path simulator (pinned by test
//!   to 1e-6).
//! * **Closed loop** ([`Workload::Adaptive`]) — real caches, online
//!   estimators, and per-proxy threshold control. Because each controller
//!   estimates `ρ̂′` from its *own* traffic, proxies under different local
//!   load converge to different thresholds — the distributed behaviour the
//!   single-path model cannot express.
//! * **Cooperative** ([`Workload::Cooperative`]) — the closed loop plus
//!   the `coop` crate's digest/placement/router layer: peers answer each
//!   other's misses over [`Topology::mesh`]/[`Topology::ring`] peer links,
//!   with digest-staleness false hits falling back to the origin and a
//!   load-aware placement policy migrating virtual nodes on divergence.
//!   With one proxy this reduces *exactly* to adaptive mode (pinned by
//!   test to 1e-6), so cooperative results stay anchored too.
//!
//! ## Example
//!
//! ```
//! use cluster::{ClusterConfig, ClusterSim, StaticProxy, StaticWorkload, Topology, Workload};
//! use simcore::dist::Exponential;
//!
//! // Two proxies share a backbone: same offered load as two private paths,
//! // but now they impede each other.
//! let size = Exponential::with_mean(1.0);
//! let config = ClusterConfig {
//!     topology: Topology::two_tier(2, 50.0, 60.0),
//!     workload: Workload::Static(StaticWorkload {
//!         proxies: vec![
//!             StaticProxy { lambda: 20.0, h_prime: 0.3, n_f: 1.0, p: 0.8 },
//!             StaticProxy { lambda: 10.0, h_prime: 0.3, n_f: 1.0, p: 0.8 },
//!         ],
//!         size_dist: &size,
//!         catalog_items: None,
//!     }),
//!     requests_per_proxy: 20_000,
//!     warmup_per_proxy: 4_000,
//! };
//! let report = ClusterSim::new(&config).run(7);
//! assert!(report.link("backbone").unwrap().utilisation > 0.0);
//! assert!(report.mean_access_time.is_finite());
//! ```

mod closed_loop;
mod curve;
#[cfg(feature = "legacy-oracle")]
#[doc(hidden)]
pub mod legacy;
mod obs;
mod report;
mod shard;
mod sim;
mod static_mode;
mod topology;

pub use closed_loop::ReplayStats;
pub use curve::{network_load_curve, CurveSpec};
pub use obs::{report_to_json, ClusterObs};
#[doc(hidden)]
pub use report::parity;
pub use report::{ClusterReport, CoopReport, CurvePoint, LinkReport, NodeReport};
pub use sim::ClusterSim;
pub use topology::{Discipline, Link, ShardPlan, Topology, TopologyBuilder};
pub use workload::TraceSource;

use simcore::dist::Sample;
use workload::events::DEFAULT_CHUNK_RECORDS;
use workload::synth_web::SynthWebConfig;

/// Open-loop parameters of one proxy's population (the paper's symbols).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StaticProxy {
    /// Aggregate request rate `λ` of this proxy's clients.
    pub lambda: f64,
    /// No-prefetch hit ratio `h′` of the proxy cache.
    pub h_prime: f64,
    /// Prefetches per request `n̄(F)`.
    pub n_f: f64,
    /// Access probability `p` of prefetched items.
    pub p: f64,
}

/// Open-loop (Model-A mechanism) workload over every proxy.
pub struct StaticWorkload<'a> {
    /// One entry per topology proxy.
    pub proxies: Vec<StaticProxy>,
    /// Item-size distribution shared by all proxies (`Sync` so the
    /// sharded driver can sample it from every shard thread — all
    /// `simcore::dist` distributions are plain data).
    pub size_dist: &'a (dyn Sample + Sync),
    /// When `Some(n)`, every miss draws a concrete item id from a uniform
    /// catalog of `n` items and the proxy's misses run through an MSHR
    /// outstanding-fetch table: a miss for an in-flight item joins the
    /// fetch's FIFO waiter queue (a **delayed hit**) instead of launching
    /// another transfer, and settles when that fetch lands. `None` (the
    /// default) keeps the itemless flow, event-for-event identical to
    /// `netsim::parametric`.
    pub catalog_items: Option<u64>,
}

/// Where adaptive-mode prefetch candidates come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateSource {
    /// Ground-truth successor probabilities from the generating chain.
    Oracle,
    /// Learned order-1 Markov predictor.
    Markov1,
}

/// Per-proxy prefetch policy in adaptive mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProxyPolicy {
    /// Never prefetch (baseline).
    NoPrefetch,
    /// Prefetch candidates above a constant probability.
    FixedThreshold(f64),
    /// The paper's policy: threshold `ρ̂′` from each proxy's own online
    /// estimators — thresholds diverge with local load.
    Adaptive,
}

/// Closed-loop workload: real caches, controllers, and predictors.
#[derive(Clone, Debug)]
pub struct AdaptiveWorkload {
    /// One session-workload config per topology proxy (rates may differ —
    /// that is what makes the local thresholds diverge).
    pub proxies: Vec<SynthWebConfig>,
    /// Per-proxy cache capacity (items).
    pub cache_capacity: usize,
    /// Per-proxy cache capacity in **bytes** (size-units). `None` keeps
    /// the cache item-counted; `Some(b)` makes eviction byte-driven: an
    /// admission evicts as many LRU victims as its size requires, so under
    /// heterogeneous object sizes occupancy tracks the paper's byte-
    /// denominated load instead of an item count. The item budget still
    /// applies as a second bound.
    pub cache_bytes: Option<f64>,
    /// Maximum prefetch candidates considered per request.
    pub max_candidates: usize,
    /// Mean exponential pacing delay before a prefetch hits the network
    /// (zero issues at the request instant, creating batch arrivals).
    pub prefetch_jitter: f64,
    /// Prefetch policy applied at every proxy.
    pub policy: ProxyPolicy,
    /// Candidate source for every proxy.
    pub predictor: CandidateSource,
    /// When `Some(seed)`, every proxy draws its catalog and navigation
    /// chain from this shared seed, so all proxies serve the *same* item
    /// universe with the same hot set — the cross-proxy redundancy
    /// cooperative caching exists to remove. Arrival randomness stays
    /// per-proxy. `None` (the default situation) keeps fully independent
    /// per-proxy structures, exactly as before.
    pub shared_structure_seed: Option<u64>,
    /// Delayed-hits behaviour: MSHR table budget, miss coalescing,
    /// aggregate-delay ranking, and byte-charged prefetch thresholds.
    /// The default reproduces the coalescing engine bit-for-bit as it
    /// behaved before these knobs existed.
    pub delayed: DelayedHitsConfig,
}

/// How eviction and prefetch selection rank items in the closed loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RankingMode {
    /// Classic recency ranking: LRU eviction, probability-vs-threshold
    /// prefetch selection. The default.
    #[default]
    Recency,
    /// Delayed-hits-aware ranking: each settled fetch charges its full
    /// latency plus the sum of its waiters' residual waits to the fetched
    /// key (`prefetch_core::AggregateDelay`); eviction removes the
    /// minimum-aggregate-delay entry (`cachesim::ValueAwareCache`), and
    /// keys that have caused delayed hits get a proportionally lower
    /// prefetch threshold. Under high fetch latency this inverts the
    /// recency ranking (Atre et al., SIGCOMM 2020) — experiment E20.
    AggregateDelay,
}

/// Delayed-hits configuration of the closed-loop engines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayedHitsConfig {
    /// MSHR entry budget (`None` = unbounded). With a full table, a new
    /// demand miss fetches independently (untracked) and a prefetch
    /// candidate is dropped — both deterministic.
    pub mshr_entries: Option<usize>,
    /// Whether demand misses for in-flight keys coalesce onto the
    /// outstanding fetch (`true`, the default) or refetch independently
    /// (`false` — the baseline the coalescing win is measured against).
    pub coalesce: bool,
    /// Eviction/prefetch ranking mode.
    pub ranking: RankingMode,
    /// Charge prefetch candidates by bytes instead of count: compare each
    /// candidate against `prefetch_core`'s byte-charged threshold
    /// `ρ̂′·s/ŝ̄` rather than the item-counted `ρ̂′`. Item-counted configs
    /// are the degenerate case (`s = ŝ̄`). Only meaningful under
    /// [`ProxyPolicy::Adaptive`].
    pub size_aware: bool,
}

impl Default for DelayedHitsConfig {
    fn default() -> Self {
        DelayedHitsConfig {
            mshr_entries: None,
            coalesce: true,
            ranking: RankingMode::Recency,
            size_aware: false,
        }
    }
}

/// Closed-loop workload with the cooperative layer attached: peers answer
/// each other's misses via Bloom digests and consistent-hash placement
/// (see the `coop` crate), over the topology's proxy↔proxy peer links.
#[derive(Clone, Debug)]
pub struct CooperativeWorkload {
    /// The underlying adaptive configuration (caches, controllers,
    /// predictors).
    pub base: AdaptiveWorkload,
    /// Digest, placement, and rebalancing parameters.
    pub coop: coop::CoopConfig,
}

/// Trace-replay workload: the closed-loop engine driven by a recorded
/// `.events` stream instead of the synthetic web model.
///
/// Every proxy opens its own lazy [`TraceSource`] cursor and consumes the
/// records whose client id maps back to it (the recorder folds the source
/// proxy into the client id), so resident trace memory stays
/// O(proxies × chunk) regardless of trace length. Replaying a trace
/// recorded by [`ClusterSim::run_recorded`] on the same topology, seed,
/// and knobs reproduces the source run's [`ClusterReport`] bit-for-bit:
/// the jitter RNG splits off before any workload draw, and the learned
/// Markov predictor only ever proposes items the replay has already seen,
/// whose sizes the feed learned from the records themselves.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    /// The recorded trace (file-backed or in-memory).
    pub source: TraceSource,
    /// Per-proxy cache capacity (items).
    pub cache_capacity: usize,
    /// Per-proxy cache capacity in bytes; see
    /// [`AdaptiveWorkload::cache_bytes`].
    pub cache_bytes: Option<f64>,
    /// Maximum prefetch candidates considered per request.
    pub max_candidates: usize,
    /// Mean exponential pacing delay before a prefetch hits the network.
    pub prefetch_jitter: f64,
    /// Prefetch policy applied at every proxy.
    pub policy: ProxyPolicy,
    /// Candidate source. Must be [`CandidateSource::Markov1`]: oracle
    /// candidates need the generating chain, which a trace does not carry.
    pub predictor: CandidateSource,
    /// Delayed-hits behaviour; see [`AdaptiveWorkload::delayed`].
    pub delayed: DelayedHitsConfig,
    /// Records each proxy's stream reader holds resident at a time.
    pub chunk_records: usize,
}

impl TraceWorkload {
    /// A replay configuration copying the policy knobs of the adaptive
    /// workload that recorded `source` — the setup under which replay
    /// reproduces the source report bit-for-bit.
    pub fn replaying(w: &AdaptiveWorkload, source: TraceSource) -> Self {
        TraceWorkload {
            source,
            cache_capacity: w.cache_capacity,
            cache_bytes: w.cache_bytes,
            max_candidates: w.max_candidates,
            prefetch_jitter: w.prefetch_jitter,
            policy: w.policy,
            predictor: w.predictor,
            delayed: w.delayed,
            chunk_records: DEFAULT_CHUNK_RECORDS,
        }
    }

    fn validate(&self) {
        assert!(
            matches!(self.predictor, CandidateSource::Markov1),
            "trace replay needs a learned predictor: oracle candidates \
             require the generating chain, which a trace does not carry"
        );
        assert!(self.cache_capacity > 0, "cache capacity must be positive");
        if let Some(bytes) = self.cache_bytes {
            assert!(bytes > 0.0 && bytes.is_finite(), "cache byte capacity must be positive");
        }
        assert!(self.max_candidates > 0, "need at least one candidate");
        assert!(self.prefetch_jitter >= 0.0);
        assert!(self.chunk_records > 0, "chunk size must be positive");
        if let Some(entries) = self.delayed.mshr_entries {
            assert!(entries > 0, "MSHR entry budget must be positive");
        }
        if let Err(e) = self.source.open(self.chunk_records) {
            panic!("trace source failed to open: {e}");
        }
    }
}

/// Which engine drives the cluster.
pub enum Workload<'a> {
    /// Open-loop Model-A mechanism (comparable with the closed forms).
    Static(StaticWorkload<'a>),
    /// Closed-loop adaptive prefetching.
    Adaptive(AdaptiveWorkload),
    /// Closed-loop adaptive prefetching with cooperative caching.
    Cooperative(CooperativeWorkload),
    /// Closed-loop engine replaying a recorded `.events` trace.
    Trace(TraceWorkload),
}

/// A complete cluster configuration.
pub struct ClusterConfig<'a> {
    pub topology: Topology,
    pub workload: Workload<'a>,
    /// User requests issued by each proxy's population.
    pub requests_per_proxy: usize,
    /// Leading requests per proxy discarded as warm-up.
    pub warmup_per_proxy: usize,
}

impl ClusterConfig<'_> {
    pub(crate) fn validate(&self) {
        assert!(self.requests_per_proxy > self.warmup_per_proxy, "need post-warmup requests");
        match &self.workload {
            Workload::Static(w) => {
                assert_eq!(
                    w.proxies.len(),
                    self.topology.n_proxies(),
                    "one StaticProxy per topology proxy"
                );
                for (i, p) in w.proxies.iter().enumerate() {
                    assert!(p.lambda > 0.0 && p.lambda.is_finite(), "proxy {i}: bad λ");
                    assert!((0.0..=1.0).contains(&p.h_prime), "proxy {i}: bad h′");
                    assert!((0.0..=1.0).contains(&p.p), "proxy {i}: bad p");
                    assert!(p.n_f >= 0.0 && p.n_f.is_finite(), "proxy {i}: bad n̄(F)");
                }
                if let Some(n) = w.catalog_items {
                    assert!(n > 0, "static catalog must hold at least one item");
                }
            }
            Workload::Adaptive(w) => w.validate(&self.topology),
            Workload::Cooperative(w) => {
                w.base.validate(&self.topology);
                assert!(
                    self.topology.n_proxies() == 1 || self.topology.is_peer_meshed(),
                    "cooperative mode needs a peer path between every proxy pair \
                     (use Topology::mesh or Topology::ring)"
                );
            }
            Workload::Trace(w) => w.validate(),
        }
    }
}

impl AdaptiveWorkload {
    fn validate(&self, topology: &Topology) {
        assert_eq!(
            self.proxies.len(),
            topology.n_proxies(),
            "one SynthWebConfig per topology proxy"
        );
        assert!(self.cache_capacity > 0, "cache capacity must be positive");
        if let Some(bytes) = self.cache_bytes {
            assert!(bytes > 0.0 && bytes.is_finite(), "cache byte capacity must be positive");
        }
        assert!(self.max_candidates > 0, "need at least one candidate");
        assert!(self.prefetch_jitter >= 0.0);
        if let Some(entries) = self.delayed.mshr_entries {
            assert!(entries > 0, "MSHR entry budget must be positive");
        }
    }
}
