//! Sharded event-loop drivers: conservative time windows over
//! `simcore::sched`, with the single-threaded merge as the degenerate (and
//! oracle) case.
//!
//! ## The protocol
//!
//! A [`crate::ShardPlan`] splits the topology into shards, each owning a
//! subset of proxies and link servers. Every shard runs its *own*
//! `simcore::sched::Scheduler` over the shared event-class layout below;
//! anything one shard's event does to an entity owned by another shard is
//! expressed as a timestamped [`Effect`] — a job entering a remote link, a
//! peer-serve check at a remote proxy, a response delivered to a remote
//! proxy. Effects are the *only* channel between shards, which is what
//! makes the partitioning invisible: an effect's timestamp and content are
//! pure functions of the topology and the emitting shard's deterministic
//! state, never of which shard owns what.
//!
//! Two drivers execute the same shard set:
//!
//! * [`drive_sequential`] — one thread merges the shard schedulers,
//!   always firing the globally earliest `(time, class, entity)` event and
//!   applying same-instant effects depth-first, exactly the order a single
//!   monolithic scheduler would produce. This is the parity oracle, and
//!   the fallback whenever the partition's lookahead is zero.
//! * [`drive_windowed`] — one thread per shard plus a coordinator,
//!   synchronised with the classic **conservative time-window** scheme:
//!   with `L = plan.lookahead()` (the minimum propagation delay of any
//!   cross-shard handoff) and `T` the globally earliest pending event,
//!   every event in `[T, T + L)` can be executed without seeing any other
//!   shard's window — an effect emitted at `t ≥ T` arrives at
//!   `t + delay ≥ T + L`, past the window's end. Each round the
//!   coordinator publishes the horizon, shards drain their windows in
//!   parallel (posting cross-shard effects to `simcore::par::Mailboxes`),
//!   and a barrier exchanges the mail before the next horizon is computed
//!   from the shards' published next-event times (`simcore::par::TimeBoard`).
//!
//! ## Why determinism holds
//!
//! * **Within a shard** events fire in `(time, key)` order, and the local
//!   key layout lists classes in the same order, and entities within a
//!   class in ascending *global* id order — so a shard's local order is
//!   exactly the global order restricted to its entities.
//! * **Across shards within a window** no interaction exists by
//!   construction (that is what the lookahead guarantees), and same-time
//!   events on different shards touch disjoint state, so any thread
//!   interleaving yields the same end state as the global order.
//! * **Mailbox delivery order is irrelevant**: received effects land in
//!   per-entity [`simcore::sched::TimedQueue`]s keyed by
//!   `(time, job id)`, and job ids are allocated per *proxy* (a
//!   deterministic stream), so the replay order is a pure function of the
//!   simulation, not of thread scheduling.
//! * **Floating-point accumulation order is preserved** because every
//!   accumulator (per-proxy stats, per-link counters) is owned by exactly
//!   one shard and fed in that shard's local event order — the global
//!   order restricted to the owning entity.
//!
//! Digest refreshes are the one global synchronisation: the horizon never
//! crosses the next epoch boundary, and when every shard's next event lies
//! beyond it the coordinator collects per-proxy payloads
//! ([`coop::RefreshPayload`]) at a barrier, applies them to the shared
//! router, and only then opens the next window. Between boundaries the
//! router is immutable, so shards read it lock-free in spirit (a shared
//! `RwLock` read guard held for the whole window).

use crate::topology::ShardPlan;
use coop::{RefreshPayload, Router};
use simcore::faults::{FaultEvent, FaultKind};
use simcore::obs::{FlightKind, FlightRecord, FlightRecorder, ObsConfig};
use simcore::par::{Mailboxes, TimeBoard};
use simcore::sched::{KeyLayout, Scheduler};
use simcore::ShardProfile;
use std::collections::VecDeque;
use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

/// Event classes, in same-instant firing order. Both engines and every
/// driver build their key layouts from this sequence, so tie order is
/// global: link departures < queued link arrivals < peer-serve checks <
/// response deliveries < client requests < prefetch issues < fetch-
/// failure settlements (< digest refresh, which the drivers order
/// strictly last themselves).
pub(crate) const CLASS_DEPART: usize = 0;
pub(crate) const CLASS_ARRIVE: usize = 1;
pub(crate) const CLASS_CHECK: usize = 2;
pub(crate) const CLASS_DELIVER: usize = 3;
pub(crate) const CLASS_REQUEST: usize = 4;
pub(crate) const CLASS_PREFETCH: usize = 5;
pub(crate) const CLASS_FAIL: usize = 6;
pub(crate) const N_CLASSES: usize = 7;

/// A timestamped handoff between entities — possibly across shards. `J`
/// is the engine's job type; effects carry the whole job so a transfer
/// migrates between shards with its accounting intact.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Effect<J> {
    /// `job` enters link `link`'s queue at `t`.
    Arrive { link: u32, t: f64, job: J },
    /// A peer transfer for `job` reaches proxy `q` at `t`; `q` checks its
    /// cache and answers with a `Deliver` (serve or false hit).
    Check { q: u32, t: f64, job: J },
    /// `job`'s response reaches its requesting proxy `p` at `t`;
    /// `false_hit` marks a peer that turned out not to hold the item (the
    /// requester then falls back to the origin).
    Deliver { p: u32, t: f64, job: J, false_hit: bool },
    /// `job`'s fetch exhausted its retry budget; the failure settles at
    /// its requesting proxy `p` at `t` (the last attempt's timeout
    /// expiry). Always same-shard — the attempt schedule is resolved at
    /// the requester — but carried as an effect so the settlement fires
    /// in global `(time, rank)` order like every other handoff.
    Fail { p: u32, t: f64, job: J },
}

impl<J> Effect<J> {
    pub(crate) fn time(&self) -> f64 {
        match self {
            Effect::Arrive { t, .. }
            | Effect::Check { t, .. }
            | Effect::Deliver { t, .. }
            | Effect::Fail { t, .. } => *t,
        }
    }

    /// The shard that must execute this effect.
    pub(crate) fn owner(&self, plan: &ShardPlan) -> usize {
        match self {
            Effect::Arrive { link, .. } => plan.link_shard(*link as usize),
            Effect::Check { q, .. } => plan.proxy_shard(*q as usize),
            Effect::Deliver { p, .. } | Effect::Fail { p, .. } => plan.proxy_shard(*p as usize),
        }
    }

    /// `(event class, global entity id)` for flight-recorder records.
    fn trace_id(&self) -> (usize, u64) {
        match self {
            Effect::Arrive { link, .. } => (CLASS_ARRIVE, *link as u64),
            Effect::Check { q, .. } => (CLASS_CHECK, *q as u64),
            Effect::Deliver { p, .. } => (CLASS_DELIVER, *p as u64),
            Effect::Fail { p, .. } => (CLASS_FAIL, *p as u64),
        }
    }
}

/// Per-runner observability state: the shard's runtime profile plus its
/// flight-recorder ring. Boxed behind an `Option` on the runner so the
/// disabled case costs one branch per step.
pub(crate) struct RunnerObs {
    pub(crate) profile: ShardProfile,
    pub(crate) flight: FlightRecorder,
}

/// Waits on `barrier`, charging the wait to the shard's barrier-wall
/// profile when observability is on.
fn timed_wait(barrier: &Barrier, obs: &mut Option<Box<RunnerObs>>) {
    match obs.as_deref_mut() {
        Some(o) => {
            let t0 = Instant::now();
            barrier.wait();
            o.profile.barrier_wall.push(t0.elapsed().as_secs_f64());
        }
        None => {
            barrier.wait();
        }
    }
}

/// One proxy's epoch-boundary contribution:
/// `(global proxy, load estimate, payload)`.
pub(crate) type BoundaryEntry = (usize, f64, RefreshPayload);

/// The driver-facing surface of a shard-local engine core. Both cluster
/// engines implement it; the drivers below are generic over it.
pub(crate) trait EngineCore: Send {
    type Job: Copy + Send;

    /// Local stream counts per class, in class order.
    fn class_counts(&self) -> [usize; N_CLASSES];
    /// Global entity id of local stream `(class, idx)` — the global tie
    /// rank within the class.
    fn global_id(&self, class: usize, idx: usize) -> usize;
    /// Next due time of local stream `(class, idx)`.
    fn due(&self, class: usize, idx: usize) -> Option<f64>;
    /// Fires stream `(class, idx)` at `t`. Consequences for entities in
    /// scope at later times are queued internally; every handoff at the
    /// same instant or out of scope is emitted as an [`Effect`].
    fn dispatch(&mut self, class: usize, idx: usize, t: f64, router: Option<&Router>);
    /// Applies an effect owned by this scope *now*, at its timestamp
    /// (`e.time() == t`). May emit further effects.
    fn apply_now(&mut self, e: Effect<Self::Job>, t: f64);
    /// Queues an effect owned by this scope for its (future) timestamp.
    fn enqueue(&mut self, e: Effect<Self::Job>);
    /// Whether this scope owns the entity the effect targets.
    fn owns(&self, e: &Effect<Self::Job>) -> bool;
    /// Moves the effects emitted since the last take into `out`,
    /// preserving emission order.
    fn take_effects(&mut self, out: &mut Vec<Effect<Self::Job>>);
    /// Streams touched since the last drain, as `(class, local idx)`.
    fn drain_dirty(&mut self, out: &mut Vec<(usize, usize)>);
    /// Re-arms local link `idx`'s departure timer under `key` (the
    /// server-revision fast path).
    fn sync_link_timer(&mut self, idx: usize, sched: &mut Scheduler, key: usize);
    /// Appends this scope's boundary payloads (cooperative engines only).
    fn refresh_payloads(&mut self, out: &mut Vec<BoundaryEntry>);
    /// Applies a boundary fault (proxy crash / digest loss) at `t` to
    /// whatever part of the faulted entity this scope owns; a no-op for
    /// scopes that own none of it. Router-side consequences (quarantine)
    /// are the driver's job.
    fn apply_fault(&mut self, t: f64, kind: &FaultKind);
}

/// A shard bundled with its scheduler: owns event *selection* for one
/// scope, the way `closed_loop::run`'s single scheduler used to for the
/// whole topology.
pub(crate) struct ShardRunner<C: EngineCore> {
    pub(crate) core: C,
    sched: Scheduler,
    layout: KeyLayout,
    dirty: Vec<(usize, usize)>,
    staged: Vec<Effect<C::Job>>,
    dq: VecDeque<Effect<C::Job>>,
    obs: Option<Box<RunnerObs>>,
}

impl<C: EngineCore> ShardRunner<C> {
    pub(crate) fn new(core: C) -> Self {
        let counts = core.class_counts();
        let mut layout = KeyLayout::new();
        for count in counts {
            layout.class(count);
        }
        let mut sched = layout.scheduler();
        for (class, count) in counts.into_iter().enumerate() {
            for idx in 0..count {
                if let Some(t) = core.due(class, idx) {
                    sched.schedule(layout.key(class, idx), t);
                }
            }
        }
        ShardRunner {
            core,
            sched,
            layout,
            dirty: Vec::new(),
            staged: Vec::new(),
            dq: VecDeque::new(),
            obs: None,
        }
    }

    /// Arms this runner's profiler and flight recorder.
    pub(crate) fn with_obs(mut self, shard: usize, cfg: &ObsConfig) -> Self {
        self.obs = Some(Box::new(RunnerObs {
            profile: ShardProfile::new(shard),
            flight: FlightRecorder::new(cfg.flight_capacity),
        }));
        self
    }

    /// Tears the runner apart after a drive: the engine core plus whatever
    /// observability state accumulated.
    pub(crate) fn into_parts(self) -> (C, Option<Box<RunnerObs>>) {
        (self.core, self.obs)
    }

    /// Re-arms every stream the core touched since the last call.
    fn resync(&mut self) {
        self.core.drain_dirty(&mut self.dirty);
        while let Some((class, idx)) = self.dirty.pop() {
            let key = self.layout.key(class, idx);
            if class == CLASS_DEPART {
                self.core.sync_link_timer(idx, &mut self.sched, key);
            } else {
                self.sched.sync(key, self.core.due(class, idx));
            }
        }
    }

    /// Earliest pending `(time, global rank)`; rank is class-major so
    /// cross-shard comparisons reproduce a single global scheduler's tie
    /// order.
    pub(crate) fn peek(&mut self) -> Option<(f64, u64)> {
        self.sched.peek().map(|(t, key)| {
            let (class, idx) = self.layout.decode(key);
            (t, ((class as u64) << 48) | self.core.global_id(class, idx) as u64)
        })
    }

    /// Earliest pending event time.
    pub(crate) fn next_time(&mut self) -> Option<f64> {
        self.sched.peek().map(|(t, _)| t)
    }

    /// Fires the earliest event and stages its effects (does **not**
    /// settle them — the sequential driver settles globally).
    fn step(&mut self, router: Option<&Router>) -> f64 {
        if let Some(o) = &mut self.obs {
            o.profile.heap_depth(self.sched.heap_depth());
        }
        let (t, key) = self.sched.pop().expect("step on an idle shard");
        let (class, idx) = self.layout.decode(key);
        if let Some(o) = &mut self.obs {
            o.profile.events += 1;
            o.flight.record(FlightRecord {
                t,
                shard: o.profile.shard as u32,
                kind: FlightKind::Dispatch,
                class: class as u8,
                entity: self.core.global_id(class, idx) as u64,
            });
        }
        self.core.dispatch(class, idx, t, router);
        self.resync();
        t
    }

    /// Queues an incoming (strictly future — the lookahead guarantees
    /// it) cross-shard effect delivered at a window barrier.
    pub(crate) fn accept(&mut self, e: Effect<C::Job>) {
        debug_assert!(self.core.owns(&e));
        if let Some(o) = &mut self.obs {
            let (class, entity) = e.trace_id();
            o.flight.record(FlightRecord {
                t: e.time(),
                shard: o.profile.shard as u32,
                kind: FlightKind::EffectIn,
                class: class as u8,
                entity,
            });
        }
        self.core.enqueue(e);
        self.resync();
        if let Some(o) = &mut self.obs {
            o.profile.heap_depth(self.sched.heap_depth());
        }
    }

    /// Drains every event strictly below `limit` (or at it, when
    /// `inclusive` — the pre-refresh sweep), settling same-instant effect
    /// chains depth-first locally and posting cross-shard effects through
    /// `send`.
    fn run_window(
        &mut self,
        limit: f64,
        inclusive: bool,
        router: Option<&Router>,
        send: &mut impl FnMut(Effect<C::Job>),
    ) {
        loop {
            match self.sched.peek() {
                Some((t, _)) if t < limit || (inclusive && t <= limit) => {
                    let t = self.step(router);
                    self.settle_local(t, send);
                }
                _ => break,
            }
        }
    }

    /// Depth-first settlement of the effects staged by the last dispatch:
    /// a same-instant local effect is applied immediately and its children
    /// are processed before its siblings — reproducing the call-nesting a
    /// monolithic engine's inline handling produced. Future local effects
    /// are queued; out-of-scope effects go to `send`.
    fn settle_local(&mut self, t: f64, send: &mut impl FnMut(Effect<C::Job>)) {
        self.core.take_effects(&mut self.staged);
        debug_assert!(self.dq.is_empty());
        self.dq.extend(self.staged.drain(..));
        while let Some(e) = self.dq.pop_front() {
            if !self.core.owns(&e) {
                debug_assert!(e.time() > t, "cross-shard handoff with zero delay in a window");
                send(e);
                continue;
            }
            if e.time() == t {
                self.core.apply_now(e, t);
                self.core.take_effects(&mut self.staged);
                for child in self.staged.drain(..).rev() {
                    self.dq.push_front(child);
                }
            } else {
                self.core.enqueue(e);
            }
        }
        self.resync();
    }
}

/// Sorts one boundary's payload entries by proxy and applies them to the
/// router at the epoch boundary it has armed. Shared by every driver (and
/// the legacy scan), so refresh semantics cannot diverge.
pub(crate) fn flush_boundary(router: &mut Router, mut entries: Vec<BoundaryEntry>) {
    let t = router.next_refresh();
    entries.sort_by_key(|&(proxy, _, _)| proxy);
    let loads: Vec<f64> = entries.iter().map(|&(_, load, _)| load).collect();
    let payloads: Vec<(usize, RefreshPayload)> =
        entries.into_iter().map(|(proxy, _, payload)| (proxy, payload)).collect();
    router.apply_payloads(t, payloads, &loads);
}

/// Collects every shard's boundary payloads and flushes them.
fn refresh_all<C: EngineCore>(router: &mut Router, runners: &mut [ShardRunner<C>]) {
    let mut entries: Vec<BoundaryEntry> = Vec::new();
    for runner in runners.iter_mut() {
        runner.core.refresh_payloads(&mut entries);
        if let Some(o) = &mut runner.obs {
            o.profile.refreshes += 1;
        }
    }
    flush_boundary(router, entries);
}

/// Applies one boundary fault: every scope handles its share of the
/// faulted entity, and a crash additionally quarantines the proxy's
/// advertised state in the router. Shared by both drivers so crash
/// semantics cannot diverge.
fn fault_all<C: EngineCore>(
    router: Option<&mut Router>,
    runners: &mut [ShardRunner<C>],
    ev: &FaultEvent,
) {
    for runner in runners.iter_mut() {
        runner.core.apply_fault(ev.t, &ev.kind);
        runner.resync();
    }
    if let (Some(r), FaultKind::ProxyCrash { proxy }) = (router, &ev.kind) {
        r.quarantine(*proxy);
    }
}

/// Single-threaded driver: merges the shard schedulers into the global
/// `(time, rank)` order, with depth-first cross-shard effect settlement at
/// each instant. With one full-scope shard this **is** the classic
/// single-threaded engine driver; with several shards it is the oracle the
/// windowed driver is pinned against — and the required fallback when the
/// partition's lookahead is zero (a conservative window of width zero
/// admits no parallel execution at all).
pub(crate) fn drive_sequential<C: EngineCore>(
    mut runners: Vec<ShardRunner<C>>,
    mut router: Option<Router>,
    plan: &ShardPlan,
    faults: &[FaultEvent],
) -> (Vec<ShardRunner<C>>, Option<Router>) {
    let mut dq: VecDeque<Effect<C::Job>> = VecDeque::new();
    let mut staged: Vec<Effect<C::Job>> = Vec::new();
    let mut fi = 0usize;
    loop {
        // The globally earliest (time, rank) across shards.
        let mut best: Option<(f64, u64, usize)> = None;
        for (i, runner) in runners.iter_mut().enumerate() {
            if let Some((t, rank)) = runner.peek() {
                let better = match best {
                    None => true,
                    Some((bt, br, _)) => t < bt || (t == bt && rank < br),
                };
                if better {
                    best = Some((t, rank, i));
                }
            }
        }
        let Some((t, _, who)) = best else { break };

        // Boundary faults and epoch refreshes strictly between events
        // fire first (events at the boundary instant win), faults before
        // refreshes on ties — a crash's force-snapshot recovery must be
        // visible to the boundary that follows it.
        let next_fault = faults.get(fi).map(|e| e.t).unwrap_or(f64::INFINITY);
        let next_refresh = router.as_ref().map(|r| r.next_refresh()).unwrap_or(f64::INFINITY);
        if next_fault < t && next_fault <= next_refresh {
            fault_all(router.as_mut(), &mut runners, &faults[fi]);
            fi += 1;
            continue;
        }
        if let Some(r) = router.as_mut() {
            if r.next_refresh() < t {
                refresh_all(r, &mut runners);
                continue;
            }
        }

        runners[who].step(router.as_ref());
        runners[who].core.take_effects(&mut staged);
        debug_assert!(dq.is_empty());
        dq.extend(staged.drain(..));
        // Global depth-first settlement: an effect's children (emitted by
        // applying it, possibly on another shard) run before its siblings,
        // reproducing the monolithic engine's inline nesting exactly.
        while let Some(e) = dq.pop_front() {
            let owner = e.owner(plan);
            let runner = &mut runners[owner];
            debug_assert!(runner.core.owns(&e));
            if e.time() == t {
                runner.core.apply_now(e, t);
                runner.core.take_effects(&mut staged);
                for child in staged.drain(..).rev() {
                    dq.push_front(child);
                }
            } else {
                runner.core.enqueue(e);
            }
            runner.resync();
        }
    }
    (runners, router)
}

/// What the coordinator asks the shard threads to do next.
#[derive(Clone, Copy, Debug)]
enum Round {
    /// Drain the window up to `limit` (inclusive at the pre-refresh
    /// boundary sweep).
    Window { limit: f64, inclusive: bool },
    /// Build and publish refresh payloads for the armed epoch boundary.
    Refresh,
    /// Apply a boundary fault: each shard handles its share of the
    /// faulted entity; the coordinator quarantines the router afterwards.
    Fault { t: f64, kind: FaultKind },
    /// All shards idle: exit.
    Stop,
}

/// Multi-threaded conservative-window driver: one `std::thread::scope`
/// worker per shard plus the calling thread as coordinator. Requires
/// `plan.lookahead() > 0` — callers fall back to [`drive_sequential`]
/// otherwise. Produces bit-identical state evolution to the sequential
/// driver (see the module docs for the argument; `shard_parity.rs` for the
/// pin).
pub(crate) fn drive_windowed<C: EngineCore>(
    mut runners: Vec<ShardRunner<C>>,
    router: Option<Router>,
    plan: &ShardPlan,
    faults: &[FaultEvent],
) -> (Vec<ShardRunner<C>>, Option<Router>) {
    let lookahead = plan.lookahead();
    assert!(lookahead > 0.0, "windowed driver needs positive lookahead");
    let n = runners.len();

    let board = TimeBoard::new(n);
    for (i, runner) in runners.iter_mut().enumerate() {
        board.publish(i, runner.next_time());
    }
    let mail: Mailboxes<Effect<C::Job>> = Mailboxes::new(n);
    // Workers + coordinator: three waits per round (publish horizon; work;
    // exchange mail and publish times).
    let barrier = Barrier::new(n + 1);
    let round = Mutex::new(Round::Stop);
    let router_cell = RwLock::new(router);
    let payload_cell: Mutex<Vec<BoundaryEntry>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for (me, runner) in runners.iter_mut().enumerate() {
            let (board, mail, barrier, round) = (&board, &mail, &barrier, &round);
            let (router_cell, payload_cell) = (&router_cell, &payload_cell);
            scope.spawn(move || loop {
                timed_wait(barrier, &mut runner.obs);
                let what = *round.lock().expect("round descriptor poisoned");
                match what {
                    Round::Stop => break,
                    Round::Window { limit, inclusive } => {
                        let timer = runner.obs.is_some().then(Instant::now);
                        let mut sent = 0u64;
                        {
                            let guard = router_cell.read().expect("router poisoned");
                            runner.run_window(limit, inclusive, guard.as_ref(), &mut |e| {
                                let dest = e.owner(plan);
                                debug_assert_ne!(dest, me, "local effect routed to the mailboxes");
                                sent += 1;
                                mail.send(dest, e);
                            });
                        }
                        if let Some(o) = &mut runner.obs {
                            o.profile.windows += 1;
                            o.profile.effects_sent += sent;
                            if let Some(t0) = timer {
                                o.profile.window_wall.push(t0.elapsed().as_secs_f64());
                            }
                        }
                    }
                    Round::Refresh => {
                        {
                            let mut sink = payload_cell.lock().expect("payload sink poisoned");
                            runner.core.refresh_payloads(&mut sink);
                        }
                        if let Some(o) = &mut runner.obs {
                            o.profile.refreshes += 1;
                        }
                    }
                    Round::Fault { t, kind } => {
                        // Each scope mutates only the entities it owns, so
                        // the parallel application is race-free; the
                        // router-side quarantine is the coordinator's.
                        runner.core.apply_fault(t, &kind);
                        runner.resync();
                    }
                }
                timed_wait(barrier, &mut runner.obs);
                // Exchange phase: everyone's sends for this round are in
                // (the barrier above orders them); drain ours and publish
                // our next pending time for the coordinator's horizon.
                let msgs = mail.drain(me);
                if let Some(o) = &mut runner.obs {
                    o.profile.mailbox_drained(msgs.len());
                }
                for e in msgs {
                    runner.accept(e);
                }
                board.publish(me, runner.next_time());
                timed_wait(barrier, &mut runner.obs);
            });
        }

        // Coordinator.
        let mut fi = 0usize;
        loop {
            let t_min = board.min();
            let next_refresh =
                router_cell.read().expect("router poisoned").as_ref().map(|r| r.next_refresh());
            let next_fault = faults.get(fi).map(|e| e.t).unwrap_or(f64::INFINITY);
            // The earliest pending boundary of either kind; ties go to the
            // fault, matching the sequential driver.
            let boundary = next_refresh.map_or(next_fault, |r| next_fault.min(r));
            let what = if t_min.is_infinite() {
                Round::Stop
            } else if boundary < t_min {
                if next_fault <= next_refresh.unwrap_or(f64::INFINITY) {
                    let ev = &faults[fi];
                    Round::Fault { t: ev.t, kind: ev.kind }
                } else {
                    Round::Refresh
                }
            } else {
                let (limit, inclusive) = if boundary.is_finite() {
                    // Events exactly at a boundary precede it: sweep them
                    // (and only them) inclusively.
                    if t_min == boundary {
                        (boundary, true)
                    } else {
                        ((t_min + lookahead).min(boundary), false)
                    }
                } else {
                    (t_min + lookahead, false)
                };
                assert!(
                    inclusive || limit > t_min,
                    "window [{t_min}, {limit}) collapsed — lookahead {lookahead} \
                     under-flows the time magnitude"
                );
                Round::Window { limit, inclusive }
            };
            *round.lock().expect("round descriptor poisoned") = what;
            barrier.wait();
            if matches!(what, Round::Stop) {
                break;
            }
            barrier.wait();
            match what {
                Round::Refresh => {
                    // Workers are in the exchange phase and never touch the
                    // router there; apply the boundary while they drain mail.
                    let entries = std::mem::take(&mut *payload_cell.lock().expect("payload sink"));
                    let mut guard = router_cell.write().expect("router poisoned");
                    flush_boundary(
                        guard.as_mut().expect("refresh round without a router"),
                        entries,
                    );
                }
                Round::Fault { kind, .. } => {
                    if let FaultKind::ProxyCrash { proxy } = kind {
                        let mut guard = router_cell.write().expect("router poisoned");
                        if let Some(r) = guard.as_mut() {
                            r.quarantine(proxy);
                        }
                    }
                    fi += 1;
                }
                _ => {}
            }
            barrier.wait();
        }
    });

    let router = router_cell.into_inner().expect("router poisoned");
    (runners, router)
}

/// Chooses the driver a plan admits: windows when the lookahead is
/// positive and there is more than one shard, the sequential merge
/// otherwise.
pub(crate) fn drive<C: EngineCore>(
    runners: Vec<ShardRunner<C>>,
    router: Option<Router>,
    plan: &ShardPlan,
    faults: &[FaultEvent],
) -> (Vec<ShardRunner<C>>, Option<Router>) {
    if runners.len() > 1 && plan.lookahead() > 0.0 {
        drive_windowed(runners, router, plan, faults)
    } else {
        drive_sequential(runners, router, plan, faults)
    }
}
