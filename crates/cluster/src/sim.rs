//! The cluster simulator facade and shared link machinery.

use crate::closed_loop;
use crate::report::ClusterReport;
use crate::static_mode;
use crate::{ClusterConfig, Workload};
use queueing::{Completion, FifoServer, PsServer, Server};
use simcore::Scheduler;

/// A multi-node discrete-event run over a [`crate::Topology`].
///
/// `ClusterSim` owns nothing but a borrow of its configuration; [`run`]
/// is pure in the seed, so sweeps can share one config across threads.
///
/// [`run`]: ClusterSim::run
pub struct ClusterSim<'a> {
    config: &'a ClusterConfig<'a>,
}

impl<'a> ClusterSim<'a> {
    pub fn new(config: &'a ClusterConfig<'a>) -> Self {
        config.validate();
        ClusterSim { config }
    }

    /// Runs the simulation to completion. Deterministic in `seed`.
    pub fn run(&self, seed: u64) -> ClusterReport {
        match &self.config.workload {
            Workload::Static(w) => static_mode::run(
                &self.config.topology,
                w,
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
            ),
            Workload::Adaptive(w) => closed_loop::run(
                &self.config.topology,
                w,
                None,
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
            ),
            Workload::Cooperative(w) => closed_loop::run(
                &self.config.topology,
                &w.base,
                Some(&w.coop),
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
            ),
        }
    }
}

/// Per-proxy RNG seed: proxy 0 uses the run seed unchanged so the
/// degenerate single-proxy topology makes *exactly* the draw sequence of
/// `netsim::parametric::run` (the parity property the tests pin down);
/// later proxies decorrelate through golden-ratio increments.
pub(crate) fn proxy_seed(seed: u64, proxy: usize) -> u64 {
    seed.wrapping_add((proxy as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One topology link instantiated as a queueing server.
pub(crate) struct LinkState {
    server: LinkServer,
    pub bytes_carried: f64,
    pub jobs_completed: u64,
    /// Server revision last mirrored into the scheduler (see
    /// [`LinkState::sync_timer`]).
    synced_rev: u64,
}

enum LinkServer {
    Ps(PsServer<u64>),
    Fifo(FifoServer<u64>),
}

impl LinkState {
    pub fn new(link: &crate::Link) -> Self {
        let server = match link.discipline {
            crate::Discipline::ProcessorSharing => LinkServer::Ps(PsServer::new(link.bandwidth)),
            crate::Discipline::Fifo => LinkServer::Fifo(FifoServer::new(link.bandwidth)),
        };
        LinkState { server, bytes_carried: 0.0, jobs_completed: 0, synced_rev: 0 }
    }

    pub fn arrive(&mut self, t: f64, work: f64, job: u64) {
        match &mut self.server {
            LinkServer::Ps(s) => s.arrive(t, work, job),
            LinkServer::Fifo(s) => s.arrive(t, work, job),
        }
    }

    pub fn next_event(&self) -> Option<f64> {
        match &self.server {
            LinkServer::Ps(s) => s.next_event(),
            LinkServer::Fifo(s) => s.next_event(),
        }
    }

    pub fn on_event(&mut self, t: f64) -> Vec<Completion<u64>> {
        let done = match &mut self.server {
            LinkServer::Ps(s) => s.on_event(t),
            LinkServer::Fifo(s) => s.on_event(t),
        };
        self.jobs_completed += done.len() as u64;
        done
    }

    pub fn busy_time(&self) -> f64 {
        match &self.server {
            LinkServer::Ps(s) => s.busy_time(),
            LinkServer::Fifo(s) => s.busy_time(),
        }
    }

    /// The server's next-event revision (see [`queueing::Server::revision`]).
    pub fn revision(&self) -> u64 {
        match &self.server {
            LinkServer::Ps(s) => s.revision(),
            LinkServer::Fifo(s) => s.revision(),
        }
    }

    /// Mirrors this link's next departure into the indexed scheduler under
    /// `key`. A no-op when the server revision has not moved since the last
    /// sync, so re-syncing after every touched event costs nothing when
    /// the deadline is unchanged.
    pub fn sync_timer(&mut self, sched: &mut Scheduler, key: usize) {
        let rev = self.revision();
        if rev == self.synced_rev {
            return;
        }
        self.synced_rev = rev;
        sched.sync(key, self.next_event());
    }
}
