//! The cluster simulator facade and shared link/scope machinery.

use crate::closed_loop::{self, EngineWorkload, ReplayStats, RunExtras};
use crate::obs::ClusterObs;
use crate::report::ClusterReport;
use crate::static_mode;
use crate::topology::ShardPlan;
use crate::{ClusterConfig, Topology, Workload};
use queueing::{Completion, FifoServer, PsServer, Server};
use simcore::faults::FaultConfig;
use simcore::obs::ObsConfig;
use simcore::Scheduler;
use workload::TraceRecord;

/// A multi-node discrete-event run over a [`crate::Topology`].
///
/// `ClusterSim` owns nothing but a borrow of its configuration; [`run`]
/// is pure in the seed, so sweeps can share one config across threads.
///
/// [`run`]: ClusterSim::run
pub struct ClusterSim<'a> {
    config: &'a ClusterConfig<'a>,
}

impl<'a> ClusterSim<'a> {
    pub fn new(config: &'a ClusterConfig<'a>) -> Self {
        config.validate();
        ClusterSim { config }
    }

    /// Runs the simulation to completion on the single-threaded driver.
    /// Deterministic in `seed`.
    pub fn run(&self, seed: u64) -> ClusterReport {
        self.run_on(seed, &ShardPlan::partition(&self.config.topology, 1), None, false, None).0
    }

    /// Runs the simulation partitioned into `shards` shard-local event
    /// loops (see [`crate::shard`] for the protocol). Deterministic in
    /// `seed` **and in `shards`**: the report is bit-identical to
    /// [`ClusterSim::run`] for every shard count — the property
    /// `cluster/tests/shard_parity.rs` pins. Shards execute on their own
    /// threads whenever the partition admits a positive conservative
    /// lookahead (cross-shard hops with propagation latency, e.g.
    /// [`Topology::mesh_with_latency`]); a zero-lookahead partition (any
    /// zero-latency crossing hop) admits no conservative window at all,
    /// so the shards are merged on one thread instead.
    pub fn run_sharded(&self, seed: u64, shards: usize) -> ClusterReport {
        self.run_on(seed, &ShardPlan::partition(&self.config.topology, shards), None, false, None).0
    }

    /// Runs the simulation under a deterministic fault plan: link
    /// outages/degradations, proxy crashes, origin brownouts, and digest
    /// losses injected at scheduled virtual times, with per-fetch
    /// timeout–retry–backoff governed by the plan's [`RetryPolicy`].
    ///
    /// Two pinned determinism properties (`cluster/tests/fault_parity.rs`):
    /// an **empty** plan is bit-identical to [`ClusterSim::run_sharded`]
    /// at the same `(seed, shards)` — the fault machinery adds no RNG
    /// draws, float operations, or event reorderings until a fault
    /// actually fires — and any plan is bit-identical across shard
    /// counts.
    ///
    /// [`RetryPolicy`]: simcore::faults::RetryPolicy
    pub fn run_faulted(&self, seed: u64, shards: usize, faults: &FaultConfig) -> ClusterReport {
        let plan = ShardPlan::partition(&self.config.topology, shards);
        self.run_on(seed, &plan, None, false, Some(faults)).0
    }

    /// [`ClusterSim::run_faulted`] with the observability layer attached
    /// (see [`ClusterSim::run_observed`] for the obs contract).
    pub fn run_faulted_observed(
        &self,
        seed: u64,
        shards: usize,
        faults: &FaultConfig,
        obs: &ObsConfig,
    ) -> (ClusterReport, ClusterObs) {
        let plan = ShardPlan::partition(&self.config.topology, shards);
        let driver = if shards > 1 && plan.lookahead() > 0.0 { "windowed" } else { "sequential" };
        let wall = std::time::Instant::now();
        let (report, obs_out, _) = self.run_on(seed, &plan, Some(obs), false, Some(faults));
        let mut obs_out = obs_out.unwrap_or_else(|| ClusterObs::empty(shards, driver));
        obs_out.wall_secs = wall.elapsed().as_secs_f64();
        (report, obs_out)
    }

    /// Runs the simulation while recording every issued request, returning
    /// the report and the merged request trace (globally time-ordered,
    /// with each record's source proxy folded into its client id). The
    /// report is bit-identical to [`ClusterSim::run_sharded`] at the same
    /// `(seed, shards)` — recording only copies requests out, it never
    /// draws RNG or reorders events — and the recorded trace itself is
    /// identical at every shard count. Encode it with
    /// [`workload::events::write_events_file`] (or
    /// [`workload::TraceSource::from_records`]) and replay it through
    /// [`crate::Workload::Trace`].
    pub fn run_recorded(&self, seed: u64, shards: usize) -> (ClusterReport, Vec<TraceRecord>) {
        let plan = ShardPlan::partition(&self.config.topology, shards);
        let (report, _, extras) = self.run_on(seed, &plan, None, true, None);
        (report, extras.recorded.expect("recording was requested"))
    }

    /// Runs a [`crate::Workload::Trace`] replay, returning the report and
    /// the replay accounting (records consumed, peak per-stream resident
    /// trace bytes — O(chunk), never O(trace)).
    ///
    /// # Panics
    ///
    /// Panics if the configured workload is not `Workload::Trace`.
    pub fn run_replayed(&self, seed: u64, shards: usize) -> (ClusterReport, ReplayStats) {
        assert!(
            matches!(self.config.workload, Workload::Trace(_)),
            "run_replayed needs a Workload::Trace config"
        );
        let plan = ShardPlan::partition(&self.config.topology, shards);
        let (report, _, extras) = self.run_on(seed, &plan, None, false, None);
        (report, extras.replay.expect("trace workloads produce replay stats"))
    }

    /// Runs the simulation with the observability layer attached: the
    /// report plus a [`ClusterObs`] of metrics, probes, and profiles.
    ///
    /// The report is **bit-identical** to [`ClusterSim::run_sharded`] at
    /// the same `(seed, shards)` whether `obs` is enabled or not — probes
    /// never draw RNG, reorder events, or feed anything back (pinned by
    /// `cluster/tests/obs_parity.rs`). With `obs.enabled == false` the
    /// telemetry comes back as an empty shell.
    pub fn run_observed(
        &self,
        seed: u64,
        shards: usize,
        obs: &ObsConfig,
    ) -> (ClusterReport, ClusterObs) {
        let plan = ShardPlan::partition(&self.config.topology, shards);
        let driver = if shards > 1 && plan.lookahead() > 0.0 { "windowed" } else { "sequential" };
        let wall = std::time::Instant::now();
        let (report, obs_out, _) = self.run_on(seed, &plan, Some(obs), false, None);
        let mut obs_out = obs_out.unwrap_or_else(|| ClusterObs::empty(shards, driver));
        obs_out.wall_secs = wall.elapsed().as_secs_f64();
        (report, obs_out)
    }

    fn run_on(
        &self,
        seed: u64,
        plan: &ShardPlan,
        obs: Option<&ObsConfig>,
        record: bool,
        faults: Option<&FaultConfig>,
    ) -> (ClusterReport, Option<ClusterObs>, RunExtras) {
        match &self.config.workload {
            Workload::Static(w) => static_mode::run_observed(
                &self.config.topology,
                w,
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
                plan,
                obs,
                record,
                faults,
            ),
            Workload::Adaptive(w) => closed_loop::run_observed(
                &self.config.topology,
                EngineWorkload::Synth(w),
                None,
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
                plan,
                obs,
                record,
                faults,
            ),
            Workload::Cooperative(w) => closed_loop::run_observed(
                &self.config.topology,
                EngineWorkload::Synth(&w.base),
                Some(&w.coop),
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
                plan,
                obs,
                record,
                faults,
            ),
            Workload::Trace(w) => closed_loop::run_observed(
                &self.config.topology,
                EngineWorkload::Trace(w),
                None,
                self.config.requests_per_proxy,
                self.config.warmup_per_proxy,
                seed,
                plan,
                obs,
                record,
                faults,
            ),
        }
    }
}

/// Per-proxy RNG seed: proxy 0 uses the run seed unchanged so the
/// degenerate single-proxy topology makes *exactly* the draw sequence of
/// `netsim::parametric::run` (the parity property the tests pin down);
/// later proxies decorrelate through golden-ratio increments
/// ([`simcore::rng::stream_seed`]). Because the stream is a pure function
/// of the *global* proxy index, every sharding hands each proxy the same
/// draws.
pub(crate) fn proxy_seed(seed: u64, proxy: usize) -> u64 {
    simcore::rng::stream_seed(seed, proxy as u64)
}

/// The slice of a topology one shard owns: its proxies and links, with
/// global↔local index maps. The full scope (every entity, identity maps)
/// is the single-threaded case — the engines are written against `Scope`
/// exclusively, so the monolithic and sharded drivers run literally the
/// same handler code.
pub(crate) struct Scope {
    /// Local → global link index.
    pub links: Vec<usize>,
    /// Local → global proxy index.
    pub proxies: Vec<usize>,
    link_local: Vec<usize>,
    proxy_local: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl Scope {
    /// The whole topology as one scope (used by the legacy scan driver;
    /// the shard drivers build per-shard scopes, which degenerate to this
    /// at one shard).
    #[cfg(feature = "legacy-oracle")]
    pub fn full(topology: &Topology) -> Scope {
        Scope {
            links: (0..topology.links().len()).collect(),
            proxies: (0..topology.n_proxies()).collect(),
            link_local: (0..topology.links().len()).collect(),
            proxy_local: (0..topology.n_proxies()).collect(),
        }
    }

    /// The entities `plan` assigns to shard `s`, in ascending global
    /// order (so local tie order equals global tie order).
    pub fn shard(topology: &Topology, plan: &ShardPlan, s: usize) -> Scope {
        let links: Vec<usize> =
            (0..topology.links().len()).filter(|&l| plan.link_shard(l) == s).collect();
        let proxies: Vec<usize> =
            (0..topology.n_proxies()).filter(|&p| plan.proxy_shard(p) == s).collect();
        let mut link_local = vec![ABSENT; topology.links().len()];
        for (li, &g) in links.iter().enumerate() {
            link_local[g] = li;
        }
        let mut proxy_local = vec![ABSENT; topology.n_proxies()];
        for (li, &g) in proxies.iter().enumerate() {
            proxy_local[g] = li;
        }
        Scope { links, proxies, link_local, proxy_local }
    }

    /// Local index of global link `g`, if owned by this scope.
    pub fn link_local(&self, g: usize) -> Option<usize> {
        let l = self.link_local[g];
        (l != ABSENT).then_some(l)
    }

    /// Local index of global proxy `g`, if owned by this scope.
    pub fn proxy_local(&self, g: usize) -> Option<usize> {
        let p = self.proxy_local[g];
        (p != ABSENT).then_some(p)
    }
}

/// Global-order lookup over a set of scopes: which `(scope index, local
/// index)` owns each global proxy and link. The report mergers iterate
/// these tables in ascending global order, which is what keeps every
/// floating-point reduction identical under every partitioning — both
/// engines share this scaffolding so the contract cannot drift between
/// them.
pub(crate) struct ScopeIndex {
    proxy_at: Vec<(usize, usize)>,
    link_at: Vec<(usize, usize)>,
}

impl ScopeIndex {
    /// Builds the tables from the scopes of a complete partition (every
    /// global entity owned exactly once).
    pub fn new<'s>(topology: &Topology, scopes: impl Iterator<Item = &'s Scope>) -> ScopeIndex {
        let mut proxy_at = vec![(usize::MAX, 0); topology.n_proxies()];
        let mut link_at = vec![(usize::MAX, 0); topology.links().len()];
        for (si, scope) in scopes.enumerate() {
            for (li, &g) in scope.proxies.iter().enumerate() {
                proxy_at[g] = (si, li);
            }
            for (li, &g) in scope.links.iter().enumerate() {
                link_at[g] = (si, li);
            }
        }
        debug_assert!(proxy_at.iter().chain(&link_at).all(|&(s, _)| s != usize::MAX));
        ScopeIndex { proxy_at, link_at }
    }

    /// `(scope, local)` owning global proxy `g`.
    pub fn proxy(&self, g: usize) -> (usize, usize) {
        self.proxy_at[g]
    }

    /// `(scope, local)` owning global link `g`.
    pub fn link(&self, g: usize) -> (usize, usize) {
        self.link_at[g]
    }
}

/// One topology link instantiated as a queueing server.
pub(crate) struct LinkState {
    server: LinkServer,
    pub bytes_carried: f64,
    pub jobs_completed: u64,
    /// Server revision last mirrored into the scheduler (see
    /// [`LinkState::sync_timer`]).
    synced_rev: u64,
}

enum LinkServer {
    Ps(PsServer<u64>),
    Fifo(FifoServer<u64>),
}

impl LinkState {
    pub fn new(link: &crate::Link) -> Self {
        let server = match link.discipline {
            crate::Discipline::ProcessorSharing => LinkServer::Ps(PsServer::new(link.bandwidth)),
            crate::Discipline::Fifo => LinkServer::Fifo(FifoServer::new(link.bandwidth)),
        };
        LinkState { server, bytes_carried: 0.0, jobs_completed: 0, synced_rev: 0 }
    }

    pub fn arrive(&mut self, t: f64, work: f64, job: u64) {
        match &mut self.server {
            LinkServer::Ps(s) => s.arrive(t, work, job),
            LinkServer::Fifo(s) => s.arrive(t, work, job),
        }
    }

    pub fn next_event(&self) -> Option<f64> {
        match &self.server {
            LinkServer::Ps(s) => s.next_event(),
            LinkServer::Fifo(s) => s.next_event(),
        }
    }

    pub fn on_event(&mut self, t: f64) -> Vec<Completion<u64>> {
        let done = match &mut self.server {
            LinkServer::Ps(s) => s.on_event(t),
            LinkServer::Fifo(s) => s.on_event(t),
        };
        self.jobs_completed += done.len() as u64;
        done
    }

    pub fn busy_time(&self) -> f64 {
        match &self.server {
            LinkServer::Ps(s) => s.busy_time(),
            LinkServer::Fifo(s) => s.busy_time(),
        }
    }

    /// The server's next-event revision (see [`queueing::Server::revision`]).
    pub fn revision(&self) -> u64 {
        match &self.server {
            LinkServer::Ps(s) => s.revision(),
            LinkServer::Fifo(s) => s.revision(),
        }
    }

    /// Mirrors this link's next departure into the indexed scheduler under
    /// `key`. A no-op when the server revision has not moved since the last
    /// sync, so re-syncing after every touched event costs nothing when
    /// the deadline is unchanged.
    pub fn sync_timer(&mut self, sched: &mut Scheduler, key: usize) {
        let rev = self.revision();
        if rev == self.synced_rev {
            return;
        }
        self.synced_rev = rev;
        sched.sync(key, self.next_event());
    }
}
